"""Tests for the e-commerce domain generator (domain independence)."""

import pytest

from repro.core.matchers.attribute import AttributeMatcher
from repro.core.matchers.neighborhood import neighborhood_match
from repro.core.operators.merge import merge
from repro.core.operators.selection import BestNSelection, ThresholdSelection
from repro.datagen.ecommerce import (
    BRANDS,
    CATEGORIES,
    EcommerceConfig,
    build_ecommerce_dataset,
)
from repro.eval import evaluate


@pytest.fixture(scope="module")
def shop_data():
    return build_ecommerce_dataset(EcommerceConfig(seed=5, products=150))


class TestGeneration:
    def test_catalog_complete(self, shop_data):
        assert len(shop_data.catalog.products) == len(shop_data.products)

    def test_market_coverage_partial(self, shop_data):
        covered = len(shop_data.market.products_of_true)
        assert 0 < covered < len(shop_data.products)

    def test_duplicate_offers_exist(self, shop_data):
        assert any(len(ids) > 1
                   for ids in shop_data.market.products_of_true.values())

    def test_market_names_noisy(self, shop_data):
        differing = 0
        for offer_id, true_id in shop_data.market.true_product.items():
            clean = shop_data.products[true_id].name
            offered = shop_data.market.products.require(offer_id).get("name")
            if offered != clean:
                differing += 1
        assert differing > len(shop_data.market.true_product) * 0.3

    def test_market_categories_sometimes_missing(self, shop_data):
        with_category = shop_data.market.products.attribute_values("category")
        assert len(with_category) < len(shop_data.market.products)

    def test_brand_category_entities(self, shop_data):
        assert len(shop_data.catalog.brands) == len(BRANDS)
        assert len(shop_data.market.categories) == len(CATEGORIES)

    def test_determinism(self):
        config = EcommerceConfig(seed=9, products=40)
        first = build_ecommerce_dataset(config)
        second = build_ecommerce_dataset(config)
        first_names = first.market.products.attribute_values("name")
        second_names = second.market.products.attribute_values("name")
        assert first_names == second_names

    def test_gold_covers_market(self, shop_data):
        gold = shop_data.gold.get("products", "Catalog.Product",
                                  "Market.Product")
        assert gold.range_ids() == set(shop_data.market.products.ids())

    def test_smm_registered(self, shop_data):
        assert shop_data.smm.find_mapping("Catalog.BrandProduct") is not None
        assert shop_data.smm.get_source("Market.Product") is not None


class TestDomainIndependentMatching:
    """The paper's §7 claim: the same framework works on e-commerce."""

    def test_attribute_matching_reasonable(self, shop_data):
        matcher = AttributeMatcher("name", similarity="trigram",
                                   threshold=0.6)
        mapping = BestNSelection(1, side="range").apply(
            matcher.match(shop_data.catalog.products,
                          shop_data.market.products))
        gold = shop_data.gold.get("products", "Catalog.Product",
                                  "Market.Product")
        quality = evaluate(mapping, gold)
        assert quality.f1 > 0.6

    def test_brand_matching_via_neighborhood(self, shop_data):
        """1:n neighborhood matching transfers: match brands by their
        products, exactly as venues were matched by publications."""
        matcher = AttributeMatcher("name", similarity="trigram",
                                   threshold=0.6)
        product_same = ThresholdSelection(0.75).apply(
            matcher.match(shop_data.catalog.products,
                          shop_data.market.products))
        brand_same = neighborhood_match(
            shop_data.catalog.brand_product, product_same,
            shop_data.market.product_brand)
        mapping = BestNSelection(1).apply(brand_same)
        gold = shop_data.gold.get("brands", "Catalog.Brand", "Market.Brand")
        quality = evaluate(mapping, gold)
        assert quality.f1 > 0.85

    def test_merge_improves_products(self, shop_data):
        """Neighborhood refinement (category-constrained candidates)
        merged with the direct name matcher lifts recall."""
        name_matcher = AttributeMatcher("name", similarity="trigram",
                                        threshold=0.6)
        fuzzy = name_matcher.match(shop_data.catalog.products,
                                   shop_data.market.products)
        direct = ThresholdSelection(0.8).apply(fuzzy)
        permissive = ThresholdSelection(0.55).apply(fuzzy)
        category_same = neighborhood_match(
            shop_data.catalog.category_product, direct,
            shop_data.market.product_category)
        category_best = BestNSelection(1).apply(category_same)
        constrained = neighborhood_match(
            shop_data.catalog.product_category, category_best,
            shop_data.market.category_product)
        refined = merge([permissive, constrained], "min0")
        merged = BestNSelection(1, side="range").apply(
            merge([direct, refined], "max"))
        gold = shop_data.gold.get("products", "Catalog.Product",
                                  "Market.Product")
        merged_quality = evaluate(merged, gold)
        direct_quality = evaluate(
            BestNSelection(1, side="range").apply(direct), gold)
        assert merged_quality.recall >= direct_quality.recall
        assert merged_quality.f1 >= direct_quality.f1 - 0.01


class TestConfigValidation:
    def test_small_world(self):
        dataset = build_ecommerce_dataset(EcommerceConfig(products=10))
        assert len(dataset.catalog.products) == 10
