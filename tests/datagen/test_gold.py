"""Unit tests for the GoldStandard container."""

import pytest

from repro.core.mapping import Mapping
from repro.datagen.gold import GoldStandard


@pytest.fixture
def gold():
    standard = GoldStandard()
    standard.add("publications", Mapping.from_correspondences(
        "DBLP.Publication", "ACM.Publication", [("p1", "q1", 1.0)]))
    standard.add("authors", Mapping.from_correspondences(
        "DBLP.Author", "ACM.Author", [("a1", "b1", 1.0)]))
    return standard


class TestRegistryBehaviour:
    def test_get_forward(self, gold):
        mapping = gold.get("publications", "DBLP.Publication",
                           "ACM.Publication")
        assert mapping.get("p1", "q1") == 1.0

    def test_get_inverse_derived(self, gold):
        mapping = gold.get("publications", "ACM.Publication",
                           "DBLP.Publication")
        assert mapping.get("q1", "p1") == 1.0

    def test_category_case_insensitive(self, gold):
        assert gold.get("Publications", "DBLP.Publication",
                        "ACM.Publication") is not None

    def test_convenience_accessors(self, gold):
        assert gold.publications("DBLP.Publication", "ACM.Publication")
        assert gold.authors("DBLP.Author", "ACM.Author")
        with pytest.raises(KeyError):
            gold.venues("DBLP.Venue", "ACM.Venue")

    def test_try_get(self, gold):
        assert gold.try_get("venues", "X", "Y") is None
        assert gold.try_get("authors", "DBLP.Author",
                            "ACM.Author") is not None

    def test_duplicate_add_rejected(self, gold):
        with pytest.raises(ValueError):
            gold.add("publications", Mapping("DBLP.Publication",
                                             "ACM.Publication"))

    def test_contains_both_orientations(self, gold):
        assert ("publications", "DBLP.Publication",
                "ACM.Publication") in gold
        assert ("publications", "ACM.Publication",
                "DBLP.Publication") in gold
        assert ("venues", "X", "Y") not in gold

    def test_iteration_and_len(self, gold):
        keys = list(gold)
        assert len(gold) == 2
        assert all(len(key) == 3 for key in keys)

    def test_error_lists_known_keys(self, gold):
        with pytest.raises(KeyError) as excinfo:
            gold.get("venues", "A", "B")
        assert "publications" in str(excinfo.value)
