"""Tests for the query-only web-source interface."""

import pytest

from repro.datagen.query import QueryClient, harvest_by_titles
from repro.model.source import LogicalSource, ObjectType, PhysicalSource


@pytest.fixture
def client():
    source = LogicalSource(PhysicalSource("GS", downloadable=False),
                           ObjectType("Publication"))
    source.add_record("g1", title="Adaptive Query Processing for Streams")
    source.add_record("g2", title="Adaptive View Maintenance")
    source.add_record("g3", title="Schema Matching with Cupid")
    source.add_record("g4", title=None)
    return QueryClient(source, attribute="title", max_results=10)


class TestSearch:
    def test_exact_title_ranks_first(self, client):
        results = client.search("Adaptive Query Processing for Streams")
        assert results[0].id == "g1"

    def test_partial_overlap_found(self, client):
        results = client.search("query processing")
        assert any(instance.id == "g1" for instance in results)

    def test_ranking_by_overlap(self, client):
        results = client.search("adaptive query")
        ids = [instance.id for instance in results]
        assert ids.index("g1") < ids.index("g2")

    def test_no_match(self, client):
        assert client.search("entirely unrelated nonsense") == []

    def test_empty_query(self, client):
        assert client.search("") == []

    def test_max_results_limit(self, client):
        results = client.search("adaptive", max_results=1)
        assert len(results) == 1

    def test_none_titles_not_indexed(self, client):
        results = client.search("anything")
        assert all(instance.id != "g4" for instance in results)

    def test_invalid_max_results(self, client):
        with pytest.raises(ValueError):
            QueryClient(client.source, max_results=0)


class TestHarvest:
    def test_harvest_returns_subset_view(self, client):
        subset, stats = harvest_by_titles(
            client, ["Adaptive Query Processing", "Schema Matching"])
        assert stats["queries"] == 2
        assert stats["distinct_results"] == len(subset)
        assert set(subset.ids()) <= {"g1", "g2", "g3"}

    def test_harvest_dedupes(self, client):
        subset, stats = harvest_by_titles(
            client, ["adaptive", "adaptive", "adaptive"])
        assert stats["queries"] == 3
        ids = subset.ids()
        assert len(ids) == len(set(ids))

    def test_harvest_on_real_gs(self, dataset):
        gs_client = QueryClient(dataset.gs.publications)
        titles = [
            dataset.dblp.publications.require(pub_id).get("title")
            for pub_id in dataset.dblp.publications.ids()[:20]
        ]
        subset, stats = harvest_by_titles(gs_client, titles,
                                          max_results_per_query=5)
        assert stats["queries"] == 20
        assert len(subset) > 0
