"""Tests for noise operators."""

import random

import pytest

from repro.datagen.corruption import (
    abbreviate_first_name,
    case_mangle,
    corrupt_title,
    drop_word,
    name_variant,
    ocr_noise,
    random_venue_string,
    truncate_words,
    typo,
    venue_string,
)


@pytest.fixture
def rng():
    return random.Random(42)


class TestTypo:
    def test_changes_string(self, rng):
        original = "schema matching"
        changed = [typo(original, rng) for _ in range(10)]
        assert any(result != original for result in changed)

    def test_empty_string_safe(self, rng):
        assert typo("", rng) == ""

    def test_deterministic_with_seed(self):
        first = typo("schema matching", random.Random(1))
        second = typo("schema matching", random.Random(1))
        assert first == second

    def test_multiple_errors(self, rng):
        result = typo("abcdefghij", rng, errors=5)
        assert result != "abcdefghij"


class TestTitleNoise:
    def test_ocr_noise_probability_zero(self, rng):
        assert ocr_noise("hello world", rng, probability=0.0) == "hello world"

    def test_drop_word_keeps_single(self, rng):
        assert drop_word("single", rng) == "single"

    def test_drop_word_removes_one(self, rng):
        assert len(drop_word("a b c d", rng).split()) == 3

    def test_truncate_keeps_min(self, rng):
        assert truncate_words("a b c", rng, min_keep=3) == "a b c"

    def test_truncate_shortens(self, rng):
        result = truncate_words("a b c d e f g h", rng, min_keep=3)
        assert 3 <= len(result.split()) < 8

    def test_case_mangle(self, rng):
        result = case_mangle("Mixed Case", rng)
        assert result in ("mixed case", "MIXED CASE")

    def test_corrupt_title_full_noise(self):
        rng = random.Random(1)
        corrupted = [
            corrupt_title("Adaptive Query Processing for Data Streams", rng,
                          typo_probability=1.0)
            for _ in range(5)
        ]
        assert all(text for text in corrupted)
        assert any(text != "Adaptive Query Processing for Data Streams"
                   for text in corrupted)

    def test_corrupt_title_no_noise(self, rng):
        title = "Adaptive Query Processing"
        unchanged = corrupt_title(title, rng, typo_probability=0,
                                  ocr_probability=0, truncate_probability=0,
                                  drop_probability=0, case_probability=0)
        assert unchanged == title


class TestNames:
    def test_abbreviate_first_name(self):
        assert abbreviate_first_name("John") == "J."
        assert abbreviate_first_name("John B.") == "J. B."
        assert abbreviate_first_name("John B.", keep_middle=False) == "J."
        assert abbreviate_first_name("") == ""

    def test_name_variant_changes_something(self, rng):
        variants = {name_variant("Agathoniki", "Trigoni", rng)
                    for _ in range(20)}
        assert any(variant != ("Agathoniki", "Trigoni")
                   for variant in variants)


class TestVenueStrings:
    def test_conference_styles(self):
        assert venue_string("conference", "VLDB", 2002, 28, "short") == \
            "VLDB 2002"
        assert venue_string("conference", "VLDB", 2002, 28, "tight") == \
            "VLDB'02"
        long = venue_string("conference", "VLDB", 2002, 28, "long")
        assert "28th" in long and "Very Large Data Bases" in long

    def test_journal_styles(self):
        tight = venue_string("journal", "SIGMOD Record", 2002, 31, "tight")
        assert tight.startswith("SIGMOD Record 31(")
        full = venue_string("journal", "TODS", 2001, 26, "full")
        assert "Transactions on Database Systems" in full

    def test_ordinal_suffixes(self):
        assert "21st" in venue_string("conference", "VLDB", 1995, 21, "long")
        assert "22nd" in venue_string("conference", "VLDB", 1996, 22, "long")
        assert "23rd" in venue_string("conference", "VLDB", 1997, 23, "long")
        assert "11th" in venue_string("conference", "VLDB", 1985, 11, "long")

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            venue_string("conference", "VLDB", 2002, 28, "fancy")
        with pytest.raises(ValueError):
            venue_string("booklet", "VLDB", 2002, 28, "short")

    def test_random_style_valid(self, rng):
        for _ in range(10):
            text = random_venue_string("conference", "SIGMOD", 1999, 25, rng)
            assert text

    def test_diversity_defeats_string_matching(self, rng):
        """The §5.4.1 premise: venue strings for the same venue differ
        wildly across styles."""
        from repro.sim.ngram import TrigramSimilarity
        sim = TrigramSimilarity()
        short = venue_string("conference", "VLDB", 2002, 28, "short")
        long = venue_string("conference", "VLDB", 2002, 28, "long")
        assert sim(short, long) < 0.3
