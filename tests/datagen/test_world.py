"""Tests for ground-truth world generation."""

import random

import pytest

from repro.datagen.names import generate_author_names
from repro.datagen.text import RECURRING_TITLES, generate_distinct_titles
from repro.datagen.world import WorldConfig, generate_world


@pytest.fixture(scope="module")
def world():
    return generate_world(WorldConfig(
        seed=11, start_year=2001, end_year=2003,
        conference_pubs=(6, 10), journal_pubs=(2, 3), magazine_pubs=(2, 4),
        clusters=8,
    ))


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = WorldConfig(seed=5, start_year=2002, end_year=2003,
                             conference_pubs=(4, 6), journal_pubs=(1, 2),
                             magazine_pubs=(2, 3), clusters=6)
        first = generate_world(config)
        second = generate_world(config)
        assert sorted(first.publications) == sorted(second.publications)
        first_titles = {pub.id: pub.title
                        for pub in first.publications.values()}
        second_titles = {pub.id: pub.title
                         for pub in second.publications.values()}
        assert first_titles == second_titles

    def test_different_seeds_differ(self):
        base = dict(start_year=2002, end_year=2003,
                    conference_pubs=(4, 6), journal_pubs=(1, 2),
                    magazine_pubs=(2, 3), clusters=6)
        first = generate_world(WorldConfig(seed=1, **base))
        second = generate_world(WorldConfig(seed=2, **base))
        first_titles = sorted(p.title for p in first.publications.values())
        second_titles = sorted(p.title for p in second.publications.values())
        assert first_titles != second_titles


class TestStructure:
    def test_venue_counts(self, world):
        config = world.config
        years = 3
        expected_conferences = len(config.conferences) * years
        expected_journal_issues = (len(config.journals) * years
                                   * config.issues_per_year)
        conferences = [v for v in world.venues.values()
                       if v.kind == "conference"]
        journals = [v for v in world.venues.values() if v.kind == "journal"]
        assert len(conferences) == expected_conferences
        assert len(journals) == expected_journal_issues

    def test_publication_counts_within_bounds(self, world):
        for venue in world.venues.values():
            pubs = [p for p in world.publications_of_venue(venue.id)
                    if not p.recurring]
            if venue.kind == "conference":
                low, high = world.config.conference_pubs
            elif venue.series == "SIGMOD Record":
                low, high = world.config.magazine_pubs
            else:
                low, high = world.config.journal_pubs
            assert low <= len(pubs) <= high

    def test_publication_years_match_venue(self, world):
        for pub in world.publications.values():
            assert pub.year == world.venues[pub.venue_id].year

    def test_authors_exist(self, world):
        for pub in world.publications.values():
            assert pub.author_ids
            for author_id in pub.author_ids:
                assert author_id in world.authors

    def test_author_lists_have_no_duplicates(self, world):
        for pub in world.publications.values():
            assert len(set(pub.author_ids)) == len(pub.author_ids)

    def test_journal_versions_share_title_and_authors(self, world):
        versions = [p for p in world.publications.values()
                    if p.version_of is not None]
        for version in versions:
            original = world.publications[version.version_of]
            assert version.title == original.title
            assert version.author_ids == original.author_ids
            assert version.year > original.year

    def test_recurring_titles_repeat(self, world):
        recurring = [p for p in world.publications.values() if p.recurring]
        for pub in recurring:
            assert pub.title in RECURRING_TITLES

    def test_statistics(self, world):
        stats = world.statistics()
        assert stats["publications"] == len(world.publications)
        assert stats["venues"] == len(world.venues)
        assert 0 < stats["authors"] <= len(world.authors)

    def test_repeat_collaboration_exists(self, world):
        """Collaborator affinity must create repeated co-author pairs —
        the signal Table 9's duplicate detection relies on."""
        pair_counts = {}
        for pub in world.publications.values():
            authors = sorted(pub.author_ids)
            for i, author_a in enumerate(authors):
                for author_b in authors[i + 1:]:
                    key = (author_a, author_b)
                    pair_counts[key] = pair_counts.get(key, 0) + 1
        assert any(count >= 2 for count in pair_counts.values())


class TestConfigValidation:
    def test_year_order(self):
        with pytest.raises(ValueError):
            WorldConfig(start_year=2005, end_year=2001)

    def test_positive_scale(self):
        with pytest.raises(ValueError):
            WorldConfig(scale=0)

    def test_need_some_series(self):
        with pytest.raises(ValueError):
            WorldConfig(conferences=(), journals=())


class TestCorpora:
    def test_distinct_names(self):
        rng = random.Random(3)
        names = generate_author_names(500, rng)
        assert len(set(names)) == 500

    def test_name_pool_limit(self):
        rng = random.Random(3)
        with pytest.raises(ValueError):
            generate_author_names(10 ** 9, rng)

    def test_distinct_titles(self):
        rng = random.Random(3)
        titles = generate_distinct_titles(300, rng)
        assert len(set(titles)) == 300
