"""Tests for the derived source views and gold standard."""

import pytest

from repro.core.mapping import MappingKind
from repro.datagen.sources import build_dataset, dataset_statistics


class TestDblp:
    def test_complete_coverage(self, dataset):
        assert len(dataset.dblp.publications) == len(dataset.world.publications)

    def test_clean_titles(self, dataset):
        for pub_id, true_id in dataset.dblp.true_pub.items():
            instance = dataset.dblp.publications.require(pub_id)
            assert instance.get("title") == \
                dataset.world.publications[true_id].title

    def test_duplicate_authors_injected(self, dataset):
        duplicated = [ids for ids in dataset.dblp.authors_of_true.values()
                      if len(ids) > 1]
        assert duplicated
        for ids in duplicated:
            names = {dataset.dblp.authors.require(i).get("name") for i in ids}
            assert len(names) >= 1  # variant names may collide only rarely

    def test_duplicate_author_owns_pubs(self, dataset):
        for ids in dataset.dblp.authors_of_true.values():
            if len(ids) < 2:
                continue
            for source_id in ids:
                assert len(dataset.dblp.author_pub.range_ids_of(source_id)) >= 1

    def test_associations_consistent(self, dataset):
        pub_author = dataset.dblp.pub_author
        author_pub = dataset.dblp.author_pub
        assert pub_author.inverse().to_rows() == author_pub.to_rows()

    def test_co_author_symmetric(self, dataset):
        co = dataset.dblp.co_author
        for domain_id, range_id, similarity in co:
            assert co.get(range_id, domain_id) == similarity

    def test_venue_association_n_to_1(self, dataset):
        for pub_id in dataset.dblp.publications.ids():
            assert dataset.dblp.pub_venue.out_degree(pub_id) == 1


class TestAcm:
    def test_missing_vldb_2002_2003(self, dataset):
        years = set()
        for true_id in dataset.acm.true_venue.values():
            venue = dataset.world.venues[true_id]
            if venue.series == "VLDB":
                years.add(venue.year)
        assert 2002 not in years and 2003 not in years

    def test_smaller_than_dblp(self, dataset):
        assert len(dataset.acm.publications) < len(dataset.dblp.publications)

    def test_numeric_keys(self, dataset):
        assert all(pub_id.startswith("P-")
                   for pub_id in dataset.acm.publications.ids())

    def test_citations_attribute(self, dataset):
        values = dataset.acm.publications.attribute_values("citations")
        assert values and all(value >= 0 for value in values)

    def test_verbose_venue_strings(self, dataset):
        assert dataset.acm.venues is not None
        names = dataset.acm.venues.attribute_values("name")
        assert any("Proceedings" in name or "Transactions" in name
                   or "Journal" in name for name in names)


class TestGs:
    def test_duplicate_entries_exist(self, dataset):
        multi = [ids for ids in dataset.gs.pubs_of_true.values()
                 if len(ids) > 1]
        assert multi

    def test_more_entries_than_dblp(self, dataset):
        assert len(dataset.gs.publications) > \
            0.8 * len(dataset.dblp.publications)

    def test_years_sometimes_missing(self, dataset):
        with_year = dataset.gs.publications.attribute_values("year")
        assert len(with_year) < len(dataset.gs.publications)

    def test_abbreviated_author_names(self, dataset):
        names = dataset.gs.authors.attribute_values("name")
        assert all(name.split()[0].endswith(".") for name in names)

    def test_no_venue_lds(self, dataset):
        # Fig. 2: the GS peer only exposes a Publication LDS
        assert dataset.gs.venues is None

    def test_link_mapping_low_recall(self, dataset):
        links = dataset.gs.extras["links_to_acm"]
        gold = dataset.gold.publications("GS.Publication", "ACM.Publication")
        recall = len(links.pairs() & gold.pairs()) / len(gold.pairs())
        assert 0.05 < recall < 0.45

    def test_link_mapping_is_same_mapping(self, dataset):
        assert dataset.gs.extras["links_to_acm"].kind == MappingKind.SAME


class TestGold:
    def test_pub_gold_covers_acm(self, dataset):
        gold = dataset.gold.publications("DBLP.Publication", "ACM.Publication")
        # every ACM publication has a DBLP counterpart (DBLP is complete)
        assert gold.range_ids() == set(dataset.acm.publications.ids())

    def test_gs_gold_contains_all_duplicate_entries(self, dataset):
        gold = dataset.gold.publications("DBLP.Publication", "GS.Publication")
        assert gold.range_ids() == set(dataset.gs.publications.ids())

    def test_author_gold_includes_duplicates(self, dataset):
        gold = dataset.gold.authors("DBLP.Author", "ACM.Author")
        duplicated = [ids for ids in dataset.dblp.authors_of_true.values()
                      if len(ids) > 1]
        for ids in duplicated:
            out_degrees = [gold.out_degree(i) for i in ids]
            # both duplicate ids map to the same ACM author (when covered)
            assert len(set(out_degrees)) <= 2

    def test_venue_gold_excludes_missing(self, dataset):
        gold = dataset.gold.venues("DBLP.Venue", "ACM.Venue")
        assert len(gold) == len(dataset.acm.venues)

    def test_inverse_resolution(self, dataset):
        forward = dataset.gold.publications("DBLP.Publication",
                                            "ACM.Publication")
        backward = dataset.gold.publications("ACM.Publication",
                                             "DBLP.Publication")
        assert backward.to_rows() == forward.inverse().to_rows()

    def test_unknown_gold_raises(self, dataset):
        with pytest.raises(KeyError):
            dataset.gold.get("publications", "X", "Y")


class TestDataset:
    def test_bundle_lookup(self, dataset):
        assert dataset.bundle("dblp") is dataset.dblp
        with pytest.raises(KeyError):
            dataset.bundle("ieee")

    def test_statistics_structure(self, dataset):
        stats = dataset_statistics(dataset)
        assert stats["DBLP"]["publications"] == len(dataset.dblp.publications)
        assert stats["GS"]["venues"] == 0

    def test_smm_registered_mappings(self, dataset):
        for name in ("DBLP.PubAuthor", "DBLP.CoAuthor", "ACM.VenuePub",
                     "GS.PubAuthor", "GS.LinksToACM"):
            assert dataset.smm.find_mapping(name) is not None

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            build_dataset("galactic")

    def test_determinism_across_builds(self):
        first = build_dataset("tiny", seed=3)
        second = build_dataset("tiny", seed=3)
        assert first.dblp.publications.ids() == second.dblp.publications.ids()
        assert first.gs.publications.ids() == second.gs.publications.ids()
