"""The content-hash cache: hits, invalidation, versioning, pruning."""

import json

from repro.analysis import run_paths
from repro.analysis.graph import ANALYSIS_VERSION, LintCache, content_hash

CLEAN = '''\
def snapshot(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
'''

DIRTY = '''\
import os


def snapshot(path, payload, tmp):
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
    os.rename(tmp, path)
'''


def _write(root, relative, content):
    target = root / relative
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(content, encoding="utf-8")


def test_lint_cache_lookup_by_display_and_sha(tmp_path):
    path = tmp_path / "cache.json"
    cache = LintCache(str(path))
    sha = content_hash(b"source")
    cache.store("src/a.py", {"sha": sha, "findings": [],
                             "suppressions": [], "summary": None})
    cache.save()

    reloaded = LintCache(str(path))
    assert reloaded.lookup("src/a.py", sha) is not None
    assert reloaded.lookup("src/a.py", content_hash(b"edited")) is None
    assert reloaded.lookup("src/b.py", sha) is None


def test_cache_version_mismatch_drops_entries(tmp_path):
    path = tmp_path / "cache.json"
    sha = content_hash(b"source")
    path.write_text(json.dumps({
        "version": ANALYSIS_VERSION + 1,
        "files": {"src/a.py": {"sha": sha, "findings": [],
                               "suppressions": [], "summary": None}},
    }), encoding="utf-8")
    assert LintCache(str(path)).lookup("src/a.py", sha) is None


def test_corrupt_cache_file_is_ignored(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text("{not json", encoding="utf-8")
    cache = LintCache(str(path))
    assert cache.lookup("src/a.py", content_hash(b"x")) is None
    cache.save()  # must not raise; rewrites a valid file
    json.loads(path.read_text(encoding="utf-8"))


def test_warm_run_reuses_every_file(tmp_path):
    _write(tmp_path, "src/repro/serve/snap.py", DIRTY)
    cache = tmp_path / "cache.json"

    cold = run_paths(["src"], str(tmp_path), baseline=[],
                     cache_path=str(cache))
    warm = run_paths(["src"], str(tmp_path), baseline=[],
                     cache_path=str(cache))

    assert cold.files_cached == 0
    assert warm.files_cached == warm.files_checked == 1
    assert [(f.code, f.line) for f in warm.findings] == \
        [(f.code, f.line) for f in cold.findings]
    assert any(f.code.startswith("DUR") for f in warm.findings)


def test_editing_a_file_invalidates_only_its_entry(tmp_path):
    _write(tmp_path, "src/repro/serve/snap.py", CLEAN)
    _write(tmp_path, "src/repro/serve/other.py", "VALUE = 1\n")
    cache = tmp_path / "cache.json"

    first = run_paths(["src"], str(tmp_path), baseline=[],
                      cache_path=str(cache))
    assert first.findings == []

    _write(tmp_path, "src/repro/serve/snap.py", DIRTY)
    second = run_paths(["src"], str(tmp_path), baseline=[],
                       cache_path=str(cache))
    # other.py comes from the cache; the edited file is re-analysed
    # and its new finding surfaces immediately.
    assert second.files_cached == 1
    assert any(f.code.startswith("DUR") for f in second.findings)

    _write(tmp_path, "src/repro/serve/snap.py", CLEAN)
    third = run_paths(["src"], str(tmp_path), baseline=[],
                      cache_path=str(cache))
    assert third.findings == []


def test_deleted_files_are_pruned_from_the_cache(tmp_path):
    _write(tmp_path, "src/repro/serve/a.py", "A = 1\n")
    _write(tmp_path, "src/repro/serve/b.py", "B = 1\n")
    cache = tmp_path / "cache.json"
    run_paths(["src"], str(tmp_path), baseline=[], cache_path=str(cache))

    (tmp_path / "src/repro/serve/b.py").unlink()
    run_paths(["src"], str(tmp_path), baseline=[], cache_path=str(cache))

    payload = json.loads(cache.read_text(encoding="utf-8"))
    assert "src/repro/serve/a.py" in payload["files"]
    assert "src/repro/serve/b.py" not in payload["files"]
