"""PKL checker: unpicklable attributes and exception-arity mismatches."""

from repro.analysis.pkl import PickleSafetyChecker


def test_pkl_bad_fixture_exact_codes_and_lines(load_fixture, line_of):
    context, source = load_fixture("pkl_bad.py", "repro/serve/pkl_bad.py")
    findings = list(PickleSafetyChecker().check(context))
    expected = {
        ("PKL001", line_of(source, "self._lock = threading.Lock()")),
        ("PKL002", line_of(source, "def __init__(self, shard, message):")),
    }
    assert {(finding.code, finding.line) for finding in findings} == expected
    by_code = {finding.code: finding for finding in findings}
    assert "Holder._lock" in by_code["PKL001"].message
    assert "ShardFault" in by_code["PKL002"].message
    assert "__reduce__" in by_code["PKL002"].message


def test_pkl_good_fixture_is_clean(load_fixture):
    context, _source = load_fixture("pkl_good.py", "repro/model/pkl_good.py")
    assert list(PickleSafetyChecker().check(context)) == []


def test_pkl_checker_scope(load_fixture):
    checker = PickleSafetyChecker()
    in_scope, _ = load_fixture("pkl_bad.py", "repro/model/pkl_bad.py")
    out_of_scope, _ = load_fixture("pkl_bad.py", "repro/eval/pkl_bad.py")
    assert checker.interested(in_scope)
    assert not checker.interested(out_of_scope)
