"""LCK003 fixture: AB/BA lock order across two classes.

``Repository.sweep`` takes ``Repository._lock`` then (through the
typed ``service`` attribute) ``Service._lock``; ``Service.drain``
takes them in the opposite order.  Two threads running those methods
concurrently can deadlock.
"""

import threading


class Service:
    def __init__(self, repo):
        # repro: allow-unpicklable -- fixture type, never pickled
        self._lock = threading.Lock()
        self.repo: Repository = repo

    def refresh(self):
        with self._lock:
            return None

    def drain(self):
        with self._lock:
            self.repo.sync()


class Repository:
    def __init__(self):
        # repro: allow-unpicklable -- fixture type, never pickled
        self._lock = threading.Lock()
        self.service = Service(self)

    def sync(self):
        with self._lock:
            return None

    def sweep(self):
        with self._lock:
            self.service.refresh()
