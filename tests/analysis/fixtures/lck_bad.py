"""Known-bad lock-discipline fixture: an annotated method is reachable
without the lock.  Parsed with a ``repro/serve/`` display path; never
imported or executed.
"""

import threading

from repro.concurrency import requires_lock


class Service:
    def __init__(self):
        self._lock = threading.RLock()
        self.entries = {}

    @requires_lock("_lock")
    def _evict(self):
        self.entries.clear()

    def request(self):
        self._evict()
