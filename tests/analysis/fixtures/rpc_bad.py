"""RPC fixture: protocol drift in every direction.

Linted under ``src/repro/serve/cluster.py`` so the default
:class:`~repro.analysis.rpc.ProtocolSpec` applies.
"""


class ShardBackend:
    def handle(self, op, payload):
        if op == "match":
            return self.match(payload["records"], payload["threshold"])
        if op == "score":
            return self.match(payload["records"], payload["pairs"])
        if op == "stats":
            return {"rows": 1}
        if op == "legacy":
            return None
        raise ValueError(op)

    def match(self, records, threshold):
        return [records, threshold]


class Router:
    def __init__(self, shards):
        self._shards = shards

    def match_records(self, records, threshold):
        payload = {"records": records, "threshold": threshold,
                   "orphan": True}
        for shard in self._shards:
            shard.send("match", payload)
        return [shard.receive() for shard in self._shards]

    def score_records(self, records):
        for shard in self._shards:
            shard.send("score", {"records": records})
        return [shard.receive() for shard in self._shards]

    def stats(self):
        return [shard.call("stats", {}) for shard in self._shards]

    def compact(self):
        return [shard.call("compact", {}) for shard in self._shards]
