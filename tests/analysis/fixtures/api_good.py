"""Known-good API-error fixture: every raise is a
``repro.serve.errors`` type, a bare re-raise, or a caught variable.
"""

from repro.serve.errors import InvalidRequest, ServeError


def handle_match(payload):
    try:
        record = payload["record"]
    except KeyError as error:
        raise InvalidRequest("record is required") from error
    if not isinstance(record, dict):
        raise InvalidRequest("record must be an object")
    return record


def passthrough(service, request):
    try:
        return service.dispatch(request)
    except ServeError:
        raise
    except RuntimeError as error:
        raise error from None
