"""Known-good pickle-safety fixture: the same shapes as pkl_bad with
the escape hatches the checker accepts (``__getstate__``, a matching
``super().__init__`` arity, an explicit ``__reduce__``).
"""

import threading


class SafeHolder:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state


class SafeFault(RuntimeError):
    def __init__(self, shard, message):
        super().__init__(f"shard {shard}: {message}")
        self.shard = shard
        self.message = message

    def __reduce__(self):
        return (type(self), (self.shard, self.message))


class PlainFault(RuntimeError):
    def __init__(self, message):
        super().__init__(message)
