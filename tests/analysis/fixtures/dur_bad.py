"""Known-bad durability fixture: a rename published without fsync
(DUR001) and a bare ``os.rename`` (DUR002).  Parsed with a
``repro/serve/`` display path; never imported or executed.
"""

import os


def publish_without_fsync(tmp_path, final_path):
    os.replace(tmp_path, final_path)


def shuffle_files(source, destination):
    os.rename(source, destination)
