"""Known-good determinism fixture: the deterministic twin of det_bad.

Every function mirrors a det_bad pattern with the fix applied; the
checker must yield nothing here.
"""

import math
import os


def iterate_sorted_set():
    collected = []
    for item in sorted({"b", "a"}):
        collected.append(item)
    return collected


def iterate_sorted_local():
    names = {"x", "y"}
    collected = []
    for name in sorted(names):
        collected.append(name)
    return collected


def comprehension_over_sorted_set(tokens):
    return [token.upper() for token in sorted(set(tokens))]


def listdir_sorted(path):
    collected = []
    for entry in sorted(os.listdir(path)):
        collected.append(entry)
    return collected


def fsum_over_sorted(values):
    return math.fsum(sorted({float(value) for value in values}))


def sort_items_with_tiebreak(scores):
    return sorted(scores.items(), key=lambda kv: (kv[1], kv[0]))


def membership_test(token, vocabulary):
    return token in set(vocabulary)
