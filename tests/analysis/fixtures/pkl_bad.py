"""Known-bad pickle-safety fixture.

``Holder`` stores a lock on ``self`` with no reduce hook (PKL001);
``ShardFault`` is the ``super().__init__`` arity-mismatch exception
shape that unpickles with a TypeError (PKL002).  Parsed with a
``repro/serve/`` display path; never imported or executed.
"""

import threading


class Holder:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []


class ShardFault(RuntimeError):
    def __init__(self, shard, message):
        super().__init__(f"shard {shard}: {message}")
        self.shard = shard
