"""LCK002 fixture: interprocedural lock discipline, good and bad paths.

Linted under ``src/repro/serve/service.py``.  ``_helper`` is only ever
called with ``_lock`` held, so its ``self._flush()`` is clean — the
exact shape the syntactic LCK001 used to flag.  ``bad_public`` and the
``bad_helper_path`` chain hold nothing, so both ``self._flush()``
calls there are findings.
"""

import threading

from repro.concurrency import requires_lock


class Service:
    def __init__(self):
        # repro: allow-unpicklable -- fixture type, never crosses a
        # process boundary
        self._lock = threading.RLock()
        self._items = []

    @requires_lock("_lock")
    def _flush(self):
        self._items.clear()

    def ok_with(self):
        with self._lock:
            self._flush()

    def ok_acquire(self):
        self._lock.acquire()
        try:
            self._flush()
        finally:
            self._lock.release()

    def ok_private_path(self):
        with self._lock:
            self._helper()

    def _helper(self):
        self._flush()

    def bad_public(self):
        self._flush()  # bad: public caller holds nothing

    def bad_helper_path(self):
        self._unlocked_helper()

    def _unlocked_helper(self):
        self._flush()  # bad: helper chain holds nothing
