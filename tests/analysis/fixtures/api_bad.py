"""Known-bad API-error fixture: an HTTP handler raising a type that is
not part of ``repro.serve.errors``.  Parsed with the
``repro/serve/http.py`` display path; never imported or executed.
"""

from repro.serve.errors import InvalidRequest


def handle_match(payload):
    if "record" not in payload:
        raise KeyError("record")
    if not isinstance(payload["record"], dict):
        raise InvalidRequest("record must be an object")
    return payload["record"]
