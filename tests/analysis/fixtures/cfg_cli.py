"""CLI companion for the CFG fixtures (linted as ``repro.__main__``)."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--attribute", default="title")
    parser.add_argument("--threshold", type=float, default=0.7)
    parser.add_argument("--unvalidated", type=int, default=3)
    parser.add_argument("--undocumented", type=float, default=1.0)
    parser.add_argument("--flagged", action="store_true")
    return parser
