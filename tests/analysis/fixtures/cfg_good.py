"""CFG fixture: every field meets all three obligations — clean."""

from dataclasses import dataclass


@dataclass
class ServeConfig:
    attribute: str = "title"
    threshold: float = 0.7
    flagged: bool = False

    def validate(self):
        if not self.attribute:
            raise ValueError("attribute must be non-empty")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold out of range")
        return self
