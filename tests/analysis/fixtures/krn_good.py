"""KRN fixture: every registered kernel implements the full surface."""


class BitKernel:
    orientation_symmetric = True

    def score_rows(self, domain_rows, range_rows):
        return [1.0]

    def score_bound_rows(self, domain_rows, range_rows):
        return [1.0]


class CsrKernel:
    def __init__(self):
        self.orientation_symmetric = False

    def score_rows(self, domain_rows, range_rows):
        return [0.5]

    def score_bound_rows(self, domain_rows, range_rows):
        return [1.0]


def build_kernel(sim, domain, range_, attribute):
    if sim == "bit":
        return BitKernel()
    return CsrKernel()
