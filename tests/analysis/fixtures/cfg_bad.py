"""CFG fixture: one ServeConfig field per failure mode.

Linted under ``src/repro/serve/config.py`` (with companion CLI and
docs fixtures) so the default ServeConfig contract applies:
``unvalidated`` trips CFG001, ``hidden`` trips CFG002 and
``undocumented`` trips CFG003; ``flagged`` shows the bool exemption.
"""

from dataclasses import dataclass


@dataclass
class ServeConfig:
    attribute: str = "title"
    threshold: float = 0.7
    unvalidated: int = 3
    hidden: int = 5
    undocumented: float = 1.0
    flagged: bool = False

    def validate(self):
        if not self.attribute:
            raise ValueError("attribute must be non-empty")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold out of range")
        if self.hidden < 0 or self.undocumented < 0:
            raise ValueError("bounds")
        return self
