"""KRN fixture: registry kernels with holes in their surface.

Linted under ``src/repro/engine/vectorized.py`` so the default
:class:`~repro.analysis.krn.KernelContract` applies.  ``NoBoundKernel``
lacks ``score_bound_rows``; ``NoFlagKernel`` (reached *indirectly*
through ``_build_indirect``, proving call-graph collection) never sets
``orientation_symmetric``.
"""


class GoodKernel:
    orientation_symmetric = True

    def score_rows(self, domain_rows, range_rows):
        return [1.0]

    def score_bound_rows(self, domain_rows, range_rows):
        return [1.0]


class NoBoundKernel:
    orientation_symmetric = False

    def score_rows(self, domain_rows, range_rows):
        return [1.0]


class NoFlagKernel:
    def __init__(self):
        self.rows = 0

    def score_rows(self, domain_rows, range_rows):
        return [1.0]

    def score_bound_rows(self, domain_rows, range_rows):
        return [1.0]


def _build_indirect(sim):
    return NoFlagKernel()


def build_kernel(sim, domain, range_, attribute):
    if sim == "good":
        return GoodKernel()
    if sim == "nobound":
        return NoBoundKernel()
    return _build_indirect(sim)
