"""Known-good durability fixture: ``os.replace`` dominated by an
``os.fsync`` (or ``*fsync*`` helper) earlier in the same function.
"""

import os


def _fsync_dir(path):
    handle = os.open(path, os.O_RDONLY)
    try:
        os.fsync(handle)
    finally:
        os.close(handle)


def publish_with_fsync(handle, tmp_path, final_path):
    handle.flush()
    os.fsync(handle.fileno())
    os.replace(tmp_path, final_path)


def publish_with_helper(directory, tmp_path, final_path):
    _fsync_dir(directory)
    os.replace(tmp_path, final_path)
