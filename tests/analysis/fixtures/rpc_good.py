"""RPC fixture: a balanced op protocol — zero findings expected."""


class ShardBackend:
    def handle(self, op, payload):
        if op == "match":
            return self.match(payload["records"], payload["threshold"])
        if op == "stats":
            return {"rows": 1}
        if op == "get":
            return payload.get("id")
        raise ValueError(op)

    def match(self, records, threshold):
        return [records, threshold]


class Router:
    def __init__(self, shards):
        self._shards = shards

    def match_records(self, records, threshold):
        payload = {"records": records, "threshold": threshold}
        for shard in self._shards:
            shard.send("match", payload)
        return [shard.receive() for shard in self._shards]

    def stats(self):
        return [shard.call("stats", {}) for shard in self._shards]

    def get(self, id):
        return self._shards[0].call("get", {"id": id})
