"""Known-good lock-discipline fixture: every call to an annotated
method statically holds the lock (with-block, ``.acquire()`` context,
or a caller annotated for the same lock).
"""

import threading

from repro.concurrency import requires_lock


class Service:
    def __init__(self):
        self._lock = threading.RLock()
        self.entries = {}

    @requires_lock("_lock")
    def _evict(self):
        self.entries.clear()

    def request(self):
        with self._lock:
            self._evict()

    @requires_lock("_lock")
    def compact(self):
        self._evict()
