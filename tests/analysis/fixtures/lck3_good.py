"""LCK003 fixture: consistent lock order — no cycle, no findings."""

import threading


class Service:
    def __init__(self, repo):
        # repro: allow-unpicklable -- fixture type, never pickled
        self._lock = threading.Lock()
        self.repo: Repository = repo

    def refresh(self):
        with self._lock:
            return None

    def drain(self):
        with self._lock:
            return None


class Repository:
    def __init__(self):
        # repro: allow-unpicklable -- fixture type, never pickled
        self._lock = threading.Lock()
        self.service = Service(self)

    def sync(self):
        with self._lock:
            self.service.refresh()

    def sweep(self):
        with self._lock:
            self.service.drain()
