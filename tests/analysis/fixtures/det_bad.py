"""Known-bad determinism fixture: every function below trips a DET rule.

Parsed by ``tests/analysis/test_det.py`` with a ``repro/engine/``
display path so the checker is in scope; never imported or executed.
"""

import math
import os


def iterate_set_literal():
    collected = []
    for item in {"b", "a"}:
        collected.append(item)
    return collected


def iterate_set_local():
    names = {"x", "y"}
    collected = []
    for name in names:
        collected.append(name)
    return collected


def comprehension_over_set(tokens):
    return [token.upper() for token in set(tokens)]


def listdir_unsorted(path):
    collected = []
    for entry in os.listdir(path):
        collected.append(entry)
    return collected


def fsum_over_set(values):
    return math.fsum({float(value) for value in values})


def sort_items_ignoring_key(scores):
    return sorted(scores.items(), key=lambda kv: kv[1])


def sort_values_with_key(scores):
    return sorted(scores.values(), key=lambda cluster: -cluster.size)
