"""RPC001/RPC002 — router/handler FrameChannel protocol contract."""

CLUSTER = "src/repro/serve/cluster.py"


def _codes(report):
    return [(f.line, f.code) for f in report.findings]


def test_rpc_bad_exact_findings(lint_tree, fixture_text, line_of):
    source = fixture_text("rpc_bad.py")
    report = lint_tree({CLUSTER: source})
    assert set(_codes(report)) == {
        # dead handler branch: nobody ever sends "legacy"
        (line_of(source, 'if op == "legacy":'), "RPC001"),
        # sent op with no handler branch
        (line_of(source, 'shard.call("compact"'), "RPC001"),
        # payload key "orphan" sent but never read by the match branch
        (line_of(source, 'shard.send("match", payload)'), "RPC002"),
        # score branch requires payload["pairs"]; no send site provides it
        (line_of(source, 'payload["pairs"]'), "RPC002"),
    }


def test_rpc_bad_messages_name_the_op(lint_tree, fixture_text):
    report = lint_tree({CLUSTER: fixture_text("rpc_bad.py")})
    messages = "\n".join(f.message for f in report.findings)
    assert "'compact'" in messages
    assert "'legacy'" in messages
    assert "'orphan'" in messages
    assert "'pairs'" in messages


def test_rpc_good_is_clean(lint_tree, fixture_text):
    report = lint_tree({CLUSTER: fixture_text("rpc_good.py")})
    assert report.findings == []


REASSIGNED = '''\
class ShardBackend:
    def handle(self, op, payload):
        if op == "first":
            return payload["x"]
        if op == "second":
            return payload["y"]
        raise ValueError(op)


class Router:
    def __init__(self, shards):
        self._shards = shards

    def run(self, x, y):
        payload = {"x": x}
        for shard in self._shards:
            shard.send("first", payload)
        payload = {"y": y}
        for shard in self._shards:
            shard.send("second", payload)
        return [shard.receive() for shard in self._shards]
'''


def test_rpc_payload_reassignment_uses_nearest_prior_dict(lint_tree):
    # Two sends through the same variable name must each see the dict
    # assigned closest above them, not walk-order artifacts.
    report = lint_tree({CLUSTER: REASSIGNED})
    assert report.findings == []


OPAQUE = '''\
class ShardBackend:
    def handle(self, op, payload):
        if op == "apply":
            return payload["records"]
        raise ValueError(op)


class Router:
    def __init__(self, shards):
        self._shards = shards

    def run(self, request):
        for shard in self._shards:
            shard.send("apply", request.payload())
        return [shard.receive() for shard in self._shards]
'''


def test_rpc_opaque_payload_disables_key_analysis(lint_tree):
    # A send site whose payload is not a resolvable dict literal makes
    # key-level claims unprovable for that op — no RPC002 noise.
    report = lint_tree({CLUSTER: OPAQUE})
    assert report.findings == []
