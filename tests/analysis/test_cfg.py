"""CFG001/002/003 — config fields vs validator, CLI and docs."""

CONFIG = "src/repro/serve/config.py"
CLI = "src/repro/__main__.py"
DOCS = "docs/serving.md"

DOCS_TABLE = """# Serving

| Knob | Default | Meaning |
| --- | --- | --- |
| `attribute` | `"title"` | attribute matched across sources |
| `threshold` | `0.7` | acceptance threshold |
| `unvalidated` | `3` | demo knob |
| `hidden` | `5` | demo knob |
| `flagged` | `False` | demo switch |
"""

GOOD_DOCS = """# Serving

| Knob | Default | Meaning |
| --- | --- | --- |
| `attribute` | `"title"` | attribute matched across sources |
| `threshold` | `0.7` | acceptance threshold |
| `flagged` | `False` | demo switch |
"""


def test_cfg_bad_one_finding_per_failure_mode(lint_tree, fixture_text,
                                              line_of):
    source = fixture_text("cfg_bad.py")
    report = lint_tree({CONFIG: source,
                        CLI: fixture_text("cfg_cli.py"),
                        DOCS: DOCS_TABLE})
    assert {(f.line, f.code) for f in report.findings} == {
        (line_of(source, "unvalidated: int"), "CFG001"),
        (line_of(source, "hidden: int"), "CFG002"),
        (line_of(source, "undocumented: float"), "CFG003"),
    }


def test_cfg_bool_fields_exempt_from_validation_rule(lint_tree,
                                                     fixture_text):
    # ``flagged`` is a bool with a CLI flag and a docs row but no
    # validator coverage; CFG001 must not fire on it.
    report = lint_tree({CONFIG: fixture_text("cfg_bad.py"),
                        CLI: fixture_text("cfg_cli.py"),
                        DOCS: DOCS_TABLE})
    flagged = [f for f in report.findings if "flagged" in f.message]
    assert flagged == []


def test_cfg_good_is_clean(lint_tree, fixture_text):
    report = lint_tree({CONFIG: fixture_text("cfg_good.py"),
                        CLI: fixture_text("cfg_cli.py"),
                        DOCS: GOOD_DOCS})
    assert report.findings == []


def test_cfg_missing_docs_file_reported_per_field(lint_tree, fixture_text):
    report = lint_tree({CONFIG: fixture_text("cfg_good.py"),
                        CLI: fixture_text("cfg_cli.py")})
    codes = {f.code for f in report.findings}
    assert codes == {"CFG003"}
    assert all("docs/serving.md" in f.message for f in report.findings)


def test_cfg_silent_without_the_config_module(lint_tree, fixture_text):
    # The contract targets repro.serve.config; a tree without it (or
    # without repro.engine.engine) must not produce phantom findings.
    report = lint_tree({CLI: fixture_text("cfg_cli.py")})
    assert report.findings == []
