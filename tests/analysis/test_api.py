"""API checker: http.py raises only repro.serve.errors types."""

from repro.analysis.api import ApiErrorChecker


def test_api_bad_fixture_flags_foreign_raise(load_fixture, line_of):
    context, source = load_fixture("api_bad.py", "repro/serve/http.py")
    findings = list(ApiErrorChecker().check(context))
    assert [(finding.code, finding.line) for finding in findings] == [
        ("API001", line_of(source, 'raise KeyError("record")')),
    ]
    assert "KeyError" in findings[0].message
    assert "repro.serve.errors" in findings[0].message


def test_api_good_fixture_is_clean(load_fixture):
    context, _source = load_fixture("api_good.py", "repro/serve/http.py")
    assert list(ApiErrorChecker().check(context)) == []


def test_api_checker_scope_is_http_only(load_fixture):
    checker = ApiErrorChecker()
    http, _ = load_fixture("api_bad.py", "repro/serve/http.py")
    service, _ = load_fixture("api_bad.py", "repro/serve/service.py")
    assert checker.interested(http)
    assert not checker.interested(service)
