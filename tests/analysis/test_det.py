"""DET checker: fixture-verified positives, negatives, and scoping."""

from repro.analysis.det import DeterminismChecker


def test_det_bad_fixture_exact_codes_and_lines(load_fixture, line_of):
    context, source = load_fixture("det_bad.py", "repro/engine/det_bad.py")
    findings = list(DeterminismChecker().check(context))
    expected = {
        ("DET001", line_of(source, 'for item in {"b", "a"}:')),
        ("DET001", line_of(source, "for name in names:")),
        ("DET001", line_of(source, "for token in set(tokens)")),
        ("DET002", line_of(source, "for entry in os.listdir(path):")),
        ("DET003", line_of(source, "math.fsum({")),
        ("DET004", line_of(source, "key=lambda kv: kv[1])")),
        ("DET004", line_of(source, "scores.values()")),
    }
    assert {(finding.code, finding.line) for finding in findings} == expected
    assert all(finding.file == "repro/engine/det_bad.py"
               for finding in findings)


def test_det_good_fixture_is_clean(load_fixture):
    context, _source = load_fixture("det_good.py", "repro/serve/det_good.py")
    assert list(DeterminismChecker().check(context)) == []


def test_det_checker_scope(load_fixture):
    checker = DeterminismChecker()
    in_scope, _ = load_fixture("det_bad.py", "repro/fusion/det_bad.py")
    out_of_scope, _ = load_fixture("det_bad.py", "repro/datagen/det_bad.py")
    assert checker.interested(in_scope)
    assert not checker.interested(out_of_scope)


def test_det_finding_render_format(load_fixture):
    context, _source = load_fixture("det_bad.py", "repro/engine/det_bad.py")
    finding = next(iter(DeterminismChecker().check(context)))
    rendered = finding.render()
    assert rendered.startswith(f"repro/engine/det_bad.py:{finding.line} DET")
