"""KRN001 — registered kernels must implement the scoring surface."""

VECTORIZED = "src/repro/engine/vectorized.py"


def test_krn_bad_flags_each_hole_at_the_class(lint_tree, fixture_text,
                                              line_of):
    source = fixture_text("krn_bad.py")
    report = lint_tree({VECTORIZED: source})
    assert {(f.line, f.code) for f in report.findings} == {
        (line_of(source, "class NoBoundKernel:"), "KRN001"),
        (line_of(source, "class NoFlagKernel:"), "KRN001"),
    }
    messages = "\n".join(f.message for f in report.findings)
    assert "score_bound_rows" in messages
    assert "orientation_symmetric" in messages


def test_krn_reaches_kernels_through_helper_calls(lint_tree, fixture_text):
    # NoFlagKernel is only instantiated inside _build_indirect(); the
    # checker must follow build_kernel -> _build_indirect to find it.
    report = lint_tree({VECTORIZED: fixture_text("krn_bad.py")})
    assert any("NoFlagKernel" in f.message for f in report.findings)


def test_krn_good_is_clean(lint_tree, fixture_text):
    # Both styles of declaring the flag (class attribute and __init__
    # assignment) satisfy the contract.
    report = lint_tree({VECTORIZED: fixture_text("krn_good.py")})
    assert report.findings == []


INHERITED = '''\
class _BaseKernel:
    orientation_symmetric = True

    def score_rows(self, domain_rows, range_rows):
        return [1.0]


class DerivedKernel(_BaseKernel):
    def score_bound_rows(self, domain_rows, range_rows):
        return [1.0]


def build_kernel(sim, domain, range_, attribute):
    return DerivedKernel()
'''


def test_krn_counts_project_local_base_class_members(lint_tree):
    report = lint_tree({VECTORIZED: INHERITED})
    assert report.findings == []
