"""Shared helpers for the static-analysis test suite.

Fixture snippets live in ``tests/analysis/fixtures/`` as plain ``.py``
files (deliberately not named ``test_*`` so pytest never collects
them).  They are parsed — never imported — with a ``display_path``
inside the checker's scope, so a fixture sitting under ``tests/`` can
exercise rules that only apply to ``repro/serve/`` and friends.
"""

from pathlib import Path

import pytest

from repro.analysis import parse_module, run_paths

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def load_fixture():
    """Parse a fixture file under the given in-scope display path."""

    def _load(name, display_path):
        source = (FIXTURES / name).read_text(encoding="utf-8")
        context = parse_module(
            str(FIXTURES / name), source, display_path=display_path)
        return context, source

    return _load


@pytest.fixture
def fixture_text():
    """Raw source text of a fixture file (for line_of and lint_tree)."""

    def _read(name):
        return (FIXTURES / name).read_text(encoding="utf-8")

    return _read


@pytest.fixture
def lint_tree(tmp_path):
    """Materialise ``{relative path: content}`` under a tmp root and lint it.

    Paths default to ``("src",)`` so non-Python companions (docs
    tables) are visible to project checkers without being linted
    themselves.  No baseline, no cache — reports come back raw.
    """

    def _run(files, paths=("src",), cache_path=None):
        for relative, content in files.items():
            target = tmp_path / relative
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content, encoding="utf-8")
        existing = [p for p in paths if (tmp_path / p).exists()]
        return run_paths(existing, str(tmp_path), baseline=[],
                         cache_path=cache_path)

    _run.root = tmp_path
    return _run


@pytest.fixture
def line_of():
    """1-based line number of the unique line containing ``needle``."""

    def _line_of(source, needle):
        hits = [number for number, text
                in enumerate(source.splitlines(), start=1)
                if needle in text]
        assert len(hits) == 1, \
            f"needle {needle!r} matched lines {hits}, expected exactly one"
        return hits[0]

    return _line_of
