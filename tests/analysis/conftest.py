"""Shared helpers for the static-analysis test suite.

Fixture snippets live in ``tests/analysis/fixtures/`` as plain ``.py``
files (deliberately not named ``test_*`` so pytest never collects
them).  They are parsed — never imported — with a ``display_path``
inside the checker's scope, so a fixture sitting under ``tests/`` can
exercise rules that only apply to ``repro/serve/`` and friends.
"""

from pathlib import Path

import pytest

from repro.analysis import parse_module

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def load_fixture():
    """Parse a fixture file under the given in-scope display path."""

    def _load(name, display_path):
        source = (FIXTURES / name).read_text(encoding="utf-8")
        context = parse_module(
            str(FIXTURES / name), source, display_path=display_path)
        return context, source

    return _load


@pytest.fixture
def line_of():
    """1-based line number of the unique line containing ``needle``."""

    def _line_of(source, needle):
        hits = [number for number, text
                in enumerate(source.splitlines(), start=1)
                if needle in text]
        assert len(hits) == 1, \
            f"needle {needle!r} matched lines {hits}, expected exactly one"
        return hits[0]

    return _line_of
