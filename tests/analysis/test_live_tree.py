"""The committed tree must lint clean modulo the committed baseline.

This is the tier-1 mirror of the CI ``repro lint`` job: a new finding
in ``src/repro`` fails the test suite with the same rendered output
the CLI would print.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.analysis import load_baseline, run_paths
from repro.analysis.cli import DEFAULT_PATHS, main
from repro.analysis.runner import DEFAULT_BASELINE

REPO_ROOT = Path(__file__).resolve().parents[2]


def _default_paths():
    return [path for path in DEFAULT_PATHS
            if (REPO_ROOT / path).exists()]


def test_live_tree_clean_modulo_baseline():
    entries = load_baseline(str(REPO_ROOT / DEFAULT_BASELINE))
    report = run_paths(_default_paths(), str(REPO_ROOT), baseline=entries)
    assert report.files_checked > 50
    assert report.baseline_errors == [], report.render_text()
    assert [finding.render() for finding in report.unbaselined] == []
    assert report.exit_code() == 0


def test_full_tree_lint_stays_within_the_perf_budget(tmp_path):
    # The lint job has to be cheap enough to run on every push: under
    # ~10s from nothing and under ~2s with a warm cache.  Wall-clock
    # budgets flake under load, so each phase gets the better of two
    # attempts before failing.
    def timed(cache_path):
        start = time.monotonic()
        report = run_paths(_default_paths(), str(REPO_ROOT), baseline=[],
                           cache_path=cache_path)
        return time.monotonic() - start, report

    colds, warms = [], []
    for attempt in range(2):
        cache = tmp_path / f"lint-cache-{attempt}.json"
        cold, _ = timed(str(cache))
        warm, warm_report = timed(str(cache))
        assert warm_report.files_cached == warm_report.files_checked
        colds.append(cold)
        warms.append(warm)
        if cold < 10.0 and warm < 2.0:
            break

    assert min(colds) < 10.0, f"cold lint took {min(colds):.2f}s"
    assert min(warms) < 2.0, f"warm lint took {min(warms):.2f}s"


def test_every_baseline_entry_has_a_reason():
    entries = load_baseline(str(REPO_ROOT / DEFAULT_BASELINE))
    for entry in entries:
        assert entry.reason.strip(), \
            f"baseline entry {entry.code} for {entry.file} lacks a reason"


def test_cli_main_exits_zero_on_live_tree(capsys):
    assert main(["src/repro", "--root", str(REPO_ROOT)]) == 0
    out = capsys.readouterr().out
    assert "files checked" in out


def test_cli_json_output_parses(capsys):
    assert main(["src/repro", "--root", str(REPO_ROOT), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["unbaselined"] == []
    assert payload["baseline_errors"] == []


def test_repro_lint_subcommand_end_to_end():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "lint"],
        cwd=str(REPO_ROOT), env=env, capture_output=True, text=True,
        timeout=120)
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "0 finding(s)" in completed.stdout
