"""The committed tree must lint clean modulo the committed baseline.

This is the tier-1 mirror of the CI ``repro lint`` job: a new finding
in ``src/repro`` fails the test suite with the same rendered output
the CLI would print.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import load_baseline, run_paths
from repro.analysis.cli import main
from repro.analysis.runner import DEFAULT_BASELINE

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_live_tree_clean_modulo_baseline():
    entries = load_baseline(str(REPO_ROOT / DEFAULT_BASELINE))
    report = run_paths(["src/repro"], str(REPO_ROOT), baseline=entries)
    assert report.files_checked > 50
    assert report.baseline_errors == [], report.render_text()
    assert [finding.render() for finding in report.unbaselined] == []
    assert report.exit_code() == 0


def test_every_baseline_entry_has_a_reason():
    entries = load_baseline(str(REPO_ROOT / DEFAULT_BASELINE))
    for entry in entries:
        assert entry.reason.strip(), \
            f"baseline entry {entry.code} for {entry.file} lacks a reason"


def test_cli_main_exits_zero_on_live_tree(capsys):
    assert main(["src/repro", "--root", str(REPO_ROOT)]) == 0
    out = capsys.readouterr().out
    assert "files checked" in out


def test_cli_json_output_parses(capsys):
    assert main(["src/repro", "--root", str(REPO_ROOT), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["unbaselined"] == []
    assert payload["baseline_errors"] == []


def test_repro_lint_subcommand_end_to_end():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "lint"],
        cwd=str(REPO_ROOT), env=env, capture_output=True, text=True,
        timeout=120)
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "0 finding(s)" in completed.stdout
