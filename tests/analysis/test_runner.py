"""Runner/baseline mechanics: exit codes, staleness, round-trips."""

import json
import textwrap

import pytest

from repro.analysis.runner import (
    BaselineEntry,
    load_baseline,
    run_paths,
    write_baseline,
)

BAD_SOURCE = """\
def run(tokens):
    collected = []
    for token in set(tokens):
        collected.append(token)
    return collected
"""


@pytest.fixture
def bad_tree(tmp_path):
    target = tmp_path / "src" / "repro" / "serve" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(BAD_SOURCE), encoding="utf-8")
    return tmp_path


def test_unbaselined_finding_fails_with_exit_1(bad_tree):
    report = run_paths(["src"], str(bad_tree))
    assert [finding.code for finding in report.unbaselined] == ["DET001"]
    assert report.exit_code() == 1
    assert not report.ok
    assert "DET001" in report.render_text()
    assert "src/repro/serve/mod.py" in report.render_text()


def test_matching_baseline_entry_accepts_finding(bad_tree):
    finding = run_paths(["src"], str(bad_tree)).unbaselined[0]
    entry = BaselineEntry(code=finding.code, file=finding.file,
                          message=finding.message,
                          reason="legacy loop, scheduled for PR 8")
    report = run_paths(["src"], str(bad_tree), baseline=[entry])
    assert report.unbaselined == []
    assert [finding.code for finding in report.baselined] == ["DET001"]
    assert report.exit_code() == 0


def test_baseline_entry_with_empty_reason_is_config_error(bad_tree):
    finding = run_paths(["src"], str(bad_tree)).unbaselined[0]
    entry = BaselineEntry(code=finding.code, file=finding.file,
                          message=finding.message, reason="   ")
    report = run_paths(["src"], str(bad_tree), baseline=[entry])
    assert report.exit_code() == 2
    assert any("empty reason" in error for error in report.baseline_errors)
    # the finding is NOT accepted by a reason-less entry
    assert [finding.code for finding in report.unbaselined] == ["DET001"]


def test_stale_baseline_entry_is_config_error(bad_tree):
    stale = BaselineEntry(code="DET001", file="src/repro/serve/gone.py",
                          message="no longer exists", reason="was real once")
    report = run_paths(["src"], str(bad_tree), baseline=[stale])
    assert report.exit_code() == 2
    assert any("stale baseline entry" in error
               for error in report.baseline_errors)


def test_write_and_load_baseline_round_trip(bad_tree, tmp_path):
    finding = run_paths(["src"], str(bad_tree)).unbaselined[0]
    previous = [BaselineEntry(code=finding.code, file=finding.file,
                              message=finding.message, reason="kept reason")]
    baseline_path = tmp_path / "lint-baseline.json"
    write_baseline(str(baseline_path), [finding], previous)
    entries = load_baseline(str(baseline_path))
    assert len(entries) == 1
    assert entries[0].key() == (finding.code, finding.file, finding.message)
    assert entries[0].reason == "kept reason"


def test_load_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "absent.json")) == []


def test_load_baseline_rejects_unknown_version(tmp_path):
    payload = tmp_path / "lint-baseline.json"
    payload.write_text(json.dumps({"version": 99, "findings": []}),
                       encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(str(payload))


def test_syntax_error_becomes_syn001(tmp_path):
    target = tmp_path / "src" / "repro" / "serve" / "broken.py"
    target.parent.mkdir(parents=True)
    target.write_text("def broken(:\n", encoding="utf-8")
    report = run_paths(["src"], str(tmp_path))
    assert [finding.code for finding in report.unbaselined] == ["SYN001"]


def test_render_json_is_parseable(bad_tree):
    report = run_paths(["src"], str(bad_tree))
    payload = json.loads(report.render_json())
    assert payload["files_checked"] == 1
    assert payload["unbaselined"][0]["code"] == "DET001"
