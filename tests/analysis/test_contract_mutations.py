"""Acceptance: breaking a real cross-module contract breaks the lint.

Each test copies the *live* source files into a scratch project,
applies one realistic regression (dropping a handler branch, a docs
row, a protocol method), and asserts the matching family flags it —
and that the unmutated copy stays clean, so the signal is the
mutation, not the harness.
"""

from pathlib import Path

import pytest

from repro.analysis import run_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def _copy(tmp_path, *relatives):
    for relative in relatives:
        source = (REPO_ROOT / relative).read_text(encoding="utf-8")
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")


def _mutate(tmp_path, relative, old, new):
    target = tmp_path / relative
    text = target.read_text(encoding="utf-8")
    assert text.count(old) == 1, \
        f"mutation anchor {old!r} not unique in {relative}"
    target.write_text(text.replace(old, new), encoding="utf-8")


def _lint(tmp_path):
    return run_paths(["src"], str(tmp_path), baseline=[])


def test_copied_live_files_lint_clean(tmp_path):
    _copy(tmp_path,
          "src/repro/serve/cluster.py",
          "src/repro/serve/config.py",
          "src/repro/__main__.py",
          "src/repro/engine/vectorized.py",
          "src/repro/engine/sparse.py",
          "docs/serving.md")
    report = _lint(tmp_path)
    assert report.findings == [], \
        "\n".join(f.render() for f in report.findings)


def test_deleting_a_handle_branch_trips_rpc001(tmp_path):
    _copy(tmp_path, "src/repro/serve/cluster.py")
    # Retire the "stats" dispatch: its senders remain, so the op is
    # now sent-but-unhandled (and the renamed branch is dead).
    _mutate(tmp_path, "src/repro/serve/cluster.py",
            'if op == "stats":', 'if op == "stats_retired":')
    report = _lint(tmp_path)
    rpc = [f for f in report.findings if f.code == "RPC001"]
    assert any("'stats'" in f.message for f in rpc), \
        [f.render() for f in report.findings]


def test_deleting_a_docs_row_trips_cfg003(tmp_path):
    _copy(tmp_path, "src/repro/serve/config.py",
          "src/repro/__main__.py", "docs/serving.md")
    _mutate(tmp_path, "docs/serving.md",
            "| `attribute` ", "| (removed) ")
    report = _lint(tmp_path)
    cfg = [f for f in report.findings if f.code == "CFG003"]
    assert any("attribute" in f.message for f in cfg), \
        [f.render() for f in report.findings]


ANCHORS = {
    # first docstring line disambiguates NGramBitKernel's methods from
    # the other kernels implementing the same protocol
    "score_rows": ("    def score_rows(self, domain_rows, range_rows):\n"
                   '        """Score aligned row-index arrays'),
    "score_bound_rows": (
        "    def score_bound_rows(self, domain_rows, range_rows):\n"
        '        """Per-pair score upper bounds'),
}


@pytest.mark.parametrize("method", sorted(ANCHORS))
def test_deleting_a_kernel_method_trips_krn001(tmp_path, method):
    _copy(tmp_path, "src/repro/engine/vectorized.py",
          "src/repro/engine/sparse.py")
    anchor = ANCHORS[method]
    _mutate(tmp_path, "src/repro/engine/vectorized.py", anchor,
            anchor.replace(f"def {method}(", f"def {method}_retired("))
    report = _lint(tmp_path)
    krn = [f for f in report.findings if f.code == "KRN001"]
    assert any("NGramBitKernel" in f.message and method in f.message
               for f in krn), \
        [f.render() for f in report.findings]
