"""LCK002/LCK003 — interprocedural lock discipline and order cycles."""

SERVICE = "src/repro/serve/service.py"
LOCKS = "src/repro/serve/locks.py"


def test_lck002_flags_only_unlocked_paths(lint_tree, fixture_text,
                                          line_of):
    source = fixture_text("lck2_bad.py")
    report = lint_tree({SERVICE: source})
    assert {(f.line, f.code) for f in report.findings} == {
        (line_of(source, "bad: public caller holds nothing"), "LCK002"),
        (line_of(source, "bad: helper chain holds nothing"), "LCK002"),
    }


def test_lck002_private_helper_called_under_lock_is_clean(lint_tree,
                                                          fixture_text,
                                                          line_of):
    # _helper is only ever called with _lock held; the syntactic LCK001
    # rule used to flag its self._flush() — LCK002 must not.
    source = fixture_text("lck2_bad.py")
    report = lint_tree({SERVICE: source})
    helper_call = line_of(source, "def _helper(self):") + 1
    assert all(f.line != helper_call for f in report.findings)


def test_lck002_acquire_release_span_is_recognised(lint_tree,
                                                   fixture_text, line_of):
    # The try/finally acquire()/release() shape in ok_acquire covers
    # the guarded call — no finding inside that span.
    source = fixture_text("lck2_bad.py")
    report = lint_tree({SERVICE: source})
    guarded = line_of(source, "self._lock.acquire()") + 2
    assert all(f.line != guarded for f in report.findings)


def test_lck003_reports_the_ab_ba_cycle(lint_tree, fixture_text):
    report = lint_tree({LOCKS: fixture_text("lck3_bad.py")})
    assert {f.code for f in report.findings} == {"LCK003"}
    message = report.findings[0].message
    assert "Service._lock" in message
    assert "Repository._lock" in message
    assert "deadlock" in message


def test_lck003_consistent_order_is_clean(lint_tree, fixture_text):
    report = lint_tree({LOCKS: fixture_text("lck3_good.py")})
    assert report.findings == []
