"""Unit tests for the project model: extraction, resolution, caching."""

import ast
import json

from repro.analysis.graph import (
    FileSummary,
    ProjectGraph,
    module_name_for,
    summarize_module,
)


def _summarize(display, source):
    return summarize_module(display, ast.parse(source))


# ----------------------------------------------------------------------
# module naming
# ----------------------------------------------------------------------

def test_module_name_strips_src_and_init():
    assert module_name_for("src/repro/serve/cluster.py") \
        == "repro.serve.cluster"
    assert module_name_for("src/repro/__init__.py") == "repro"
    assert module_name_for("benchmarks/bench_match.py") \
        == "benchmarks.bench_match"


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------

IMPORTS = '''\
import os
import threading as thr
from repro.engine import sparse
from repro.serve.index import IncrementalIndex as Index
'''


def test_imports_map_local_names_to_dotted_targets():
    summary = _summarize("src/repro/x.py", IMPORTS)
    assert summary.imports["os"] == "os"
    assert summary.imports["thr"] == "threading"
    assert summary.imports["sparse"] == "repro.engine.sparse"
    assert summary.imports["Index"] == "repro.serve.index.IncrementalIndex"


CLASSY = '''\
from dataclasses import dataclass


@dataclass
class Config:
    name: str = "x"
    count: int = 0
    DEFAULT = 10

    def validate(self):
        config = self
        if not config.name:
            raise ValueError("name")
        object.__setattr__(self, "count", max(0, self.count))
        return self


class Worker:
    def __init__(self, repo):
        self.repo: Repo = repo
        self.index = Index()
        self._n = 0

    def run(self):
        self.repo.sync()
'''


def test_class_summary_fields_attrs_and_types():
    summary = _summarize("src/repro/serve/config.py", CLASSY)
    config, worker = summary.classes
    assert [f.name for f in config.fields] == ["name", "count"]
    assert config.fields[0].annotation == "str"
    assert "DEFAULT" in config.class_attrs
    assert config.methods == ["validate"]
    assert worker.attr_types == {"repo": "Repo", "index": "Index"}
    assert set(worker.instance_attrs) >= {"repo", "index", "_n"}


def test_attr_refs_follow_self_alias_and_setattr():
    summary = _summarize("src/repro/serve/config.py", CLASSY)
    validate = next(f for f in summary.functions if f.name == "validate")
    # `config = self` alias and object.__setattr__ both count as refs
    assert "name" in validate.attr_refs
    assert "count" in validate.attr_refs


LOCKED = '''\
class Service:
    def timed(self):
        with self._lock:
            self._flush()

    def manual(self):
        self._lock.acquire()
        try:
            self._flush()
        finally:
            self._lock.release()
        self.after()
'''


def test_lock_spans_with_block_and_acquire_release():
    summary = _summarize("src/repro/serve/service.py", LOCKED)
    timed, manual = summary.functions
    (span,) = timed.lock_spans
    assert span.lock == "_lock" and span.via == "with"
    assert span.covers(4)
    (span,) = manual.lock_spans
    assert span.via == "acquire"
    assert span.covers(9)          # the guarded self._flush()
    assert not span.covers(12)     # self.after() runs post-release


PROTOCOL = '''\
class Backend:
    def handle(self, op, payload):
        if op == "match":
            return payload["records"]
        if op == "stats":
            return payload.get("verbose")
        raise ValueError(op)


class Router:
    def run(self, records):
        payload = {"records": records}
        self.shard.send("match", payload)
        self.shard.call("stats", {"verbose": True})
'''


def test_op_branches_key_reads_and_send_calls():
    summary = _summarize("src/repro/serve/cluster.py", PROTOCOL)
    handle = next(f for f in summary.functions if f.name == "handle")
    assert [(b.op, b.name) for b in handle.op_branches] == \
        [("match", "op"), ("stats", "op")]
    reads = {(r.key, r.required) for r in handle.key_reads}
    assert reads == {("records", True), ("verbose", False)}

    run = next(f for f in summary.functions if f.name == "run")
    assert run.dict_assigns == [(12, "payload", ["records"])]
    send = next(c for c in run.calls if c.tail == "send")
    assert send.str_arg0 == "match" and send.arg1_name == "payload"
    call = next(c for c in run.calls if c.tail == "call")
    assert call.str_arg0 == "stats"
    assert call.arg1_dict_keys == ["verbose"]


CLI = '''\
import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument("--cache-size", type=int, default=1024)
    parser.add_argument("--missing", dest="missing_policy")
    return parser
'''


def test_cli_flags_with_derived_and_explicit_dest():
    summary = _summarize("src/repro/__main__.py", CLI)
    by_flag = {flag.flags[0]: flag for flag in summary.cli_flags}
    assert by_flag["--cache-size"].dest == "cache_size"
    assert by_flag["--missing"].dest == "missing_policy"


# ----------------------------------------------------------------------
# JSON round-trip (what the cache persists)
# ----------------------------------------------------------------------

def test_summary_round_trips_through_json():
    for source in (IMPORTS, CLASSY, LOCKED, PROTOCOL, CLI):
        summary = _summarize("src/repro/serve/m.py", source)
        payload = json.loads(json.dumps(summary.to_dict()))
        assert FileSummary.from_dict(payload) == summary


# ----------------------------------------------------------------------
# resolution and the call graph
# ----------------------------------------------------------------------

LIB = '''\
def helper():
    return 1


class Kernel:
    def score_rows(self, a, b):
        return helper()
'''

APP = '''\
from repro.engine import lib
from repro.engine.lib import Kernel


def build():
    kernel = Kernel()
    return lib.helper(), kernel
'''


def _two_module_graph():
    return ProjectGraph("/nonexistent-root", [
        _summarize("src/repro/engine/lib.py", LIB),
        _summarize("src/repro/engine/app.py", APP),
    ])


def test_resolution_via_from_import_and_module_attribute():
    graph = _two_module_graph()
    app = graph.module_named("repro.engine.app")
    assert app is not None

    symbol = graph.resolve("Kernel", app)
    assert symbol is not None and symbol.kind == "class"
    assert symbol.qualname == "repro.engine.lib.Kernel"

    symbol = graph.resolve("lib.helper", app)
    assert symbol is not None and symbol.kind == "function"
    assert symbol.qualname == "repro.engine.lib.helper"


def test_callees_cross_module():
    graph = _two_module_graph()
    app = graph.module_named("repro.engine.app")
    build = next(f for f in app.functions if f.name == "build")
    names = {symbol.qualname for symbol in graph.callees(build, app)}
    assert names == {"repro.engine.lib.Kernel",
                     "repro.engine.lib.helper"}


def test_methods_of_matches_only_the_class():
    graph = _two_module_graph()
    hit = graph.class_named("repro.engine.lib.Kernel")
    assert hit is not None
    cls, file = hit
    assert [m.name for m in graph.methods_of(cls, file)] == ["score_rows"]
