"""Inline suppression mechanics: reasons, aliases, targeting, SUP001/2."""

import textwrap

from repro.analysis import run_paths
from repro.analysis.core import parse_suppressions
from repro.analysis.runner import check_file

LOOP_TEMPLATE = """\
def run(tokens):
    for token in set(tokens):{trailer}
        {body}
"""


def write_module(tmp_path, source):
    target = tmp_path / "src" / "repro" / "serve" / "mod.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


def check(tmp_path, source):
    target = write_module(tmp_path, source)
    return check_file(str(target), str(tmp_path))


def test_suppression_with_reason_silences_finding(tmp_path):
    active, suppressed = check(tmp_path, LOOP_TEMPLATE.format(
        trailer="  # repro: allow-unordered -- membership only",
        body="record(token)"))
    assert active == []
    assert [finding.code for finding in suppressed] == ["DET001"]


def test_suppression_without_reason_yields_sup001(tmp_path):
    active, suppressed = check(tmp_path, LOOP_TEMPLATE.format(
        trailer="  # repro: allow-unordered", body="record(token)"))
    assert [finding.code for finding in suppressed] == ["DET001"]
    assert [finding.code for finding in active] == ["SUP001"]
    assert "no reason" in active[0].message


def test_exact_code_suppression_matches_only_that_code(tmp_path):
    active, suppressed = check(tmp_path, LOOP_TEMPLATE.format(
        trailer="  # repro: allow-det001 -- commutative fold",
        body="record(token)"))
    assert active == []
    assert [finding.code for finding in suppressed] == ["DET001"]

    active, suppressed = check(tmp_path, LOOP_TEMPLATE.format(
        trailer="  # repro: allow-det002 -- wrong code on purpose",
        body="record(token)"))
    assert [finding.code for finding in active] == ["DET001"]
    assert suppressed == []


def test_comment_only_line_covers_next_code_line(tmp_path):
    active, suppressed = check(tmp_path, """\
    def run(tokens):
        # repro: allow-unordered -- counts are commutative
        for token in set(tokens):
            record(token)
    """)
    assert active == []
    assert [finding.code for finding in suppressed] == ["DET001"]


def test_unrelated_line_suppression_does_not_cover(tmp_path):
    active, suppressed = check(tmp_path, """\
    def run(tokens):
        total = 0  # repro: allow-unordered -- wrong line
        for token in set(tokens):
            total += 1
        return total
    """)
    assert [finding.code for finding in active] == ["DET001"]
    assert suppressed == []


def test_parse_suppressions_extracts_token_reason_target():
    source = textwrap.dedent("""\
    value = compute()  # repro: allow-unpicklable -- process-local
    # repro: allow-durability -- scratch file
    publish()
    """)
    first, second = parse_suppressions(source)
    assert (first.token, first.reason, first.line, first.target_line) == \
        ("unpicklable", "process-local", 1, 1)
    assert (second.token, second.reason, second.line, second.target_line) == \
        ("durability", "scratch file", 2, 3)


def test_docstring_allow_examples_are_not_suppressions():
    # Only genuine comment tokens count — a docstring quoting the
    # syntax (as the checker modules themselves do) must not register.
    source = textwrap.dedent('''\
    """Suppress with ``# repro: allow-durability -- <reason>``."""

    import os


    def publish(a, b):
        os.rename(a, b)  # repro: allow-durability -- scratch file
    ''')
    (only,) = parse_suppressions(source)
    assert only.line == 7


def run_tree(tmp_path, source):
    target = tmp_path / "src" / "repro" / "serve" / "mod.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_paths(["src"], str(tmp_path), baseline=[])


def test_unused_reasoned_suppression_yields_sup002(tmp_path):
    report = run_tree(tmp_path, """\
    def run(tokens):
        # repro: allow-unordered -- nothing here needs this
        return list(tokens)
    """)
    assert [f.code for f in report.findings] == ["SUP002"]
    assert report.findings[0].line == 2
    assert "matches no finding" in report.findings[0].message


def test_used_suppression_yields_no_sup002(tmp_path):
    report = run_tree(tmp_path, LOOP_TEMPLATE.format(
        trailer="  # repro: allow-unordered -- membership only",
        body="record(token)"))
    assert report.findings == []
    assert [f.code for f in report.suppressed] == ["DET001"]


def test_sup001_still_wins_over_sup002_for_reasonless(tmp_path):
    # A reasonless suppression that also matches nothing reports the
    # missing reason (SUP001), not the staleness (SUP002).
    report = run_tree(tmp_path, """\
    def run(tokens):
        # repro: allow-unordered
        return list(tokens)
    """)
    assert [f.code for f in report.findings] == ["SUP001"]
