"""DUR checker: os.replace must be fsync-dominated; os.rename banned."""

from repro.analysis.dur import DurabilityChecker


def test_dur_bad_fixture_exact_codes_and_lines(load_fixture, line_of):
    context, source = load_fixture("dur_bad.py", "repro/serve/dur_bad.py")
    findings = list(DurabilityChecker().check(context))
    expected = {
        ("DUR001", line_of(source, "os.replace(tmp_path, final_path)")),
        ("DUR002", line_of(source, "os.rename(source, destination)")),
    }
    assert {(finding.code, finding.line) for finding in findings} == expected


def test_dur_good_fixture_is_clean(load_fixture):
    context, _source = load_fixture("dur_good.py", "repro/serve/dur_good.py")
    assert list(DurabilityChecker().check(context)) == []


def test_dur_checker_scope(load_fixture):
    checker = DurabilityChecker()
    in_scope, _ = load_fixture("dur_bad.py", "repro/serve/dur_bad.py")
    out_of_scope, _ = load_fixture("dur_bad.py", "repro/engine/dur_bad.py")
    assert checker.interested(in_scope)
    assert not checker.interested(out_of_scope)
