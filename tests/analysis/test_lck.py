"""LCK checker: annotated methods must be statically lock-dominated."""

import ast

from repro.analysis.lck import LockDisciplineChecker, method_lock_requirements


def test_lck_bad_fixture_flags_unlocked_call(load_fixture, line_of):
    context, source = load_fixture("lck_bad.py", "repro/serve/lck_bad.py")
    findings = list(LockDisciplineChecker().check(context))
    assert [(finding.code, finding.line) for finding in findings] == [
        ("LCK001", line_of(source, "self._evict()")),
    ]
    assert "_lock" in findings[0].message
    assert "_evict" in findings[0].message


def test_lck_good_fixture_is_clean(load_fixture):
    context, _source = load_fixture("lck_good.py", "repro/serve/lck_good.py")
    assert list(LockDisciplineChecker().check(context)) == []


def test_lck_checker_scope(load_fixture):
    checker = LockDisciplineChecker()
    in_scope, _ = load_fixture("lck_bad.py", "repro/engine/lck_bad.py")
    out_of_scope, _ = load_fixture("lck_bad.py", "repro/model/lck_bad.py")
    assert checker.interested(in_scope)
    assert not checker.interested(out_of_scope)


def test_method_lock_requirements_introspection(load_fixture):
    context, _source = load_fixture("lck_good.py", "repro/serve/lck_good.py")
    class_node = next(node for node in ast.walk(context.tree)
                      if isinstance(node, ast.ClassDef))
    assert method_lock_requirements(class_node) == [
        ("_evict", "_lock"),
        ("compact", "_lock"),
    ]
