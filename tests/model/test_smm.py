"""Tests for the source-mapping model."""

import pytest

from repro.core.mapping import Mapping, MappingKind
from repro.model.smm import MappingType, SourceMappingModel


@pytest.fixture
def smm():
    model = SourceMappingModel()
    for physical in ("DBLP", "ACM", "GS"):
        model.create_source(physical, "Publication")
    model.register_mapping(
        "dblp-acm",
        Mapping.from_correspondences("DBLP.Publication", "ACM.Publication",
                                     [("p1", "q1", 1.0)]),
    )
    model.register_mapping(
        "dblp-gs",
        Mapping.from_correspondences("DBLP.Publication", "GS.Publication",
                                     [("p1", "g1", 1.0)]),
    )
    return model


class TestMappingType:
    def test_cardinality_validated(self):
        with pytest.raises(ValueError):
            MappingType("Bad", "A", "B", "2:3")

    def test_same_kind_detection(self):
        same = MappingType("PubPub", "Publication", "Publication", "1:1")
        assert same.kind == MappingKind.SAME

    def test_association_kind(self):
        asso = MappingType("PubAuthor", "Publication", "Author", "n:m")
        assert asso.kind == MappingKind.ASSOCIATION


class TestRegistration:
    def test_create_source_registers_everything(self, smm):
        assert smm.get_source("DBLP.Publication") is not None
        assert smm.get_physical_source("DBLP") is not None

    def test_duplicate_source_rejected(self, smm):
        with pytest.raises(ValueError):
            smm.create_source("DBLP", "Publication")

    def test_register_mapping_unknown_source(self, smm):
        mapping = Mapping("Nowhere.Publication", "ACM.Publication")
        with pytest.raises(ValueError):
            smm.register_mapping("bad", mapping)

    def test_duplicate_mapping_name(self, smm):
        mapping = Mapping("DBLP.Publication", "ACM.Publication")
        with pytest.raises(ValueError):
            smm.register_mapping("dblp-acm", mapping)

    def test_replace_allowed(self, smm):
        mapping = Mapping("DBLP.Publication", "ACM.Publication")
        smm.register_mapping("dblp-acm", mapping, replace=True)
        assert len(smm.find_mapping("dblp-acm")) == 0

    def test_mapping_type_compatibility_checked(self, smm):
        smm.create_source("DBLP", "Author")
        smm.add_mapping_type(
            MappingType("PubAuthor", "Publication", "Author", "n:m"))
        wrong = Mapping("DBLP.Publication", "ACM.Publication")
        with pytest.raises(ValueError):
            smm.register_mapping("wrong-type", wrong, "PubAuthor")

    def test_require_source(self, smm):
        with pytest.raises(KeyError):
            smm.require_source("Missing.Publication")


class TestStructuralQueries:
    def test_sources_of_type(self, smm):
        assert len(smm.sources_of_type("Publication")) == 3

    def test_mappings_between(self, smm):
        found = smm.mappings_between("DBLP.Publication", "ACM.Publication")
        assert len(found) == 1

    def test_compose_paths_via_intermediate(self, smm):
        # GS -> ACM must route through DBLP (inverting dblp-gs)
        paths = smm.find_compose_paths("GS.Publication", "ACM.Publication")
        assert ["dblp-gs~inv", "dblp-acm"] in paths

    def test_direct_path_shortest_first(self, smm):
        paths = smm.find_compose_paths("DBLP.Publication", "ACM.Publication")
        assert paths[0] == ["dblp-acm"]

    def test_resolve_path_inverts(self, smm):
        mappings = smm.resolve_path(["dblp-gs~inv", "dblp-acm"])
        assert mappings[0].domain == "GS.Publication"
        assert mappings[1].range == "ACM.Publication"

    def test_resolve_unknown_path(self, smm):
        with pytest.raises(KeyError):
            smm.resolve_path(["ghost"])

    def test_paths_missing_node(self, smm):
        assert smm.find_compose_paths("X", "Y") == []
