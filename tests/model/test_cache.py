"""Tests for the mapping cache."""

import pytest

from repro.core.mapping import Mapping
from repro.model.cache import MappingCache


def make_mapping(n: int) -> Mapping:
    return Mapping.from_correspondences(
        "A", "B", [(f"a{i}", f"b{i}", 1.0) for i in range(n)])


class TestMappingCache:
    def test_put_get(self):
        cache = MappingCache()
        mapping = make_mapping(2)
        cache.put("key", mapping)
        assert cache.get("key") is mapping

    def test_miss_returns_none(self):
        cache = MappingCache()
        assert cache.get("missing") is None

    def test_hit_miss_counters(self):
        cache = MappingCache()
        cache.get("x")
        cache.put("x", make_mapping(1))
        cache.get("x")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_lru_eviction_order(self):
        cache = MappingCache(max_entries=2)
        cache.put("a", make_mapping(1))
        cache.put("b", make_mapping(1))
        cache.get("a")  # refresh 'a'
        cache.put("c", make_mapping(1))
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_put_refreshes_existing(self):
        cache = MappingCache(max_entries=2)
        cache.put("a", make_mapping(1))
        cache.put("b", make_mapping(1))
        cache.put("a", make_mapping(2))
        cache.put("c", make_mapping(1))
        assert "a" in cache and "b" not in cache

    def test_invalidate(self):
        cache = MappingCache()
        cache.put("a", make_mapping(1))
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False

    def test_clear_keeps_counters(self):
        cache = MappingCache()
        cache.put("a", make_mapping(1))
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_make_key_deterministic(self):
        assert MappingCache.make_key("merge", "m1", "m2", 0.8) == \
            MappingCache.make_key("merge", "m1", "m2", 0.8)
        assert MappingCache.make_key("merge", "m1") != \
            MappingCache.make_key("compose", "m1")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MappingCache(max_entries=0)
