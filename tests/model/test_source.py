"""Tests for physical and logical sources."""

import pytest

from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource, ObjectType, PhysicalSource


@pytest.fixture
def lds():
    source = LogicalSource(PhysicalSource("DBLP"), ObjectType("Publication"))
    source.add_record("p1", title="Alpha", year=2001)
    source.add_record("p2", title="Beta", year=2002)
    source.add_record("p3", title="Gamma")
    return source


class TestPhysicalSource:
    def test_name_required(self):
        with pytest.raises(ValueError):
            PhysicalSource("")

    def test_downloadable_default(self):
        assert PhysicalSource("DBLP").downloadable is True

    def test_query_only_source(self):
        assert PhysicalSource("GS", downloadable=False).downloadable is False


class TestObjectType:
    def test_name_required(self):
        with pytest.raises(ValueError):
            ObjectType("")

    def test_equality(self):
        assert ObjectType("Publication") == ObjectType("Publication")


class TestLogicalSource:
    def test_qualified_name(self, lds):
        assert lds.name == "DBLP.Publication"

    def test_add_and_get(self, lds):
        assert lds.get("p1").get("title") == "Alpha"

    def test_duplicate_id_rejected(self, lds):
        with pytest.raises(ValueError):
            lds.add(ObjectInstance("p1"))

    def test_require_missing_raises(self, lds):
        with pytest.raises(KeyError):
            lds.require("nope")

    def test_contains_and_len(self, lds):
        assert "p2" in lds
        assert len(lds) == 3

    def test_iteration_order(self, lds):
        assert [instance.id for instance in lds] == ["p1", "p2", "p3"]

    def test_attribute_values_skips_missing(self, lds):
        assert sorted(lds.attribute_values("year")) == [2001, 2002]

    def test_select_predicate(self, lds):
        recent = lds.select(lambda inst: inst.get("year") == 2002)
        assert [instance.id for instance in recent] == ["p2"]

    def test_subset_view(self, lds):
        view = lds.subset(["p1", "p3", "ghost"])
        assert view.ids() == ["p1", "p3"]
        assert view.name == lds.name

    def test_subset_shares_instances(self, lds):
        view = lds.subset(["p1"])
        assert view.get("p1") is lds.get("p1")

    def test_ids_and_instances(self, lds):
        assert lds.ids() == ["p1", "p2", "p3"]
        assert len(lds.instances()) == 3
