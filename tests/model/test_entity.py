"""Tests for object instances."""

import pytest

from repro.model.entity import ObjectInstance


class TestObjectInstance:
    def test_requires_id(self):
        with pytest.raises(ValueError):
            ObjectInstance("")

    def test_requires_string_id(self):
        with pytest.raises(ValueError):
            ObjectInstance(123)  # type: ignore[arg-type]

    def test_attribute_access(self):
        instance = ObjectInstance("p1", {"title": "A", "year": 2001})
        assert instance["title"] == "A"
        assert instance.get("year") == 2001

    def test_get_default(self):
        instance = ObjectInstance("p1")
        assert instance.get("missing", "fallback") == "fallback"

    def test_contains(self):
        instance = ObjectInstance("p1", {"title": "A"})
        assert "title" in instance
        assert "year" not in instance

    def test_attributes_are_read_only(self):
        instance = ObjectInstance("p1", {"title": "A"})
        with pytest.raises(TypeError):
            instance.attributes["title"] = "B"  # type: ignore[index]

    def test_source_dict_mutation_isolated(self):
        source = {"title": "A"}
        instance = ObjectInstance("p1", source)
        source["title"] = "B"
        assert instance["title"] == "A"

    def test_with_attributes_creates_copy(self):
        instance = ObjectInstance("p1", {"title": "A"})
        updated = instance.with_attributes(year=2001)
        assert updated is not instance
        assert updated["year"] == 2001
        assert "year" not in instance

    def test_equality_by_id_and_attributes(self):
        assert ObjectInstance("p1", {"a": 1}) == ObjectInstance("p1", {"a": 1})
        assert ObjectInstance("p1", {"a": 1}) != ObjectInstance("p1", {"a": 2})

    def test_hash_by_id(self):
        assert hash(ObjectInstance("p1")) == hash(ObjectInstance("p1", {"x": 1}))

    def test_iteration_yields_attribute_names(self):
        instance = ObjectInstance("p1", {"a": 1, "b": 2})
        assert sorted(instance) == ["a", "b"]
