"""Tests for the SQLite mapping repository."""

import pytest

from repro.core.mapping import Mapping, MappingKind
from repro.model.repository import MappingRepository


@pytest.fixture
def repository():
    with MappingRepository(":memory:") as repo:
        yield repo


@pytest.fixture
def sample():
    return Mapping.from_correspondences(
        "DBLP.Publication", "ACM.Publication",
        [("p1", "q1", 1.0), ("p2", "q2", 0.8), ("p3", "q3", 0.6)],
    )


class TestSaveLoad:
    def test_round_trip(self, repository, sample):
        repository.save("pubs", sample)
        loaded = repository.load("pubs")
        assert loaded.to_rows() == sample.to_rows()
        assert loaded.domain == sample.domain
        assert loaded.kind == MappingKind.SAME

    def test_association_kind_preserved(self, repository):
        mapping = Mapping.from_correspondences(
            "DBLP.Publication", "DBLP.Author", [("p1", "a1", 1.0)],
            kind=MappingKind.ASSOCIATION,
        )
        repository.save("pub-author", mapping)
        assert repository.load("pub-author").kind == MappingKind.ASSOCIATION

    def test_load_missing_raises(self, repository):
        with pytest.raises(KeyError):
            repository.load("ghost")

    def test_replace_default(self, repository, sample):
        repository.save("pubs", sample)
        smaller = Mapping.from_correspondences(
            "DBLP.Publication", "ACM.Publication", [("p1", "q1", 0.5)])
        repository.save("pubs", smaller)
        assert len(repository.load("pubs")) == 1

    def test_no_replace_raises(self, repository, sample):
        repository.save("pubs", sample)
        with pytest.raises(ValueError):
            repository.save("pubs", sample, replace=False)

    def test_empty_name_rejected(self, repository, sample):
        with pytest.raises(ValueError):
            repository.save("", sample)


class TestCatalog:
    def test_contains(self, repository, sample):
        repository.save("pubs", sample)
        assert "pubs" in repository
        assert "ghost" not in repository

    def test_names_sorted(self, repository, sample):
        repository.save("zeta", sample)
        repository.save("alpha", sample)
        assert repository.names() == ["alpha", "zeta"]

    def test_len(self, repository, sample):
        assert len(repository) == 0
        repository.save("pubs", sample)
        assert len(repository) == 1

    def test_delete(self, repository, sample):
        repository.save("pubs", sample)
        assert repository.delete("pubs") is True
        assert repository.delete("pubs") is False
        assert "pubs" not in repository

    def test_info(self, repository, sample):
        repository.save("pubs", sample)
        info = repository.info("pubs")
        assert info["correspondences"] == 3
        assert info["domain"] == "DBLP.Publication"

    def test_info_missing(self, repository):
        assert repository.info("ghost") is None


class TestRelationalJoin:
    def test_join_is_compose_prejoin(self, repository):
        left = Mapping.from_correspondences(
            "A", "C", [("a1", "c1", 1.0), ("a2", "c2", 0.5)])
        right = Mapping.from_correspondences(
            "C", "B", [("c1", "b1", 0.8), ("c2", "b2", 1.0)])
        repository.save("left", left)
        repository.save("right", right)
        rows = repository.join("left", "right")
        assert ("a1", "c1", "b1", 1.0, 0.8) in rows
        assert len(rows) == 2

    def test_join_empty_when_no_shared_ids(self, repository):
        repository.save("left", Mapping.from_correspondences(
            "A", "C", [("a1", "c1", 1.0)]))
        repository.save("right", Mapping.from_correspondences(
            "C", "B", [("cX", "b1", 1.0)]))
        assert repository.join("left", "right") == []


class TestPersistence:
    def test_disk_round_trip(self, tmp_path, sample):
        path = str(tmp_path / "mappings.db")
        with MappingRepository(path) as repo:
            repo.save("pubs", sample)
        with MappingRepository(path) as repo:
            assert repo.load("pubs").to_rows() == sample.to_rows()

    def test_file_backed_store_uses_wal(self, tmp_path):
        with MappingRepository(str(tmp_path / "wal.db")) as repo:
            assert repo.journal_mode() == "wal"

    def test_memory_store_has_no_wal(self, repository):
        # WAL is meaningless for :memory:; the shared-connection +
        # lock path serves it instead
        assert repository.journal_mode() != "wal"


class TestAppend:
    def test_mapping_creates_header_and_rows(self, repository, sample):
        cardinality = repository.append("pubs", sample)
        assert cardinality == 3
        assert repository.load("pubs").to_rows() == sample.to_rows()

    def test_bare_triples_need_an_existing_mapping(self, repository):
        with pytest.raises(KeyError):
            repository.append("ghost", [("a", "b", 0.5)])

    def test_incremental_append_accumulates(self, repository, sample):
        repository.append("pubs", sample)
        cardinality = repository.append("pubs", [("p9", "q9", 0.4)])
        assert cardinality == 4
        loaded = repository.load("pubs")
        assert loaded.get("p9", "q9") == pytest.approx(0.4)
        assert loaded.get("p1", "q1") == pytest.approx(1.0)
        assert repository.info("pubs")["correspondences"] == 4

    def test_conflicts_keep_the_larger_similarity(self, repository, sample):
        repository.append("pubs", sample)
        repository.append("pubs", [("p2", "q2", 0.3)])   # lower: ignored
        repository.append("pubs", [("p3", "q3", 0.9)])   # higher: wins
        loaded = repository.load("pubs")
        assert loaded.get("p2", "q2") == pytest.approx(0.8)
        assert loaded.get("p3", "q3") == pytest.approx(0.9)
        assert len(loaded) == 3

    def test_invalid_similarity_rejected(self, repository, sample):
        repository.append("pubs", sample)
        with pytest.raises(ValueError):
            repository.append("pubs", [("x", "y", 1.5)])

    def test_empty_name_rejected(self, repository, sample):
        with pytest.raises(ValueError):
            repository.append("", sample)


class TestThreading:
    @pytest.mark.parametrize("backing", ["memory", "file"])
    def test_concurrent_appends(self, tmp_path, backing, sample):
        import threading

        path = ":memory:" if backing == "memory" \
            else str(tmp_path / "threads.db")
        with MappingRepository(path) as repo:
            repo.append("pubs", sample)
            errors = []

            def worker(start):
                try:
                    for i in range(start, start + 25):
                        repo.append("pubs", [(f"d{i}", f"r{i}", 0.5)])
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=worker, args=(i * 100,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert repo.info("pubs")["correspondences"] == 3 + 4 * 25

    def test_reads_from_other_threads(self, tmp_path, sample):
        import threading

        with MappingRepository(str(tmp_path / "reads.db")) as repo:
            repo.save("pubs", sample)
            seen = []

            def reader():
                seen.append(repo.load("pubs").to_rows())

            thread = threading.Thread(target=reader)
            thread.start()
            thread.join()
            assert seen == [sample.to_rows()]

    def test_closed_repository_rejects_use(self, sample):
        repo = MappingRepository(":memory:")
        repo.close()
        with pytest.raises(RuntimeError):
            repo.append("pubs", sample)

    def test_dead_threads_release_their_connections(self, tmp_path, sample):
        """One connection per HTTP handler thread must not outlive the
        thread — a busy server would otherwise leak descriptors."""
        import gc
        import threading

        with MappingRepository(str(tmp_path / "release.db")) as repo:
            repo.save("pubs", sample)

            def worker(i):
                repo.append("pubs", [(f"t{i}", f"r{i}", 0.5)])

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            del threads
            gc.collect()
            # only the creating thread's connection remains tracked
            assert len(repo._connections) == 1
            assert repo.info("pubs")["correspondences"] == 3 + 8
