"""Tests for the SQLite mapping repository."""

import pytest

from repro.core.mapping import Mapping, MappingKind
from repro.model.repository import MappingRepository


@pytest.fixture
def repository():
    with MappingRepository(":memory:") as repo:
        yield repo


@pytest.fixture
def sample():
    return Mapping.from_correspondences(
        "DBLP.Publication", "ACM.Publication",
        [("p1", "q1", 1.0), ("p2", "q2", 0.8), ("p3", "q3", 0.6)],
    )


class TestSaveLoad:
    def test_round_trip(self, repository, sample):
        repository.save("pubs", sample)
        loaded = repository.load("pubs")
        assert loaded.to_rows() == sample.to_rows()
        assert loaded.domain == sample.domain
        assert loaded.kind == MappingKind.SAME

    def test_association_kind_preserved(self, repository):
        mapping = Mapping.from_correspondences(
            "DBLP.Publication", "DBLP.Author", [("p1", "a1", 1.0)],
            kind=MappingKind.ASSOCIATION,
        )
        repository.save("pub-author", mapping)
        assert repository.load("pub-author").kind == MappingKind.ASSOCIATION

    def test_load_missing_raises(self, repository):
        with pytest.raises(KeyError):
            repository.load("ghost")

    def test_replace_default(self, repository, sample):
        repository.save("pubs", sample)
        smaller = Mapping.from_correspondences(
            "DBLP.Publication", "ACM.Publication", [("p1", "q1", 0.5)])
        repository.save("pubs", smaller)
        assert len(repository.load("pubs")) == 1

    def test_no_replace_raises(self, repository, sample):
        repository.save("pubs", sample)
        with pytest.raises(ValueError):
            repository.save("pubs", sample, replace=False)

    def test_empty_name_rejected(self, repository, sample):
        with pytest.raises(ValueError):
            repository.save("", sample)


class TestCatalog:
    def test_contains(self, repository, sample):
        repository.save("pubs", sample)
        assert "pubs" in repository
        assert "ghost" not in repository

    def test_names_sorted(self, repository, sample):
        repository.save("zeta", sample)
        repository.save("alpha", sample)
        assert repository.names() == ["alpha", "zeta"]

    def test_len(self, repository, sample):
        assert len(repository) == 0
        repository.save("pubs", sample)
        assert len(repository) == 1

    def test_delete(self, repository, sample):
        repository.save("pubs", sample)
        assert repository.delete("pubs") is True
        assert repository.delete("pubs") is False
        assert "pubs" not in repository

    def test_info(self, repository, sample):
        repository.save("pubs", sample)
        info = repository.info("pubs")
        assert info["correspondences"] == 3
        assert info["domain"] == "DBLP.Publication"

    def test_info_missing(self, repository):
        assert repository.info("ghost") is None


class TestRelationalJoin:
    def test_join_is_compose_prejoin(self, repository):
        left = Mapping.from_correspondences(
            "A", "C", [("a1", "c1", 1.0), ("a2", "c2", 0.5)])
        right = Mapping.from_correspondences(
            "C", "B", [("c1", "b1", 0.8), ("c2", "b2", 1.0)])
        repository.save("left", left)
        repository.save("right", right)
        rows = repository.join("left", "right")
        assert ("a1", "c1", "b1", 1.0, 0.8) in rows
        assert len(rows) == 2

    def test_join_empty_when_no_shared_ids(self, repository):
        repository.save("left", Mapping.from_correspondences(
            "A", "C", [("a1", "c1", 1.0)]))
        repository.save("right", Mapping.from_correspondences(
            "C", "B", [("cX", "b1", 1.0)]))
        assert repository.join("left", "right") == []


class TestPersistence:
    def test_disk_round_trip(self, tmp_path, sample):
        path = str(tmp_path / "mappings.db")
        with MappingRepository(path) as repo:
            repo.save("pubs", sample)
        with MappingRepository(path) as repo:
            assert repo.load("pubs").to_rows() == sample.to_rows()
