"""Tests for mapping-table CSV import/export."""

import io

import pytest

from repro.core.mapping import Mapping, MappingKind
from repro.model.io import (
    mapping_to_csv_text,
    read_mapping_csv,
    write_mapping_csv,
)


@pytest.fixture
def mapping():
    return Mapping.from_correspondences("A", "B", [
        ("a1", "b1", 1.0), ("a2", "b2", 0.75), ("a3", "b3", 0.5),
    ])


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path, mapping):
        path = tmp_path / "mapping.csv"
        count = write_mapping_csv(mapping, path)
        assert count == 3
        loaded = read_mapping_csv(path, domain="A", range="B")
        assert loaded.to_rows() == mapping.to_rows()

    def test_stream_round_trip(self, mapping):
        text = mapping_to_csv_text(mapping)
        loaded = read_mapping_csv(io.StringIO(text), domain="A", range="B")
        assert loaded.to_rows() == mapping.to_rows()

    def test_tab_delimiter(self, mapping):
        text = mapping_to_csv_text(mapping, delimiter="\t")
        loaded = read_mapping_csv(io.StringIO(text), domain="A", range="B",
                                  delimiter="\t")
        assert loaded.to_rows() == mapping.to_rows()

    def test_headerless_export(self, mapping):
        text = mapping_to_csv_text(mapping, header=False)
        assert not text.startswith("domain_id")
        loaded = read_mapping_csv(io.StringIO(text), domain="A", range="B")
        assert len(loaded) == 3

    def test_kind_and_name_applied(self, mapping):
        text = mapping_to_csv_text(mapping)
        loaded = read_mapping_csv(io.StringIO(text), domain="A", range="B",
                                  kind=MappingKind.ASSOCIATION,
                                  name="imported")
        assert loaded.kind == MappingKind.ASSOCIATION
        assert loaded.name == "imported"

    def test_deterministic_order(self, mapping):
        assert mapping_to_csv_text(mapping) == mapping_to_csv_text(mapping)


class TestTwoColumnImport:
    def test_link_dump_format(self):
        text = "g1,q1\ng2,q2\n"
        loaded = read_mapping_csv(io.StringIO(text), domain="GS", range="ACM")
        assert loaded.get("g1", "q1") == 1.0

    def test_default_similarity_override(self):
        text = "g1,q1\n"
        loaded = read_mapping_csv(io.StringIO(text), domain="GS",
                                  range="ACM", default_similarity=0.5)
        assert loaded.get("g1", "q1") == 0.5

    def test_blank_lines_skipped(self):
        text = "a,b,0.5\n\n , \nc,d,0.6\n"
        loaded = read_mapping_csv(io.StringIO(text), domain="A", range="B")
        assert len(loaded) == 2


class TestErrors:
    def test_bad_similarity(self):
        with pytest.raises(ValueError) as excinfo:
            read_mapping_csv(io.StringIO("a,b,high\n"), domain="A",
                             range="B")
        assert "line 1" in str(excinfo.value)

    def test_out_of_range_similarity(self):
        with pytest.raises(ValueError):
            read_mapping_csv(io.StringIO("a,b,1.5\n"), domain="A", range="B")

    def test_one_column_rejected(self):
        with pytest.raises(ValueError):
            read_mapping_csv(io.StringIO("only\n"), domain="A", range="B")

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            read_mapping_csv(io.StringIO(",b,0.5\n"), domain="A", range="B")
