"""Tests for combination functions (merge/compose §3.1)."""

import pytest

from repro.core.operators.functions import (
    AvgFunction,
    MaxFunction,
    MinFunction,
    WeightedFunction,
    get_combination,
)


class TestAvg:
    def test_ignores_missing_by_default(self):
        assert AvgFunction().combine([0.8, None, 0.4]) == pytest.approx(0.6)

    def test_missing_as_zero(self):
        assert AvgFunction(missing_as_zero=True).combine(
            [0.8, None, 0.4]) == pytest.approx(0.4)

    def test_all_missing_drops(self):
        assert AvgFunction().combine([None, None]) is None

    def test_all_missing_zero_variant(self):
        assert AvgFunction(missing_as_zero=True).combine([None, None]) == 0.0


class TestMin:
    def test_plain_min(self):
        assert MinFunction().combine([0.9, 0.3, None]) == 0.3

    def test_min0_intersection_semantics(self):
        # a missing value vetoes the correspondence entirely (Fig. 4)
        assert MinFunction(missing_as_zero=True).combine([0.9, None]) is None

    def test_min0_present_everywhere(self):
        assert MinFunction(missing_as_zero=True).combine([0.9, 0.6]) == 0.6

    def test_all_missing(self):
        assert MinFunction().combine([None]) is None


class TestMax:
    def test_max(self):
        assert MaxFunction().combine([0.2, None, 0.7]) == 0.7

    def test_all_missing(self):
        assert MaxFunction().combine([None, None]) is None


class TestWeighted:
    def test_weighted_average(self):
        function = WeightedFunction([3, 1])
        assert function.combine([1.0, 0.0]) == pytest.approx(0.75)

    def test_missing_renormalizes(self):
        function = WeightedFunction([3, 1])
        assert function.combine([None, 0.4]) == pytest.approx(0.4)

    def test_missing_as_zero_keeps_denominator(self):
        function = WeightedFunction([3, 1], missing_as_zero=True)
        assert function.combine([None, 0.4]) == pytest.approx(0.1)

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            WeightedFunction([1, 1]).combine([0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedFunction([])
        with pytest.raises(ValueError):
            WeightedFunction([-1, 2])
        with pytest.raises(ValueError):
            WeightedFunction([0, 0])


class TestRegistry:
    @pytest.mark.parametrize("name,expected_type", [
        ("avg", AvgFunction), ("average", AvgFunction),
        ("min", MinFunction), ("max", MaxFunction),
        ("Min-0", MinFunction), ("AVG0", AvgFunction),
        ("union", MaxFunction), ("intersect", MinFunction),
    ])
    def test_names_resolve(self, name, expected_type):
        assert isinstance(get_combination(name), expected_type)

    def test_zero_variants_flagged(self):
        assert get_combination("min0").missing_as_zero is True
        assert get_combination("min").missing_as_zero is False

    def test_instance_passthrough(self):
        function = AvgFunction()
        assert get_combination(function) is function

    def test_weighted_requires_weights(self):
        with pytest.raises(ValueError):
            get_combination("weighted")
        function = get_combination("weighted", weights=[1, 2])
        assert isinstance(function, WeightedFunction)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_combination("geometric")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            get_combination(42)
