"""Tests for the generic attribute matcher."""

import pytest

from repro.core.matchers.attribute import AttributeMatcher
from repro.core.matchers.base import MatcherError
from repro.model.source import LogicalSource, ObjectType, PhysicalSource


@pytest.fixture
def sources():
    domain = LogicalSource(PhysicalSource("L"), ObjectType("Publication"))
    range_ = LogicalSource(PhysicalSource("R"), ObjectType("Publication"))
    domain.add_record("a1", title="Adaptive Query Processing", year=2001)
    domain.add_record("a2", title="Schema Matching with Cupid", year=2001)
    domain.add_record("a3", title="Data Cleaning Survey")
    range_.add_record("b1", title="Adaptive Query Processing", year=2001)
    range_.add_record("b2", title="Schema Matching with Cupld", year=2002)
    range_.add_record("b3", title="Workflow Management")
    return domain, range_


class TestBasicMatching:
    def test_exact_titles_score_one(self, sources):
        domain, range_ = sources
        mapping = AttributeMatcher("title", threshold=0.9).match(domain, range_)
        assert mapping.get("a1", "b1") == 1.0

    def test_typo_tolerated_below_threshold_cut(self, sources):
        domain, range_ = sources
        mapping = AttributeMatcher("title", threshold=0.7).match(domain, range_)
        assert mapping.get("a2", "b2") > 0.7

    def test_threshold_filters(self, sources):
        domain, range_ = sources
        strict = AttributeMatcher("title", threshold=0.99).match(domain, range_)
        assert ("a2", "b2") not in strict.pairs()

    def test_result_metadata(self, sources):
        domain, range_ = sources
        mapping = AttributeMatcher("title", threshold=0.5).match(domain, range_)
        assert mapping.domain == "L.Publication"
        assert mapping.range == "R.Publication"

    def test_missing_attribute_skipped(self, sources):
        domain, range_ = sources
        mapping = AttributeMatcher("year", similarity="exact",
                                   threshold=1.0).match(domain, range_)
        assert all(pair[0] != "a3" for pair in mapping.pairs())

    def test_different_range_attribute(self, sources):
        domain, range_ = sources
        mapping = AttributeMatcher("title", "title", "trigram",
                                   0.5).match(domain, range_)
        assert len(mapping) >= 2

    def test_candidates_restrict_scoring(self, sources):
        domain, range_ = sources
        mapping = AttributeMatcher("title", threshold=0.0).match(
            domain, range_, candidates=[("a1", "b1")])
        assert mapping.pairs() == {("a1", "b1")}

    def test_similarity_instance_accepted(self, sources):
        from repro.sim.ngram import TrigramSimilarity
        domain, range_ = sources
        mapping = AttributeMatcher("title",
                                   similarity=TrigramSimilarity(),
                                   threshold=0.9).match(domain, range_)
        assert ("a1", "b1") in mapping.pairs()


class TestSelfMatching:
    def test_self_match_excludes_identity(self, sources):
        domain, _ = sources
        domain_with_dup = domain
        mapping = AttributeMatcher("title", threshold=0.3).match(
            domain_with_dup, domain_with_dup)
        assert all(a != b for a, b in mapping.pairs())

    def test_self_match_symmetric(self):
        source = LogicalSource(PhysicalSource("S"), ObjectType("Author"))
        source.add_record("x", name="John Smith")
        source.add_record("y", name="Jon Smith")
        mapping = AttributeMatcher("name", threshold=0.5).match(source, source)
        assert ("x", "y") in mapping.pairs()
        assert ("y", "x") in mapping.pairs()


class TestValidation:
    def test_empty_attribute(self):
        with pytest.raises(MatcherError):
            AttributeMatcher("")

    def test_bad_threshold(self):
        with pytest.raises(MatcherError):
            AttributeMatcher("title", threshold=2.0)

    def test_bad_missing_policy(self):
        with pytest.raises(MatcherError):
            AttributeMatcher("title", missing="ignore")

    def test_matcher_name_descriptive(self):
        matcher = AttributeMatcher("title", threshold=0.8)
        assert "title" in matcher.name and "0.8" in matcher.name


class TestBlockingIntegration:
    def test_token_blocking_preserves_obvious_matches(self, sources):
        from repro.blocking import TokenBlocking
        domain, range_ = sources
        blocked = AttributeMatcher("title", threshold=0.9,
                                   blocking=TokenBlocking(max_df=1.0))
        mapping = blocked.match(domain, range_)
        assert ("a1", "b1") in mapping.pairs()

    def test_tfidf_prepared_over_both_sources(self, sources):
        domain, range_ = sources
        matcher = AttributeMatcher("title", similarity="tfidf", threshold=0.1)
        mapping = matcher.match(domain, range_)
        assert mapping.get("a1", "b1") == pytest.approx(1.0, abs=1e-6)
