"""Tests for the merge operator, anchored on the paper's Figure 4."""

import pytest

from repro.core.mapping import Mapping
from repro.core.operators.merge import merge


@pytest.fixture
def map1():
    return Mapping.from_correspondences("A", "B", [
        ("a1", "b1", 1.0), ("a2", "b2", 0.8),
    ])


@pytest.fixture
def map2():
    return Mapping.from_correspondences("A", "B", [
        ("a1", "b1", 0.6), ("a1", "b5", 1.0), ("a3", "b3", 0.9),
    ])


class TestFigure4:
    """The exact worked example of §3.1."""

    def test_min0(self, map1, map2):
        assert merge([map1, map2], "min0").to_rows() == [("a1", "b1", 0.6)]

    def test_avg(self, map1, map2):
        assert merge([map1, map2], "avg").to_rows() == [
            ("a1", "b1", 0.8), ("a1", "b5", 1.0),
            ("a2", "b2", 0.8), ("a3", "b3", 0.9),
        ]

    def test_avg0(self, map1, map2):
        assert merge([map1, map2], "avg0").to_rows() == [
            ("a1", "b1", 0.8), ("a1", "b5", 0.5),
            ("a2", "b2", 0.4), ("a3", "b3", 0.45),
        ]

    def test_prefer_map1(self, map1, map2):
        assert merge([map1, map2], "prefer", prefer=0).to_rows() == [
            ("a1", "b1", 1.0), ("a2", "b2", 0.8), ("a3", "b3", 0.9),
        ]


class TestMergeGeneral:
    def test_single_input_copies(self, map1):
        merged = merge([map1], "avg")
        assert merged.to_rows() == map1.to_rows()
        assert merged is not map1

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge([], "avg")

    def test_incompatible_sources_rejected(self, map1):
        other = Mapping.from_correspondences("A", "C", [("a1", "c1", 1.0)])
        with pytest.raises(ValueError):
            merge([map1, other], "avg")

    def test_max_is_union(self, map1, map2):
        merged = merge([map1, map2], "max")
        assert merged.pairs() == map1.pairs() | map2.pairs()
        assert merged.get("a1", "b1") == 1.0

    def test_weighted(self, map1, map2):
        merged = merge([map1, map2], "weighted", weights=[3, 1])
        assert merged.get("a1", "b1") == pytest.approx(0.9)
        # a2/b2 only in map1 -> renormalized to map1's value
        assert merged.get("a2", "b2") == pytest.approx(0.8)

    def test_three_way_merge(self, map1, map2):
        map3 = Mapping.from_correspondences("A", "B", [("a1", "b1", 0.2)])
        merged = merge([map1, map2, map3], "avg")
        assert merged.get("a1", "b1") == pytest.approx((1.0 + 0.6 + 0.2) / 3)

    def test_prefer_by_mapping_object(self, map1, map2):
        by_object = merge([map1, map2], prefer=map2)
        assert by_object.get("a1", "b5") == 1.0  # preferred map kept whole
        assert by_object.get("a2", "b2") == 0.8  # uncovered domain added

    def test_prefer_unknown_mapping(self, map1, map2):
        stranger = Mapping("A", "B")
        with pytest.raises(ValueError):
            merge([map1, map2], prefer=stranger)

    def test_prefer_index_out_of_range(self, map1, map2):
        with pytest.raises(ValueError):
            merge([map1, map2], "prefer", prefer=7)

    def test_prefer_name_with_digit(self, map1, map2):
        # "PreferMap1"-style resolution: 1-based index in the name
        merged = merge([map1, map2], "prefer1")
        assert merged.get("a1", "b1") == 0.6 or merged.get("a1", "b1") == 1.0

    def test_result_name(self, map1, map2):
        assert merge([map1, map2], "avg", name="combined").name == "combined"

    def test_zero_similarity_dropped(self):
        left = Mapping.from_correspondences("A", "B", [("a", "b", 0.0)])
        right = Mapping.from_correspondences("A", "B", [("a", "b", 0.0)])
        assert len(merge([left, right], "avg")) == 0
