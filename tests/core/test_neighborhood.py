"""Tests for the neighborhood matcher (§4.2, Figures 9-10)."""

import pytest

from repro.core.mapping import Mapping, MappingKind
from repro.core.matchers.base import MatcherError
from repro.core.matchers.neighborhood import NeighborhoodMatcher, neighborhood_match
from repro.model.source import LogicalSource, ObjectType, PhysicalSource


def figure9_inputs():
    asso1 = Mapping.from_correspondences(
        "DBLP.Venue", "DBLP.Publication", [
            ("conf/VLDB/2001", "conf/VLDB/MadhavanBR01", 1.0),
            ("conf/VLDB/2001", "conf/VLDB/ChirkovaHS01", 1.0),
            ("journals/VLDB/2002", "journals/VLDB/ChirkovaHS02", 1.0),
        ], kind=MappingKind.ASSOCIATION)
    same = Mapping.from_correspondences(
        "DBLP.Publication", "ACM.Publication", [
            ("conf/VLDB/MadhavanBR01", "P-672191", 1.0),
            ("conf/VLDB/ChirkovaHS01", "P-672216", 1.0),
            ("conf/VLDB/ChirkovaHS01", "P-641272", 0.6),
            ("journals/VLDB/ChirkovaHS02", "P-641272", 1.0),
            ("journals/VLDB/ChirkovaHS02", "P-672216", 0.6),
        ])
    asso2 = Mapping.from_correspondences(
        "ACM.Publication", "ACM.Venue", [
            ("P-672191", "V-645927", 1.0),
            ("P-672216", "V-645927", 1.0),
            ("P-641272", "V-641268", 1.0),
        ], kind=MappingKind.ASSOCIATION)
    return asso1, same, asso2


class TestFigure9:
    def test_exact_paper_values(self):
        asso1, same, asso2 = figure9_inputs()
        result = neighborhood_match(asso1, same, asso2)
        assert result.get("conf/VLDB/2001", "V-645927") == pytest.approx(0.8)
        assert result.get("conf/VLDB/2001", "V-641268") == pytest.approx(0.3)
        assert result.get("journals/VLDB/2002", "V-645927") == pytest.approx(0.3)
        assert result.get("journals/VLDB/2002", "V-641268") == pytest.approx(2 / 3)

    def test_result_is_same_mapping(self):
        asso1, same, asso2 = figure9_inputs()
        assert neighborhood_match(asso1, same, asso2).kind == MappingKind.SAME

    def test_correct_correspondences_win(self):
        asso1, same, asso2 = figure9_inputs()
        result = neighborhood_match(asso1, same, asso2)
        assert result.get("conf/VLDB/2001", "V-645927") > \
            result.get("conf/VLDB/2001", "V-641268")


class TestWiring:
    def test_mismatched_asso1_rejected(self):
        asso1, same, asso2 = figure9_inputs()
        with pytest.raises(MatcherError):
            neighborhood_match(asso1, asso2, same)

    def test_mismatched_asso2_rejected(self):
        asso1, same, asso2 = figure9_inputs()
        broken = Mapping("Other.Publication", "ACM.Venue",
                         kind=MappingKind.ASSOCIATION)
        with pytest.raises(MatcherError):
            neighborhood_match(asso1, same, broken)

    def test_relative_left_variant(self):
        """§5.4.3: RelativeLeft divides only by the left degree."""
        asso1, same, asso2 = figure9_inputs()
        left = neighborhood_match(asso1, same, asso2, g2="relative_left")
        # s(conf2001, V-645927) = 2, out-degree in temp = 3
        assert left.get("conf/VLDB/2001", "V-645927") == pytest.approx(2 / 3)


class TestIdentityCase:
    def test_self_dedup_via_co_authors(self):
        """§4.3: nhMatch(CoAuthor, Identity, CoAuthor) scores co-author
        overlap as 2*shared/(deg+deg)."""
        co = Mapping.from_correspondences("S.Author", "S.Author", [
            ("a", "x", 1.0), ("a", "y", 1.0),
            ("b", "x", 1.0), ("b", "y", 1.0), ("b", "z", 1.0),
            ("x", "a", 1.0), ("y", "a", 1.0),
            ("x", "b", 1.0), ("y", "b", 1.0), ("z", "b", 1.0),
        ], kind=MappingKind.ASSOCIATION)
        identity = Mapping.identity("S.Author", ["a", "b", "x", "y", "z"])
        result = neighborhood_match(co, identity, co).without_identity()
        # a and b share co-authors {x, y}: 2*2/(2+3) = 0.8
        assert result.get("a", "b") == pytest.approx(0.8)


class TestMatcherFacade:
    def test_matcher_validates_sources(self):
        asso1, same, asso2 = figure9_inputs()
        matcher = NeighborhoodMatcher(asso1, same, asso2)
        dblp_venues = LogicalSource(PhysicalSource("DBLP"), ObjectType("Venue"))
        acm_venues = LogicalSource(PhysicalSource("ACM"), ObjectType("Venue"))
        result = matcher.match(dblp_venues, acm_venues)
        assert len(result) == 4

    def test_matcher_rejects_wrong_domain(self):
        asso1, same, asso2 = figure9_inputs()
        matcher = NeighborhoodMatcher(asso1, same, asso2)
        wrong = LogicalSource(PhysicalSource("ACM"), ObjectType("Venue"))
        with pytest.raises(MatcherError):
            matcher.match(wrong, wrong)

    def test_candidates_filter_result(self):
        asso1, same, asso2 = figure9_inputs()
        matcher = NeighborhoodMatcher(asso1, same, asso2)
        dblp_venues = LogicalSource(PhysicalSource("DBLP"), ObjectType("Venue"))
        acm_venues = LogicalSource(PhysicalSource("ACM"), ObjectType("Venue"))
        result = matcher.match(dblp_venues, acm_venues,
                               candidates=[("conf/VLDB/2001", "V-645927")])
        assert result.pairs() == {("conf/VLDB/2001", "V-645927")}
