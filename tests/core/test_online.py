"""Tests for online (query-time) matching."""

import pytest

from repro.core.online import OnlineMatcher, match_query_results
from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource, ObjectType, PhysicalSource


@pytest.fixture
def reference():
    source = LogicalSource(PhysicalSource("DBLP"), ObjectType("Publication"))
    source.add_record("p1", title="Adaptive Query Processing for Streams")
    source.add_record("p2", title="Schema Matching with Cupid")
    source.add_record("p3", title="Data Cleaning in Warehouses")
    source.add_record("p4", title=None)
    return source


class TestOnlineMatcher:
    def test_exact_record_matches(self, reference):
        matcher = OnlineMatcher(reference, "title", threshold=0.8)
        record = ObjectInstance("q1", {
            "title": "Adaptive Query Processing for Streams"})
        results = matcher.match_record(record)
        assert results[0][0] == "p1"
        assert results[0][1] == pytest.approx(1.0)

    def test_noisy_record_matches(self, reference):
        matcher = OnlineMatcher(reference, "title", threshold=0.6)
        record = ObjectInstance("q1", {
            "title": "adaptive query processng for streams"})
        results = matcher.match_record(record)
        assert results and results[0][0] == "p1"

    def test_threshold_filters(self, reference):
        matcher = OnlineMatcher(reference, "title", threshold=0.95)
        record = ObjectInstance("q1", {"title": "schema matchng"})
        assert matcher.match_record(record) == []

    def test_missing_attribute(self, reference):
        matcher = OnlineMatcher(reference, "title")
        assert matcher.match_record(ObjectInstance("q1", {})) == []

    def test_cache_hits(self, reference):
        matcher = OnlineMatcher(reference, "title", threshold=0.6)
        record = ObjectInstance("q1", {"title": "schema matching"})
        first = matcher.match_record(record)
        second = matcher.match_record(record)
        assert first == second
        assert matcher.cache_stats()["hits"] == 1

    def test_cache_eviction(self, reference):
        matcher = OnlineMatcher(reference, "title", threshold=0.5,
                                cache_size=1)
        matcher.match_record(ObjectInstance("q1", {"title": "schema"}))
        matcher.match_record(ObjectInstance("q2", {"title": "cleaning"}))
        assert matcher.cache_stats()["size"] == 1

    def test_results_sorted_descending(self, reference):
        matcher = OnlineMatcher(reference, "title", threshold=0.1)
        record = ObjectInstance("q1", {"title": "adaptive data processing"})
        results = matcher.match_record(record)
        scores = [score for _, score in results]
        assert scores == sorted(scores, reverse=True)

    def test_batch_mapping(self, reference):
        matcher = OnlineMatcher(reference, "title", threshold=0.8)
        batch = [
            ObjectInstance("q1", {"title": "Schema Matching with Cupid"}),
            ObjectInstance("q2", {"title": "Data Cleaning in Warehouses"}),
        ]
        mapping = matcher.match_batch(batch, source_name="Query.Publication")
        assert mapping.domain == "Query.Publication"
        assert mapping.get("q1", "p2") == pytest.approx(1.0)
        assert mapping.get("q2", "p3") == pytest.approx(1.0)

    def test_validation(self, reference):
        with pytest.raises(ValueError):
            OnlineMatcher(reference, threshold=1.5)
        with pytest.raises(ValueError):
            OnlineMatcher(reference, max_candidates=0)


class TestReferenceMutation:
    """The wrapper fixes the old matcher's stale-cache defect: reference
    changes invalidate exactly the affected cached results."""

    def test_add_invalidates_affected_cache_entry(self, reference):
        matcher = OnlineMatcher(reference, "title", threshold=0.6)
        record = ObjectInstance("q1", {"title": "schema matching"})
        before = matcher.match_record(record)
        matcher.add(ObjectInstance("p9", {"title": "Schema Matching Redux"}))
        after = matcher.match_record(record)
        assert matcher.cache_stats()["hits"] == 0
        assert before != after
        assert any(id == "p9" for id, _ in after)

    def test_delete_removes_reference_from_results(self, reference):
        matcher = OnlineMatcher(reference, "title", threshold=0.6)
        record = ObjectInstance("q1", {"title": "schema matching"})
        assert matcher.match_record(record)[0][0] == "p2"
        assert matcher.delete("p2")
        assert matcher.match_record(record) == []

    def test_update_changes_results(self, reference):
        matcher = OnlineMatcher(reference, "title", threshold=0.8)
        matcher.update(ObjectInstance(
            "p3", {"title": "Adaptive Query Processing for Streams"}))
        record = ObjectInstance("q1", {
            "title": "Adaptive Query Processing for Streams"})
        matched = {id for id, _ in matcher.match_record(record)}
        assert matched == {"p1", "p3"}

    def test_unrelated_mutation_keeps_cache(self, reference):
        matcher = OnlineMatcher(reference, "title", threshold=0.6)
        record = ObjectInstance("q1", {"title": "schema matching"})
        matcher.match_record(record)
        matcher.add(ObjectInstance("p9", {"title": "Zebra Migrations"}))
        matcher.match_record(record)
        assert matcher.cache_stats()["hits"] == 1

    def test_wrapper_delegates_to_service(self, reference):
        from repro.serve import MatchService

        matcher = OnlineMatcher(reference, "title", threshold=0.6)
        assert isinstance(matcher.service, MatchService)
        assert matcher.similarity is matcher.service.index.specs[0].similarity


class TestConvenienceWrapper:
    def test_match_query_results(self, reference):
        results = [ObjectInstance("q1",
                                  {"title": "Schema Matching with Cupid"})]
        mapping = match_query_results(results, reference, threshold=0.8)
        assert mapping.pairs() == {("q1", "p2")}


class TestAgainstDataset:
    def test_gs_harvest_online_matching(self, dataset):
        """Online pattern end-to-end: query GS, match results to DBLP."""
        from repro.datagen.query import QueryClient

        client = QueryClient(dataset.gs.publications)
        matcher = OnlineMatcher(dataset.dblp.publications, "title",
                                threshold=0.8)
        gold = dataset.gold.publications("GS.Publication",
                                         "DBLP.Publication")
        checked = 0
        correct = 0
        for pub_id in dataset.dblp.publications.ids()[:15]:
            title = dataset.dblp.publications.require(pub_id).get("title")
            for result in client.search(title, max_results=3):
                matches = matcher.match_record(result)
                if not matches:
                    continue
                checked += 1
                if gold.get(result.id, matches[0][0]) is not None:
                    correct += 1
        assert checked > 0
        assert correct / checked > 0.7
