"""Tests for correspondences and similarity validation."""

import pytest

from repro.core.correspondence import Correspondence, validate_similarity


class TestCorrespondence:
    def test_fields(self):
        corr = Correspondence("a", "b", 0.5)
        assert corr.domain == "a" and corr.range == "b"
        assert corr.similarity == 0.5

    def test_swapped(self):
        corr = Correspondence("a", "b", 0.5).swapped()
        assert (corr.domain, corr.range) == ("b", "a")
        assert corr.similarity == 0.5

    def test_with_similarity(self):
        corr = Correspondence("a", "b", 0.5).with_similarity(0.9)
        assert corr.similarity == 0.9

    def test_tuple_behaviour(self):
        domain, range_, similarity = Correspondence("a", "b", 0.5)
        assert (domain, range_, similarity) == ("a", "b", 0.5)


class TestValidateSimilarity:
    def test_valid_values(self):
        assert validate_similarity(0) == 0.0
        assert validate_similarity(1) == 1.0
        assert validate_similarity(0.5) == 0.5

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            validate_similarity(1.01)
        with pytest.raises(ValueError):
            validate_similarity(-0.01)

    def test_coerces_to_float(self):
        value = validate_similarity(1)
        assert isinstance(value, float)
