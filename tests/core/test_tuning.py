"""Tests for self-tuning (threshold search, grid search, decision trees)."""

import pytest

from repro.core.mapping import Mapping
from repro.core.tuning import (
    DecisionTree,
    DecisionTreeMatcherTuner,
    FeatureSpec,
    GridSearchTuner,
    tune_merge_weights,
    tune_threshold,
)
from repro.model.source import LogicalSource, ObjectType, PhysicalSource


@pytest.fixture
def sources():
    domain = LogicalSource(PhysicalSource("L"), ObjectType("Publication"))
    range_ = LogicalSource(PhysicalSource("R"), ObjectType("Publication"))
    titles = [
        "Adaptive Query Processing", "Schema Matching with Cupid",
        "Data Cleaning Approaches", "View Maintenance Strategies",
        "Streaming Joins", "Top-k Retrieval Methods",
    ]
    for index, title in enumerate(titles):
        domain.add_record(f"a{index}", title=title, year=2000 + index)
        range_.add_record(f"b{index}", title=title, year=2000 + index)
    # a noisy extra record that should not match anything
    range_.add_record("noise", title="Entirely Different Topic", year=1990)
    return domain, range_


@pytest.fixture
def gold(sources):
    domain, range_ = sources
    return Mapping.from_correspondences(
        domain.name, range_.name,
        [(f"a{i}", f"b{i}", 1.0) for i in range(6)])


class TestTuneThreshold:
    def test_perfect_mapping_threshold(self, gold):
        fuzzy = Mapping.from_correspondences("L.Publication", "R.Publication", [
            ("a0", "b0", 0.95), ("a1", "b1", 0.9), ("a2", "b2", 0.85),
            ("a3", "b3", 0.8), ("a4", "b4", 0.75), ("a5", "b5", 0.7),
            ("a0", "noise", 0.5), ("a1", "noise", 0.45),
        ])
        threshold, f1 = tune_threshold(fuzzy, gold)
        assert threshold == pytest.approx(0.7)
        assert f1 == pytest.approx(1.0)

    def test_empty_mapping(self, gold):
        threshold, f1 = tune_threshold(Mapping("L.Publication",
                                               "R.Publication"), gold)
        assert f1 == 0.0

    def test_tie_group_handling(self, gold):
        fuzzy = Mapping.from_correspondences("L.Publication", "R.Publication", [
            ("a0", "b0", 0.8), ("a1", "b1", 0.8), ("a0", "noise", 0.8),
        ])
        threshold, f1 = tune_threshold(fuzzy, gold)
        # all candidates share one similarity; F is computed on the group
        assert threshold == pytest.approx(0.8)
        assert 0 < f1 < 1


class TestGridSearch:
    def test_finds_title_over_year(self, sources, gold):
        domain, range_ = sources
        tuner = GridSearchTuner(
            attributes=["title", "year"],
            similarities=["trigram", "exact"],
            thresholds=[0.5, 0.8, 1.0],
        )
        result = tuner.tune(domain, range_, gold)
        assert result.params["attribute"] == "title"
        assert result.f1 == pytest.approx(1.0)

    def test_auto_threshold_mode(self, sources, gold):
        domain, range_ = sources
        tuner = GridSearchTuner(["title"], ["trigram"])
        result = tuner.tune(domain, range_, gold)
        assert 0 < result.params["threshold"] <= 1.0
        assert result.f1 > 0.9

    def test_best_matcher_constructible(self, sources, gold):
        domain, range_ = sources
        result = GridSearchTuner(["title"], ["trigram"],
                                 [0.8]).tune(domain, range_, gold)
        matcher = result.best_matcher()
        mapping = matcher.match(domain, range_)
        assert len(mapping) >= 6

    def test_trials_recorded(self, sources, gold):
        domain, range_ = sources
        tuner = GridSearchTuner(["title", "year"], ["trigram"], [0.5, 0.9])
        result = tuner.tune(domain, range_, gold)
        assert len(result.trials) == 4

    def test_sampling(self, sources, gold):
        domain, range_ = sources
        tuner = GridSearchTuner(["title"], ["trigram"], [0.8],
                                sample_size=3, seed=1)
        result = tuner.tune(domain, range_, gold)
        assert result.f1 >= 0.0  # runs without error on the sample

    def test_validation(self):
        with pytest.raises(ValueError):
            GridSearchTuner([], ["trigram"])


class TestMergeWeightTuning:
    def test_prefers_informative_mapping(self, gold):
        good = Mapping.from_correspondences(
            "L.Publication", "R.Publication",
            [(f"a{i}", f"b{i}", 0.9) for i in range(6)])
        bad = Mapping.from_correspondences(
            "L.Publication", "R.Publication",
            [(f"a{i}", "noise", 0.9) for i in range(6)])
        weights, threshold, f1 = tune_merge_weights([good, bad], gold,
                                                    steps=3)
        assert f1 == pytest.approx(1.0)
        assert weights[0] > 0

    def test_validation(self, gold):
        single = Mapping("L.Publication", "R.Publication")
        with pytest.raises(ValueError):
            tune_merge_weights([single], gold)
        with pytest.raises(ValueError):
            tune_merge_weights([single, single], gold, steps=1)


class TestDecisionTree:
    def test_learns_threshold_split(self):
        features = [[0.1], [0.2], [0.3], [0.8], [0.9], [0.95]] * 5
        labels = [0, 0, 0, 1, 1, 1] * 5
        tree = DecisionTree(max_depth=2, min_samples_split=2)
        tree.fit(features, labels)
        assert tree.predict([0.15]) == 0
        assert tree.predict([0.85]) == 1

    def test_probability_at_leaves(self):
        features = [[0.0], [0.0], [1.0], [1.0]] * 5
        labels = [0, 1, 1, 1] * 5
        tree = DecisionTree(min_samples_split=2).fit(features, labels)
        assert 0.0 <= tree.predict_proba([0.0]) <= 1.0

    def test_pure_node_stops(self):
        tree = DecisionTree().fit([[0.1]] * 10, [1] * 10)
        assert tree.depth() == 0
        assert tree.predict([0.5]) == 1

    def test_two_features(self):
        # label depends only on the second feature
        features = [[0.5, 0.1], [0.5, 0.9], [0.4, 0.2], [0.6, 0.8]] * 10
        labels = [0, 1, 0, 1] * 10
        tree = DecisionTree(min_samples_split=2).fit(features, labels)
        assert tree.predict([0.5, 0.95]) == 1
        assert tree.predict([0.5, 0.05]) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTree(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTree().fit([], [])
        with pytest.raises(ValueError):
            DecisionTree().fit([[1.0]], [1, 0])
        with pytest.raises(RuntimeError):
            DecisionTree().predict([0.5])


class TestDecisionTreeMatcherTuner:
    def test_learned_matcher_recovers_gold(self, sources, gold):
        domain, range_ = sources
        tuner = DecisionTreeMatcherTuner(
            [FeatureSpec("title"), FeatureSpec("year", similarity="year")],
            negatives_per_positive=5, seed=3)
        matcher = tuner.fit(domain, range_, gold)
        predicted = matcher.match(domain, range_)
        gold_pairs = gold.pairs()
        true_positives = len(predicted.pairs() & gold_pairs)
        assert true_positives / len(gold_pairs) >= 0.8

    def test_empty_gold_rejected(self, sources):
        domain, range_ = sources
        tuner = DecisionTreeMatcherTuner([FeatureSpec("title")])
        with pytest.raises(ValueError):
            tuner.fit(domain, range_, Mapping(domain.name, range_.name))

    def test_feature_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeMatcherTuner([])
