"""Tests for the prebuilt paper workflows."""

import pytest

from repro.core.prebuilt import (
    author_neighborhood_workflow,
    duplicate_author_workflow,
    prepare_identity,
    publication_title_workflow,
    venue_neighborhood_workflow,
)
from repro.core.workflow import MatchContext


@pytest.fixture
def context(dataset):
    return MatchContext(smm=dataset.smm)


class TestPublicationWorkflow:
    def test_produces_quality_mapping(self, dataset, context, workbench):
        workflow = publication_title_workflow("DBLP", "ACM")
        mapping = workflow.run(context)
        quality = workbench.score(mapping, "publications", "DBLP", "ACM")
        assert quality.f1 > 0.9

    def test_intermediates_published(self, context):
        publication_title_workflow("DBLP", "ACM").run(context)
        for name in ("title_map", "authors_map", "year_map", "pub_same"):
            assert context.resolve_mapping(name) is not None


class TestVenueWorkflow:
    def test_chains_after_publication_workflow(self, dataset, context,
                                               workbench):
        publication_title_workflow("DBLP", "ACM").run(context)
        mapping = venue_neighborhood_workflow("DBLP", "ACM").run(context)
        quality = workbench.score(mapping, "venues", "DBLP", "ACM")
        assert quality.f1 > 0.85

    def test_requires_publication_same(self, context):
        from repro.core.workflow import WorkflowError
        with pytest.raises(WorkflowError):
            venue_neighborhood_workflow("DBLP", "ACM").run(context)


class TestAuthorWorkflow:
    def test_author_matching_quality(self, dataset, context, workbench):
        publication_title_workflow("DBLP", "ACM").run(context)
        mapping = author_neighborhood_workflow("DBLP", "ACM").run(context)
        quality = workbench.score(mapping, "authors", "DBLP", "ACM")
        assert quality.f1 > 0.8


class TestDedupWorkflow:
    def test_surfaces_injected_duplicates(self, dataset, context):
        prepare_identity(context, "DBLP")
        mapping = duplicate_author_workflow("DBLP").run(context)
        assert all(a != b for a, b in mapping.pairs())
        gold = dataset.gold.get("author-duplicates", "DBLP.Author",
                                "DBLP.Author")
        ranked = sorted(mapping, key=lambda c: -c.similarity)
        top = {tuple(sorted((c.domain, c.range)))
               for c in ranked[:4 * len(gold.pairs())]}
        gold_pairs = {tuple(sorted(pair)) for pair in gold.pairs()}
        assert len(top & gold_pairs) / len(gold_pairs) >= 0.4

    def test_identity_helper(self, dataset, context):
        prepare_identity(context, "DBLP")
        identity = context.resolve_mapping("DBLP.AuthorIdentity")
        assert identity.is_self_mapping()
        assert len(identity) == len(dataset.dblp.authors)
