"""Tests for the multi-attribute matcher."""

import pytest

from repro.core.matchers.base import MatcherError
from repro.core.matchers.multi_attribute import AttributePair, MultiAttributeMatcher
from repro.model.source import LogicalSource, ObjectType, PhysicalSource


@pytest.fixture
def sources():
    domain = LogicalSource(PhysicalSource("L"), ObjectType("Publication"))
    range_ = LogicalSource(PhysicalSource("R"), ObjectType("Publication"))
    domain.add_record("a1", title="Adaptive Query Processing", year=2001)
    domain.add_record("a2", title="Adaptive Query Processing", year=1995)
    range_.add_record("b1", title="Adaptive Query Processing", year=2001)
    range_.add_record("b2", title="Data Cleaning", year=2001)
    range_.add_record("b3", title="Adaptive Query Processing")
    return domain, range_


def title_year_pairs():
    return [
        AttributePair("title", similarity="trigram", weight=3.0),
        AttributePair("year", similarity="year", weight=1.0),
    ]


class TestMultiAttribute:
    def test_title_and_year_agree(self, sources):
        domain, range_ = sources
        matcher = MultiAttributeMatcher(title_year_pairs(), "weighted", 0.9)
        mapping = matcher.match(domain, range_)
        assert mapping.get("a1", "b1") == pytest.approx(1.0)

    def test_year_disagreement_lowers_score(self, sources):
        domain, range_ = sources
        matcher = MultiAttributeMatcher(title_year_pairs(), "weighted", 0.0)
        mapping = matcher.match(domain, range_)
        assert mapping.get("a2", "b1") < mapping.get("a1", "b1")

    def test_missing_attribute_ignored_with_weighted(self, sources):
        # b3 has no year -> weights renormalize onto title
        domain, range_ = sources
        matcher = MultiAttributeMatcher(title_year_pairs(), "weighted", 0.0)
        mapping = matcher.match(domain, range_)
        assert mapping.get("a1", "b3") == pytest.approx(1.0)

    def test_min0_requires_all_attributes(self, sources):
        domain, range_ = sources
        matcher = MultiAttributeMatcher(title_year_pairs(), "min0", 0.0)
        mapping = matcher.match(domain, range_)
        assert mapping.get("a1", "b3") is None

    def test_threshold_applies_to_combined(self, sources):
        domain, range_ = sources
        matcher = MultiAttributeMatcher(title_year_pairs(), "weighted", 0.99)
        mapping = matcher.match(domain, range_)
        assert ("a2", "b1") not in mapping.pairs()

    def test_candidates_restrict(self, sources):
        domain, range_ = sources
        matcher = MultiAttributeMatcher(title_year_pairs(), "weighted", 0.0)
        mapping = matcher.match(domain, range_, candidates=[("a1", "b2")])
        assert mapping.pairs() <= {("a1", "b2")}


class TestAttributePair:
    def test_defaults(self):
        pair = AttributePair("title")
        assert pair.range_attribute == "title"
        assert pair.similarity.name == "trigram"

    def test_string_similarity_resolved(self):
        pair = AttributePair("year", similarity="exact")
        assert pair.similarity.name == "exact"

    def test_validation(self):
        with pytest.raises(MatcherError):
            AttributePair("")
        with pytest.raises(MatcherError):
            AttributePair("title", weight=-1)


class TestValidation:
    def test_needs_pairs(self):
        with pytest.raises(MatcherError):
            MultiAttributeMatcher([], "avg")

    def test_bad_threshold(self):
        with pytest.raises(MatcherError):
            MultiAttributeMatcher(title_year_pairs(), threshold=1.2)

    def test_name_mentions_attributes(self):
        matcher = MultiAttributeMatcher(title_year_pairs())
        assert "title" in matcher.name and "year" in matcher.name
