"""Tests for the compose operator, anchored on the paper's Figure 6."""

import pytest

from repro.core.mapping import Mapping, MappingKind
from repro.core.operators.compose import compose


@pytest.fixture
def map1():
    """Venue -> Publication association of Figure 6 (left)."""
    return Mapping.from_correspondences("V", "P", [
        ("v1", "p1", 1.0), ("v1", "p2", 1.0), ("v1", "p3", 0.6),
        ("v2", "p2", 0.6), ("v2", "p3", 1.0),
    ], kind=MappingKind.ASSOCIATION)


@pytest.fixture
def map2():
    """Publication -> Venue' association of Figure 6 (right)."""
    return Mapping.from_correspondences("P", "W", [
        ("p1", "w1", 1.0), ("p2", "w1", 1.0), ("p3", "w2", 1.0),
    ], kind=MappingKind.ASSOCIATION)


class TestFigure6:
    def test_relative(self, map1, map2):
        result = compose(map1, map2, "min", "relative")
        assert result.get("v1", "w1") == pytest.approx(0.8)      # 2*2/(3+2)
        assert result.get("v1", "w2") == pytest.approx(0.3)      # 2*.6/(3+1)
        assert result.get("v2", "w1") == pytest.approx(0.3)      # 2*.6/(2+2)
        assert result.get("v2", "w2") == pytest.approx(2 / 3)    # 2*1/(2+1)

    def test_multi_path_preference(self, map1, map2):
        # (v1,w1) is supported by two publications, (v1,w2) by one
        result = compose(map1, map2, "min", "relative")
        assert result.get("v1", "w1") > result.get("v1", "w2")


class TestAggregations:
    def test_avg(self, map1, map2):
        result = compose(map1, map2, "min", "avg")
        assert result.get("v1", "w1") == pytest.approx(1.0)
        assert result.get("v2", "w1") == pytest.approx(0.6)

    def test_min_max(self, map1, map2):
        low = Mapping.from_correspondences("V", "P", [
            ("v1", "p1", 0.4), ("v1", "p2", 0.9)],
            kind=MappingKind.ASSOCIATION)
        result_min = compose(low, map2, "min", "min")
        result_max = compose(low, map2, "min", "max")
        assert result_min.get("v1", "w1") == pytest.approx(0.4)
        assert result_max.get("v1", "w1") == pytest.approx(0.9)

    def test_sum_clamped(self, map1, map2):
        result = compose(map1, map2, "min", "sum")
        assert result.get("v1", "w1") == 1.0  # 2 paths sum to 2, clamped

    def test_relative_left_right(self, map1, map2):
        left = compose(map1, map2, "min", "relative_left")
        right = compose(map1, map2, "min", "relative_right")
        # s(v1,w1)=2, n(v1)=3, n(w1)=2
        assert left.get("v1", "w1") == pytest.approx(2 / 3)
        assert right.get("v1", "w1") == pytest.approx(1.0)

    def test_relative_is_harmonic_mean(self, map1, map2):
        left = compose(map1, map2, "min", "relative_left").get("v1", "w1")
        right = compose(map1, map2, "min", "relative_right").get("v1", "w1")
        relative = compose(map1, map2, "min", "relative").get("v1", "w1")
        harmonic = 2 * left * right / (left + right)
        assert relative == pytest.approx(harmonic)

    def test_aggregate_aliases(self, map1, map2):
        assert compose(map1, map2, "min", "RelativeLeft").to_rows() == \
            compose(map1, map2, "min", "relative_left").to_rows()

    def test_unknown_aggregate(self, map1, map2):
        with pytest.raises(KeyError):
            compose(map1, map2, "min", "median")


class TestComposeGeneral:
    def test_requires_shared_source(self, map1):
        wrong = Mapping.from_correspondences("X", "Y", [("x", "y", 1.0)])
        with pytest.raises(ValueError):
            compose(map1, wrong)

    def test_no_shared_instances_is_empty(self, map1):
        disjoint = Mapping.from_correspondences(
            "P", "W", [("pX", "w1", 1.0)], kind=MappingKind.ASSOCIATION)
        assert len(compose(map1, disjoint)) == 0

    def test_f_function_applies_per_path(self, map1, map2):
        # f=avg on path (v1,p3,w2): (0.6+1)/2 = 0.8 per path
        result = compose(map1, map2, "avg", "max")
        assert result.get("v1", "w2") == pytest.approx(0.8)

    def test_kind_inference_same(self):
        same1 = Mapping.from_correspondences("A", "B", [("a", "b", 1.0)])
        same2 = Mapping.from_correspondences("B", "C", [("b", "c", 1.0)])
        assert compose(same1, same2).kind == MappingKind.SAME

    def test_kind_inference_association(self, map1, map2):
        assert compose(map1, map2).kind == MappingKind.ASSOCIATION

    def test_kind_override(self, map1, map2):
        forced = compose(map1, map2, kind=MappingKind.SAME)
        assert forced.kind == MappingKind.SAME

    def test_transitive_same_mapping_composition(self):
        """§4.1.2: composing same-mappings crosses an intermediate source."""
        dblp_gs = Mapping.from_correspondences("DBLP", "GS", [
            ("p1", "g1", 1.0), ("p2", "g2", 0.9)])
        gs_acm = Mapping.from_correspondences("GS", "ACM", [
            ("g1", "q1", 1.0)])
        result = compose(dblp_gs, gs_acm, "min", "max")
        assert result.to_rows() == [("p1", "q1", 1.0)]

    def test_figure7_duplicate_intermediate_hurts_precision(self):
        """Fig. 7: GS merging two versions inflates the composed result."""
        dblp_gs = Mapping.from_correspondences("DBLP", "GS", [
            ("p2", "g23", 1.0), ("p3", "g23", 1.0)])
        gs_acm = Mapping.from_correspondences("GS", "ACM", [
            ("g23", "q2", 1.0), ("g23", "q3", 1.0)])
        result = compose(dblp_gs, gs_acm, "min", "max")
        # 4 correspondences instead of the clean 2
        assert len(result) == 4
