"""Tests for match workflows and the match context."""

import pytest

from repro.core.mapping import Mapping
from repro.core.matchers.attribute import AttributeMatcher
from repro.core.operators.selection import NotIdentity, ThresholdSelection
from repro.core.workflow import (
    CombineStep,
    MatchContext,
    MatcherStep,
    MatchWorkflow,
    SelectStep,
    StoreStep,
    WorkflowError,
)
from repro.model.repository import MappingRepository
from repro.model.source import LogicalSource, ObjectType, PhysicalSource


@pytest.fixture
def sources():
    domain = LogicalSource(PhysicalSource("L"), ObjectType("Publication"))
    range_ = LogicalSource(PhysicalSource("R"), ObjectType("Publication"))
    domain.add_record("a1", title="Adaptive Query Processing", year=2001)
    domain.add_record("a2", title="Schema Matching", year=2002)
    range_.add_record("b1", title="Adaptive Query Processing", year=2001)
    range_.add_record("b2", title="Schema Matching", year=2002)
    range_.add_record("b3", title="Unrelated Work", year=1999)
    return domain, range_


@pytest.fixture
def context(sources):
    domain, range_ = sources
    ctx = MatchContext()
    ctx.add_source(domain)
    ctx.add_source(range_)
    return ctx


class TestMatchContext:
    def test_source_resolution(self, context):
        assert context.resolve_source("L.Publication") is not None

    def test_unknown_source(self, context):
        with pytest.raises(WorkflowError):
            context.resolve_source("Ghost.Publication")

    def test_mapping_resolution_order(self, context):
        provided = Mapping.from_correspondences(
            "L.Publication", "R.Publication", [("a1", "b1", 1.0)])
        context.add_mapping("input", provided)
        assert context.resolve_mapping("input") is provided
        # workspace shadows provided mappings
        shadow = Mapping("L.Publication", "R.Publication")
        context.publish("input", shadow)
        assert context.resolve_mapping("input") is shadow

    def test_mapping_objects_pass_through(self, context):
        mapping = Mapping("A", "B")
        assert context.resolve_mapping(mapping) is mapping

    def test_repository_fallback(self, sources):
        repository = MappingRepository()
        stored = Mapping.from_correspondences(
            "L.Publication", "R.Publication", [("a1", "b1", 0.9)])
        repository.save("persisted", stored)
        ctx = MatchContext(repository=repository)
        assert len(ctx.resolve_mapping("persisted")) == 1

    def test_unknown_mapping(self, context):
        with pytest.raises(WorkflowError):
            context.resolve_mapping("ghost")


class TestWorkflowSteps:
    def test_matcher_step(self, context):
        step = MatcherStep("titles", AttributeMatcher("title", threshold=0.8),
                           "L.Publication", "R.Publication")
        mapping = step.run(context)
        assert ("a1", "b1") in mapping.pairs()
        assert context.resolve_mapping("titles") is mapping

    def test_combine_step_merge_with_selection(self, context):
        first = Mapping.from_correspondences(
            "L.Publication", "R.Publication",
            [("a1", "b1", 1.0), ("a2", "b3", 0.4)])
        second = Mapping.from_correspondences(
            "L.Publication", "R.Publication", [("a1", "b1", 0.8)])
        context.add_mapping("first", first)
        context.add_mapping("second", second)
        step = CombineStep("merged", "merge", ["first", "second"],
                           {"function": "avg"},
                           [ThresholdSelection(0.5)])
        merged = step.run(context)
        assert merged.pairs() == {("a1", "b1")}

    def test_combine_step_compose(self, context):
        left = Mapping.from_correspondences("L.Publication", "X",
                                            [("a1", "x", 1.0)])
        right = Mapping.from_correspondences("X", "R.Publication",
                                             [("x", "b1", 0.9)])
        step = CombineStep("composed", "compose", [left, right],
                           {"f": "min", "g": "max"})
        composed = step.run(context)
        assert composed.get("a1", "b1") == pytest.approx(0.9)

    def test_compose_arity_checked(self, context):
        step = CombineStep("bad", "compose", [Mapping("A", "B")], {})
        with pytest.raises(WorkflowError):
            step.run(context)

    def test_unknown_operator(self, context):
        step = CombineStep("bad", "cross", [Mapping("A", "B")], {})
        with pytest.raises(WorkflowError):
            step.run(context)

    def test_select_step(self, context):
        mapping = Mapping.from_correspondences(
            "L.Publication", "L.Publication",
            [("a1", "a1", 1.0), ("a1", "a2", 0.7)])
        context.add_mapping("selfmap", mapping)
        step = SelectStep("deduped", "selfmap", [NotIdentity()])
        assert step.run(context).pairs() == {("a1", "a2")}

    def test_store_step(self, sources):
        repository = MappingRepository()
        ctx = MatchContext(repository=repository)
        mapping = Mapping.from_correspondences("A", "B", [("a", "b", 1.0)])
        ctx.add_mapping("result", mapping)
        StoreStep("result", "final").run(ctx)
        assert "final" in repository

    def test_store_without_repository(self, context):
        context.add_mapping("m", Mapping("A", "B"))
        with pytest.raises(WorkflowError):
            StoreStep("m", "out").run(context)


class TestMatchWorkflow:
    def test_fluent_workflow_end_to_end(self, context):
        workflow = (
            MatchWorkflow("pub-match")
            .add_matcher("titles", AttributeMatcher("title", threshold=0.5),
                         "L.Publication", "R.Publication")
            .add_matcher("years",
                         AttributeMatcher("year", similarity="exact",
                                          threshold=1.0),
                         "L.Publication", "R.Publication")
            .add_merge("merged", ["titles", "years"], function="avg0",
                       selections=[ThresholdSelection(0.8)])
        )
        result = workflow.run(context)
        assert result.pairs() == {("a1", "b1"), ("a2", "b2")}

    def test_result_name_override(self, context):
        workflow = MatchWorkflow("named", result="titles")
        workflow.add_matcher("titles",
                             AttributeMatcher("title", threshold=0.9),
                             "L.Publication", "R.Publication")
        workflow.add_select("weak", "titles", ThresholdSelection(0.99))
        result = workflow.run(context)
        assert result is context.resolve_mapping("titles")

    def test_empty_workflow_rejected(self, context):
        with pytest.raises(WorkflowError):
            MatchWorkflow("empty").run(context)

    def test_trace_records_steps(self, context):
        workflow = MatchWorkflow("traced").add_matcher(
            "titles", AttributeMatcher("title", threshold=0.9),
            "L.Publication", "R.Publication")
        workflow.run(context)
        assert any("titles" in line for line in context.trace)

    def test_workflow_as_matcher(self, sources, context):
        domain, range_ = sources
        workflow = MatchWorkflow("inner").add_matcher(
            "titles", AttributeMatcher("title", threshold=0.9),
            "L.Publication", "R.Publication")
        matcher = workflow.as_matcher("L.Publication", "R.Publication",
                                      base_context=context)
        mapping = matcher.match(domain, range_)
        assert ("a1", "b1") in mapping.pairs()

    def test_workflow_name_required(self):
        with pytest.raises(ValueError):
            MatchWorkflow("")

    def test_cache_shared_between_steps(self, context):
        workflow = MatchWorkflow("cached").add_matcher(
            "titles", AttributeMatcher("title", threshold=0.5),
            "L.Publication", "R.Publication")
        workflow.run(context)
        assert context.cache.get("titles") is not None
