"""Tests for set-style mapping operations."""

import pytest

from repro.core.mapping import Mapping
from repro.core.operators.setops import (
    difference,
    hub_compose,
    intersection,
    mapping_union,
    symmetrize,
    transitive_closure,
)


@pytest.fixture
def left():
    return Mapping.from_correspondences("A", "B", [
        ("a1", "b1", 0.9), ("a2", "b2", 0.5),
    ])


@pytest.fixture
def right():
    return Mapping.from_correspondences("A", "B", [
        ("a1", "b1", 0.7), ("a3", "b3", 0.8),
    ])


class TestUnionIntersectionDifference:
    def test_union_keeps_max(self, left, right):
        union = mapping_union([left, right])
        assert len(union) == 3
        assert union.get("a1", "b1") == 0.9

    def test_intersection_keeps_min_of_shared(self, left, right):
        common = intersection([left, right])
        assert common.to_rows() == [("a1", "b1", 0.7)]

    def test_difference(self, left, right):
        only_left = difference(left, right)
        assert only_left.pairs() == {("a2", "b2")}

    def test_difference_incompatible(self, left):
        other = Mapping("A", "C")
        with pytest.raises(ValueError):
            difference(left, other)

    def test_difference_preserves_similarity(self, left, right):
        assert difference(left, right).get("a2", "b2") == 0.5


class TestSymmetrize:
    def test_adds_reverse_direction(self):
        mapping = Mapping.from_correspondences("A", "A", [("x", "y", 0.8)])
        symmetric = symmetrize(mapping)
        assert symmetric.get("y", "x") == 0.8

    def test_keeps_max_on_disagreement(self):
        mapping = Mapping.from_correspondences("A", "A", [
            ("x", "y", 0.8), ("y", "x", 0.6)])
        symmetric = symmetrize(mapping)
        assert symmetric.get("y", "x") == 0.8

    def test_rejects_cross_source(self):
        with pytest.raises(ValueError):
            symmetrize(Mapping("A", "B"))


class TestTransitiveClosure:
    def test_chains_become_cliques(self):
        mapping = Mapping.from_correspondences("A", "A", [
            ("x", "y", 1.0), ("y", "z", 1.0)])
        closure = transitive_closure(mapping)
        assert ("x", "z") in closure.pairs()
        assert ("z", "x") in closure.pairs()

    def test_cluster_similarity_is_minimum(self):
        mapping = Mapping.from_correspondences("A", "A", [
            ("x", "y", 1.0), ("y", "z", 0.6)])
        closure = transitive_closure(mapping)
        assert closure.get("x", "z") == 0.6

    def test_separate_components_stay_separate(self):
        mapping = Mapping.from_correspondences("A", "A", [
            ("x", "y", 1.0), ("u", "v", 1.0)])
        closure = transitive_closure(mapping)
        assert ("x", "u") not in closure.pairs()

    def test_rejects_cross_source(self):
        with pytest.raises(ValueError):
            transitive_closure(Mapping("A", "B"))


class TestHubCompose:
    def test_figure8_hub_matching(self):
        """Fig. 8: peripheral sources match through the DBLP hub."""
        gs_hub = Mapping.from_correspondences("GS", "DBLP", [
            ("g1", "d1", 1.0), ("g2", "d2", 0.9)])
        hub_acm = Mapping.from_correspondences("DBLP", "ACM", [
            ("d1", "q1", 1.0), ("d2", "q2", 1.0)])
        result = hub_compose([gs_hub, hub_acm], "GS", "ACM")
        assert result.get("g1", "q1") == 1.0
        assert result.get("g2", "q2") == 0.9

    def test_orientation_flipped_automatically(self):
        hub_gs = Mapping.from_correspondences("DBLP", "GS", [
            ("d1", "g1", 1.0)])
        hub_acm = Mapping.from_correspondences("DBLP", "ACM", [
            ("d1", "q1", 1.0)])
        result = hub_compose([hub_gs, hub_acm], "GS", "ACM")
        assert result.pairs() == {("g1", "q1")}

    def test_unconnected_sources_rejected(self):
        hub_acm = Mapping.from_correspondences("DBLP", "ACM", [
            ("d1", "q1", 1.0)])
        with pytest.raises(ValueError):
            hub_compose([hub_acm], "GS", "ACM")

    def test_disagreeing_hub_rejected(self):
        gs_x = Mapping.from_correspondences("GS", "X", [("g", "x", 1.0)])
        y_acm = Mapping.from_correspondences("Y", "ACM", [("y", "q", 1.0)])
        with pytest.raises(ValueError):
            hub_compose([gs_x, y_acm], "GS", "ACM")
