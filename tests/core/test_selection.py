"""Tests for selection strategies (§3.3)."""

import pytest

from repro.core.mapping import Mapping
from repro.core.operators.selection import (
    Best1DeltaSelection,
    BestNSelection,
    CompositeSelection,
    ConstraintSelection,
    MaxAttributeDifference,
    NotIdentity,
    ThresholdSelection,
    select,
)
from repro.model.source import LogicalSource, ObjectType, PhysicalSource


@pytest.fixture
def mapping():
    return Mapping.from_correspondences("A", "B", [
        ("a1", "b1", 0.9), ("a1", "b2", 0.85), ("a1", "b3", 0.3),
        ("a2", "b1", 0.6), ("a2", "b4", 0.6),
        ("a3", "b5", 0.2),
    ])


class TestThreshold:
    def test_inclusive_by_default(self, mapping):
        selected = ThresholdSelection(0.6).apply(mapping)
        assert len(selected) == 4
        assert ("a2", "b1") in selected.pairs()

    def test_strict(self, mapping):
        selected = ThresholdSelection(0.6, strict=True).apply(mapping)
        assert len(selected) == 2

    def test_zero_keeps_all(self, mapping):
        assert len(ThresholdSelection(0.0).apply(mapping)) == len(mapping)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdSelection(1.5)

    def test_original_untouched(self, mapping):
        ThresholdSelection(0.9).apply(mapping)
        assert len(mapping) == 6


class TestBestN:
    def test_best1_per_domain(self, mapping):
        selected = BestNSelection(1, side="domain").apply(mapping)
        assert ("a1", "b1") in selected.pairs()
        assert ("a1", "b2") not in selected.pairs()
        # ties are all kept
        assert ("a2", "b1") in selected.pairs()
        assert ("a2", "b4") in selected.pairs()

    def test_best2(self, mapping):
        selected = BestNSelection(2, side="domain").apply(mapping)
        assert selected.out_degree("a1") == 2

    def test_best1_per_range(self, mapping):
        selected = BestNSelection(1, side="range").apply(mapping)
        # b1 keeps only its best domain partner a1
        assert ("a1", "b1") in selected.pairs()
        assert ("a2", "b1") not in selected.pairs()

    def test_both_sides_intersect(self, mapping):
        both = BestNSelection(1, side="both").apply(mapping)
        domain_only = BestNSelection(1, side="domain").apply(mapping)
        assert both.pairs() <= domain_only.pairs()

    def test_validation(self):
        with pytest.raises(ValueError):
            BestNSelection(0)
        with pytest.raises(ValueError):
            BestNSelection(1, side="middle")


class TestBest1Delta:
    def test_absolute_delta(self, mapping):
        selected = Best1DeltaSelection(0.05).apply(mapping)
        # a1: best .9, keep >= .85
        assert ("a1", "b2") in selected.pairs()
        assert ("a1", "b3") not in selected.pairs()

    def test_zero_delta_equals_best1_with_ties(self, mapping):
        delta = Best1DeltaSelection(0.0).apply(mapping)
        best = BestNSelection(1).apply(mapping)
        assert delta.pairs() == best.pairs()

    def test_relative_delta(self, mapping):
        selected = Best1DeltaSelection(0.1, relative=True).apply(mapping)
        # a1: keep >= 0.9*0.9 = 0.81 -> b1, b2
        assert selected.out_degree("a1") == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Best1DeltaSelection(-0.1)
        with pytest.raises(ValueError):
            Best1DeltaSelection(1.5, relative=True)
        with pytest.raises(ValueError):
            Best1DeltaSelection(0.1, side="sideways")


def _sources_with_years():
    domain = LogicalSource(PhysicalSource("L"), ObjectType("Publication"))
    range_ = LogicalSource(PhysicalSource("R"), ObjectType("Publication"))
    domain.add_record("a1", year=2001)
    domain.add_record("a2", year=2001)
    range_.add_record("b1", year=2001)
    range_.add_record("b2", year=2003)
    range_.add_record("b3")  # missing year
    return domain, range_


class TestConstraints:
    def test_year_difference_constraint(self):
        domain, range_ = _sources_with_years()
        mapping = Mapping.from_correspondences(
            "L.Publication", "R.Publication",
            [("a1", "b1", 1.0), ("a1", "b2", 1.0)])
        constrained = MaxAttributeDifference(domain, range_, "year", 1.0)
        selected = constrained.apply(mapping)
        assert selected.pairs() == {("a1", "b1")}

    def test_missing_year_kept_by_default(self):
        domain, range_ = _sources_with_years()
        mapping = Mapping.from_correspondences(
            "L.Publication", "R.Publication", [("a1", "b3", 1.0)])
        selected = MaxAttributeDifference(domain, range_, "year", 1.0).apply(mapping)
        assert len(selected) == 1

    def test_missing_year_dropped_when_strict(self):
        domain, range_ = _sources_with_years()
        mapping = Mapping.from_correspondences(
            "L.Publication", "R.Publication", [("a1", "b3", 1.0)])
        strict = MaxAttributeDifference(domain, range_, "year", 1.0,
                                        keep_missing=False)
        assert len(strict.apply(mapping)) == 0

    def test_custom_predicate(self):
        domain, range_ = _sources_with_years()
        mapping = Mapping.from_correspondences(
            "L.Publication", "R.Publication",
            [("a1", "b1", 1.0), ("a2", "b2", 1.0)])
        same_year = ConstraintSelection(
            domain, range_,
            lambda a, b: a.get("year") == b.get("year"))
        assert same_year.apply(mapping).pairs() == {("a1", "b1")}

    def test_unresolved_instances(self):
        domain, range_ = _sources_with_years()
        mapping = Mapping.from_correspondences(
            "L.Publication", "R.Publication", [("ghost", "b1", 1.0)])
        drop = ConstraintSelection(domain, range_, lambda a, b: True)
        assert len(drop.apply(mapping)) == 0
        keep = ConstraintSelection(domain, range_, lambda a, b: True,
                                   keep_unresolved=True)
        assert len(keep.apply(mapping)) == 1

    def test_negative_difference_rejected(self):
        domain, range_ = _sources_with_years()
        with pytest.raises(ValueError):
            MaxAttributeDifference(domain, range_, "year", -1)


class TestCompositionHelpers:
    def test_not_identity(self):
        mapping = Mapping.from_correspondences("A", "A", [
            ("x", "x", 1.0), ("x", "y", 0.9)])
        assert NotIdentity().apply(mapping).pairs() == {("x", "y")}

    def test_composite_selection(self, mapping):
        pipeline = CompositeSelection([
            ThresholdSelection(0.6), BestNSelection(1, side="domain"),
        ])
        result = pipeline.apply(mapping)
        assert ("a1", "b1") in result.pairs()
        assert ("a1", "b3") not in result.pairs()

    def test_select_function(self, mapping):
        result = select(mapping, ThresholdSelection(0.85),
                        BestNSelection(1))
        assert result.pairs() == {("a1", "b1")}
