"""repro.concurrency.requires_lock: marker semantics + runtime assert."""

import threading

import pytest

from repro.concurrency import requires_lock


class Counter:
    def __init__(self, lock):
        self._lock = lock
        self.value = 0

    @requires_lock("_lock")
    def bump(self):
        self.value += 1
        return self.value


def test_annotation_is_introspectable():
    assert Counter.bump.__requires_lock__ == "_lock"
    assert Counter.bump.__name__ == "bump"


def test_rlock_held_passes():
    counter = Counter(threading.RLock())
    with counter._lock:
        assert counter.bump() == 1


def test_rlock_not_held_raises_assertion():
    counter = Counter(threading.RLock())
    with pytest.raises(AssertionError, match="_lock"):
        counter.bump()


def test_plain_lock_is_marker_only():
    # threading.Lock has no _is_owned; the decorator degrades to a
    # pure marker rather than guessing ownership
    counter = Counter(threading.Lock())
    assert counter.bump() == 1


def test_missing_lock_attribute_is_marker_only():
    counter = Counter.__new__(Counter)
    counter.value = 0
    assert counter.bump() == 1
