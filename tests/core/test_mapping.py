"""Tests for the Mapping data structure."""

import pytest

from repro.core.correspondence import Correspondence
from repro.core.mapping import Mapping, MappingKind


@pytest.fixture
def mapping():
    return Mapping.from_correspondences("A", "B", [
        ("a1", "b1", 1.0), ("a1", "b2", 0.5), ("a2", "b1", 0.7),
    ])


class TestConstruction:
    def test_requires_names(self):
        with pytest.raises(ValueError):
            Mapping("", "B")

    def test_from_correspondences(self, mapping):
        assert len(mapping) == 3

    def test_identity(self):
        identity = Mapping.identity("A", ["x", "y"])
        assert identity.get("x", "x") == 1.0
        assert identity.get("x", "y") is None
        assert identity.is_self_mapping()

    def test_default_kind_same(self, mapping):
        assert mapping.kind == MappingKind.SAME


class TestAddRemove:
    def test_similarity_validated(self):
        mapping = Mapping("A", "B")
        with pytest.raises(ValueError):
            mapping.add("a", "b", 1.5)
        with pytest.raises(ValueError):
            mapping.add("a", "b", -0.1)

    def test_conflict_max_default(self):
        mapping = Mapping("A", "B")
        mapping.add("a", "b", 0.5)
        mapping.add("a", "b", 0.8)
        mapping.add("a", "b", 0.3)
        assert mapping.get("a", "b") == 0.8

    def test_conflict_replace(self):
        mapping = Mapping("A", "B")
        mapping.add("a", "b", 0.9)
        mapping.add("a", "b", 0.2, on_conflict="replace")
        assert mapping.get("a", "b") == 0.2

    def test_conflict_error(self):
        mapping = Mapping("A", "B")
        mapping.add("a", "b", 0.9)
        with pytest.raises(ValueError):
            mapping.add("a", "b", 0.2, on_conflict="error")

    def test_unknown_conflict_policy(self):
        mapping = Mapping("A", "B")
        mapping.add("a", "b", 0.9)
        with pytest.raises(ValueError):
            mapping.add("a", "b", 0.1, on_conflict="bogus")

    def test_remove(self, mapping):
        assert mapping.remove("a1", "b2") is True
        assert mapping.get("a1", "b2") is None
        assert mapping.remove("a1", "b2") is False

    def test_remove_cleans_indexes(self):
        mapping = Mapping("A", "B")
        mapping.add("a", "b", 1.0)
        mapping.remove("a", "b")
        assert mapping.domain_ids() == set()
        assert mapping.range_ids() == set()


class TestLookup:
    def test_contains(self, mapping):
        assert ("a1", "b1") in mapping
        assert ("a1", "bX") not in mapping

    def test_degrees_match_figure5(self, mapping):
        # n(a) / n(b) of the compose similarity definitions
        assert mapping.out_degree("a1") == 2
        assert mapping.in_degree("b1") == 2
        assert mapping.out_degree("ghost") == 0

    def test_pairs(self, mapping):
        assert ("a2", "b1") in mapping.pairs()

    def test_row_views(self, mapping):
        assert mapping.range_ids_of("a1") == {"b1": 1.0, "b2": 0.5}
        assert mapping.domain_ids_of("b1") == {"a1": 1.0, "a2": 0.7}

    def test_views_are_copies(self, mapping):
        view = mapping.range_ids_of("a1")
        view["b9"] = 1.0
        assert mapping.get("a1", "b9") is None

    def test_iteration_yields_correspondences(self, mapping):
        first = next(iter(mapping))
        assert isinstance(first, Correspondence)

    def test_bool_and_len(self):
        assert not Mapping("A", "B")
        assert Mapping.from_correspondences("A", "B", [("a", "b", 1.0)])


class TestDerivedMappings:
    def test_inverse_swaps(self, mapping):
        inverse = mapping.inverse()
        assert inverse.get("b1", "a1") == 1.0
        assert inverse.domain == "B" and inverse.range == "A"

    def test_inverse_involution(self, mapping):
        assert mapping.inverse().inverse().to_rows() == mapping.to_rows()

    def test_copy_independent(self, mapping):
        duplicate = mapping.copy()
        duplicate.add("aX", "bX", 1.0)
        assert ("aX", "bX") not in mapping

    def test_filter(self, mapping):
        strong = mapping.filter(lambda c: c.similarity >= 0.7)
        assert len(strong) == 2

    def test_restrict_domain(self, mapping):
        restricted = mapping.restrict_domain(["a1"])
        assert restricted.domain_ids() == {"a1"}
        assert len(restricted) == 2

    def test_restrict_range(self, mapping):
        restricted = mapping.restrict_range(["b1"])
        assert restricted.range_ids() == {"b1"}
        assert len(restricted) == 2

    def test_scale_clamps(self, mapping):
        scaled = mapping.scale(3.0)
        assert scaled.get("a1", "b2") == 1.0

    def test_scale_negative_rejected(self, mapping):
        with pytest.raises(ValueError):
            mapping.scale(-1.0)

    def test_without_identity(self):
        self_mapping = Mapping.from_correspondences("A", "A", [
            ("x", "x", 1.0), ("x", "y", 0.8),
        ])
        cleaned = self_mapping.without_identity()
        assert cleaned.to_rows() == [("x", "y", 0.8)]


class TestEquality:
    def test_equal_mappings(self):
        first = Mapping.from_correspondences("A", "B", [("a", "b", 0.5)])
        second = Mapping.from_correspondences("A", "B", [("a", "b", 0.5)])
        assert first == second

    def test_different_kind_not_equal(self):
        same = Mapping.from_correspondences("A", "B", [("a", "b", 0.5)])
        asso = Mapping.from_correspondences(
            "A", "B", [("a", "b", 0.5)], kind=MappingKind.ASSOCIATION)
        assert same != asso

    def test_to_rows_sorted(self, mapping):
        rows = mapping.to_rows()
        assert rows == sorted(rows)
