"""Tests for the matcher library registry."""

import pytest

from repro.core.matchers.attribute import AttributeMatcher
from repro.core.matchers.base import Matcher
from repro.core.matchers.library import MatcherLibrary, default_library
from repro.model.source import LogicalSource, ObjectType, PhysicalSource


class TestMatcherLibrary:
    def test_register_and_create(self):
        library = MatcherLibrary()
        library.register("title", lambda **kw: AttributeMatcher("title", **kw))
        matcher = library.create("title", threshold=0.7)
        assert isinstance(matcher, Matcher)
        assert matcher.threshold == 0.7

    def test_case_insensitive(self):
        library = MatcherLibrary()
        library.register("Title", lambda **kw: AttributeMatcher("title"))
        assert "title" in library
        assert library.create("TITLE") is not None

    def test_duplicate_rejected(self):
        library = MatcherLibrary()
        library.register("x", lambda **kw: AttributeMatcher("a"))
        with pytest.raises(ValueError):
            library.register("x", lambda **kw: AttributeMatcher("b"))

    def test_replace_allowed(self):
        library = MatcherLibrary()
        library.register("x", lambda **kw: AttributeMatcher("a"))
        library.register("x", lambda **kw: AttributeMatcher("b"), replace=True)
        assert library.create("x").attribute == "b"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            MatcherLibrary().create("nope")

    def test_empty_name(self):
        with pytest.raises(ValueError):
            MatcherLibrary().register("  ", lambda **kw: None)

    def test_fresh_instances(self):
        library = default_library()
        assert library.create("attribute", attribute="title") is not \
            library.create("attribute", attribute="title")


class TestDefaultLibrary:
    def setup_method(self):
        self.library = default_library()

    def test_expected_names(self):
        for name in ("attribute", "title", "name", "year",
                     "multiattribute", "personname"):
            assert name in self.library

    def test_title_preset_works(self):
        source = LogicalSource(PhysicalSource("S"), ObjectType("Publication"))
        source.add_record("p1", title="Adaptive Query Processing")
        other = LogicalSource(PhysicalSource("T"), ObjectType("Publication"))
        other.add_record("q1", title="Adaptive Query Processing")
        matcher = self.library.create("title", threshold=0.8)
        assert matcher.match(source, other).get("p1", "q1") == 1.0

    def test_year_preset_exact(self):
        matcher = self.library.create("year")
        assert matcher.similarity.name == "exact"

    def test_multiattribute_from_dicts(self):
        matcher = self.library.create("multiattribute", pairs=[
            {"attribute": "title"}, {"attribute": "year",
                                     "similarity": "year"},
        ])
        assert len(matcher.pairs) == 2

    def test_names_sorted(self):
        names = self.library.names()
        assert names == sorted(names)
