"""Tests for match-strategy selection."""

import pytest

from repro.core.mapping import Mapping
from repro.core.strategy import StrategySelector


@pytest.fixture
def gold():
    return Mapping.from_correspondences("A", "B", [
        (f"a{i}", f"b{i}", 1.0) for i in range(20)
    ])


def good_strategy():
    return Mapping.from_correspondences("A", "B", [
        (f"a{i}", f"b{i}", 0.9) for i in range(20)
    ])


def noisy_strategy():
    rows = [(f"a{i}", f"b{i}", 0.9) for i in range(10)]
    rows += [(f"a{i}", "wrong", 0.9) for i in range(10, 20)]
    return Mapping.from_correspondences("A", "B", rows)


def empty_strategy():
    return Mapping("A", "B")


class TestSelection:
    def test_ranks_by_f1(self, gold):
        selector = StrategySelector(gold, training_fraction=0.5, seed=1)
        selector.register("good", good_strategy)
        selector.register("noisy", noisy_strategy)
        selector.register("empty", empty_strategy)
        outcomes = selector.evaluate()
        assert [outcome.name for outcome in outcomes][0] == "good"
        assert outcomes[0].f1 == pytest.approx(1.0)
        assert outcomes[-1].name == "empty"

    def test_select_returns_best(self, gold):
        selector = StrategySelector(gold)
        selector.register("good", good_strategy)
        selector.register("noisy", noisy_strategy)
        assert selector.select().name == "good"

    def test_training_domain_sampled(self, gold):
        selector = StrategySelector(gold, training_fraction=0.25, seed=3)
        training = selector.training_domain()
        assert len(training) == 5
        assert training <= gold.domain_ids()

    def test_training_domain_stable(self, gold):
        selector = StrategySelector(gold, seed=3)
        assert selector.training_domain() is not None
        assert selector.training_domain() == selector.training_domain()

    def test_keep_mappings_flag(self, gold):
        selector = StrategySelector(gold, keep_mappings=True)
        selector.register("good", good_strategy)
        outcome = selector.select()
        assert outcome.mapping is not None
        selector_no = StrategySelector(gold)
        selector_no.register("good", good_strategy)
        assert selector_no.select().mapping is None

    def test_scoring_restricted_to_training(self, gold):
        # a strategy only correct on the training half still scores 1.0
        selector = StrategySelector(gold, training_fraction=0.3, seed=5)
        training = selector.training_domain()

        def partial():
            return Mapping.from_correspondences("A", "B", [
                (a, f"b{a[1:]}", 0.9) for a in training
            ])

        selector.register("partial", partial)
        assert selector.select().f1 == pytest.approx(1.0)


class TestValidation:
    def test_fraction_bounds(self, gold):
        with pytest.raises(ValueError):
            StrategySelector(gold, training_fraction=0.0)

    def test_duplicate_name(self, gold):
        selector = StrategySelector(gold)
        selector.register("x", good_strategy)
        with pytest.raises(ValueError):
            selector.register("x", good_strategy)

    def test_empty_name(self, gold):
        with pytest.raises(ValueError):
            StrategySelector(gold).register("", good_strategy)

    def test_no_strategies(self, gold):
        with pytest.raises(ValueError):
            StrategySelector(gold).evaluate()


class TestOnDataset:
    def test_selects_merge_over_singles(self, dataset, workbench):
        gold = dataset.gold.publications("DBLP.Publication",
                                         "ACM.Publication")
        from repro.core.operators.merge import merge
        from repro.core.operators.selection import ThresholdSelection

        threshold = ThresholdSelection(0.8)
        selector = StrategySelector(gold, training_fraction=0.4, seed=2)
        selector.register(
            "title-only",
            lambda: threshold.apply(workbench.fuzzy_title("DBLP", "ACM")))
        selector.register(
            "year-only",
            lambda: workbench.year_mapping("DBLP", "ACM"))
        selector.register(
            "merged",
            lambda: threshold.apply(merge(
                [workbench.fuzzy_title("DBLP", "ACM"),
                 workbench.fuzzy_pub_authors("DBLP", "ACM"),
                 workbench.year_mapping("DBLP", "ACM")], "avg0")))
        best = selector.select()
        assert best.name == "merged"
