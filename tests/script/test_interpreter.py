"""Tests for the script interpreter."""

import pytest

from repro.core.mapping import Mapping, MappingKind
from repro.model.smm import SourceMappingModel
from repro.script.errors import ScriptRuntimeError
from repro.script.interpreter import ScriptEngine


@pytest.fixture
def engine():
    smm = SourceMappingModel()
    pubs_a = smm.create_source("L", "Publication")
    pubs_b = smm.create_source("R", "Publication")
    pubs_a.add_record("p1", title="Adaptive Query Processing")
    pubs_a.add_record("p2", title="Schema Matching")
    pubs_b.add_record("q1", title="Adaptive Query Processing")
    pubs_b.add_record("q2", title="Schema Matching")
    smm.register_mapping(
        "L-R",
        Mapping.from_correspondences("L.Publication", "R.Publication",
                                     [("p1", "q1", 1.0), ("p2", "q2", 0.7)]),
    )
    return ScriptEngine(smm=smm)


class TestResolution:
    def test_mapping_identifier(self, engine):
        assert len(engine.resolve_identifier("L-R")) == 2

    def test_source_identifier(self, engine):
        source = engine.resolve_identifier("L.Publication")
        assert source.name == "L.Publication"

    def test_symbol_identifiers(self, engine):
        assert engine.resolve_identifier("Average") == "avg"
        assert engine.resolve_identifier("RelativeLeft") == "relative_left"
        assert engine.resolve_identifier("Min") == "min"

    def test_prefermap_symbol(self, engine):
        assert engine.resolve_identifier("PreferMap1") == ("prefer", 0)
        assert engine.resolve_identifier("PreferMap2") == ("prefer", 1)

    def test_identity_pattern(self, engine):
        identity = engine.resolve_identifier("L.PublicationPublication")
        assert identity.get("p1", "p1") == 1.0
        assert identity.is_self_mapping()

    def test_unknown_identifier(self, engine):
        with pytest.raises(ScriptRuntimeError):
            engine.resolve_identifier("No.Such.Thing")


class TestExecution:
    def test_assignment_and_variables(self, engine):
        engine.run("$X = L-R")
        assert len(engine.variables["X"]) == 2

    def test_last_value_returned(self, engine):
        result = engine.run("$X = L-R\nsize($X)")
        assert result == 2.0

    def test_undefined_variable(self, engine):
        with pytest.raises(ScriptRuntimeError):
            engine.run("$Y = $Missing")

    def test_unknown_function(self, engine):
        with pytest.raises(ScriptRuntimeError):
            engine.run("$X = frobnicate(L-R)")

    def test_procedure_definition_and_call(self, engine):
        result = engine.run(
            "PROCEDURE double($M)\n"
            "  $Out = merge($M, $M, Max)\n"
            "  RETURN $Out\n"
            "END\n"
            "$R = double(L-R)\n"
            "size($R)"
        )
        assert result == 2.0

    def test_procedure_locals_do_not_leak(self, engine):
        engine.run(
            "PROCEDURE probe($M)\n"
            "  $Local = $M\n"
            "  RETURN $Local\n"
            "END\n"
            "$X = probe(L-R)"
        )
        assert "Local" not in engine.variables

    def test_procedure_arity_checked(self, engine):
        engine.run("PROCEDURE two($A, $B)\nRETURN $A\nEND")
        with pytest.raises(ScriptRuntimeError):
            engine.call("two", Mapping("A", "B"))

    def test_procedure_without_return_gives_none(self, engine):
        result = engine.run("PROCEDURE silent($A)\n$X = $A\nEND\n"
                            "$Y = silent(L-R)")
        assert result is None

    def test_call_from_python(self, engine):
        mapping = engine.resolve_identifier("L-R")
        assert engine.call("size", mapping) == 2.0


class TestPaperScript:
    def test_nhmatch_as_user_procedure_matches_builtin(self, engine):
        asso = Mapping.from_correspondences(
            "L.Publication", "L.Publication",
            [("p1", "p2", 1.0), ("p2", "p1", 1.0)],
            kind=MappingKind.ASSOCIATION)
        engine.add_mapping("Asso", asso)
        engine.run(
            "PROCEDURE myMatch ( $Asso1, $Same, $Asso2)\n"
            "   $Temp = compose ( $Asso1 , $Same , Min, Average )\n"
            "   $Result = compose ( $Temp , $Asso2 , Min, Relative )\n"
            "   RETURN $Result\n"
            "END\n"
            "$Mine = myMatch(Asso, L.PublicationPublication, Asso)\n"
            "$Builtin = nhMatch(Asso, L.PublicationPublication, Asso)\n"
        )
        assert engine.variables["Mine"].to_rows() == \
            engine.variables["Builtin"].to_rows()
