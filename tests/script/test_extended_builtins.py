"""Tests for the extended script builtins (symmetrize/closure/multiAttr)."""

import pytest

from repro.core.mapping import Mapping
from repro.model.smm import SourceMappingModel
from repro.script.errors import ScriptRuntimeError
from repro.script.interpreter import ScriptEngine


@pytest.fixture
def engine():
    smm = SourceMappingModel()
    pubs_l = smm.create_source("L", "Publication")
    pubs_r = smm.create_source("R", "Publication")
    pubs_l.add_record("p1", title="Adaptive Query Processing", year=2001)
    pubs_l.add_record("p2", title="Schema Matching", year=2002)
    pubs_r.add_record("q1", title="Adaptive Query Processing", year=2001)
    pubs_r.add_record("q2", title="Schema Matching", year=1995)
    return ScriptEngine(smm=smm)


class TestSymmetrizeClosure:
    def test_symmetrize(self, engine):
        engine.add_mapping("M", Mapping.from_correspondences(
            "L.Publication", "L.Publication", [("p1", "p2", 0.8)]))
        result = engine.run("$S = symmetrize(M)")
        assert result.get("p2", "p1") == 0.8

    def test_closure_builds_clusters(self, engine):
        engine.add_mapping("M", Mapping.from_correspondences(
            "L.Publication", "L.Publication",
            [("a", "b", 1.0), ("b", "c", 1.0)]))
        result = engine.run("$C = closure(M)")
        assert ("a", "c") in result.pairs()

    def test_closure_rejects_cross_source(self, engine):
        engine.add_mapping("M", Mapping.from_correspondences(
            "L.Publication", "R.Publication", [("p1", "q1", 1.0)]))
        with pytest.raises(ScriptRuntimeError) as excinfo:
            engine.run("$C = closure(M)")
        assert "self-mapping" in str(excinfo.value.__cause__ or excinfo.value)

    def test_dedup_pipeline_in_script(self, engine):
        """symmetrize + closure compose into the §5.6 dedup workflow."""
        result = engine.run(
            '$Raw = attrMatch(L.Publication, L.Publication, Trigram, 0.9, '
            '"[title]", "[title]")\n'
            "$Sym = symmetrize($Raw)\n"
            "$Clusters = closure($Sym)\n"
            "size($Clusters)"
        )
        assert result >= 0.0


class TestMultiAttrMatch:
    def test_title_and_year(self, engine):
        result = engine.run(
            '$M = multiAttrMatch(L.Publication, R.Publication, Trigram, '
            '0.9, "[title],[year]")')
        # p1/q1 agree on both; p2/q2 disagree on year -> below 0.9 avg
        assert ("p1", "q1") in result.pairs()
        assert ("p2", "q2") not in result.pairs()

    def test_separate_range_attributes(self, engine):
        result = engine.run(
            '$M = multiAttrMatch(L.Publication, R.Publication, Trigram, '
            '0.5, "[title],[year]", "[title],[year]")')
        assert len(result) >= 1

    def test_mismatched_lists_rejected(self, engine):
        with pytest.raises(ScriptRuntimeError):
            engine.run(
                '$M = multiAttrMatch(L.Publication, R.Publication, Trigram, '
                '0.5, "[title],[year]", "[title]")')

    def test_arity(self, engine):
        with pytest.raises(ScriptRuntimeError):
            engine.run("$M = multiAttrMatch(L.Publication, R.Publication)")
