"""Tests for constraint expressions."""

import pytest

from repro.core.correspondence import Correspondence
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.script.constraints import ConstraintExpression
from repro.script.errors import ScriptRuntimeError


@pytest.fixture
def sources():
    domain = LogicalSource(PhysicalSource("L"), ObjectType("Publication"))
    range_ = LogicalSource(PhysicalSource("R"), ObjectType("Publication"))
    domain.add_record("a1", year=2001, venue="vldb")
    domain.add_record("a2", year=2003)
    range_.add_record("b1", year=2002, venue="vldb")
    range_.add_record("b2", venue="sigmod")
    return domain, range_


class TestIdentityConstraint:
    def test_not_equal_ids(self):
        constraint = ConstraintExpression("[domain.id]<>[range.id]")
        assert constraint(Correspondence("x", "y", 1.0)) is True
        assert constraint(Correspondence("x", "x", 1.0)) is False

    def test_equal_ids(self):
        constraint = ConstraintExpression("[domain.id]=[range.id]")
        assert constraint(Correspondence("x", "x", 1.0)) is True


class TestAttributeConstraints:
    def test_year_difference(self, sources):
        domain, range_ = sources
        constraint = ConstraintExpression(
            "[domain.year]-[range.year]<=1",
            domain_source=domain, range_source=range_)
        assert constraint(Correspondence("a1", "b1", 1.0)) is True
        assert constraint(Correspondence("a2", "b1", 1.0)) is True
        constraint_strict = ConstraintExpression(
            "[domain.year]-[range.year]<=0.5",
            domain_source=domain, range_source=range_)
        assert constraint_strict(Correspondence("a1", "b1", 1.0)) is False

    def test_difference_is_absolute(self, sources):
        domain, range_ = sources
        constraint = ConstraintExpression(
            "[range.year]-[domain.year]<=1",
            domain_source=domain, range_source=range_)
        assert constraint(Correspondence("a1", "b1", 1.0)) is True

    def test_string_equality(self, sources):
        domain, range_ = sources
        constraint = ConstraintExpression(
            "[domain.venue]=[range.venue]",
            domain_source=domain, range_source=range_)
        assert constraint(Correspondence("a1", "b1", 1.0)) is True
        assert constraint(Correspondence("a1", "b2", 1.0)) is False

    def test_literal_comparison(self, sources):
        domain, range_ = sources
        constraint = ConstraintExpression(
            "[domain.year]>=2002", domain_source=domain,
            range_source=range_)
        assert constraint(Correspondence("a2", "b1", 1.0)) is True
        assert constraint(Correspondence("a1", "b1", 1.0)) is False

    def test_string_literal_operand(self, sources):
        domain, range_ = sources
        constraint = ConstraintExpression(
            "[domain.venue]='vldb'", domain_source=domain,
            range_source=range_)
        assert constraint(Correspondence("a1", "b1", 1.0)) is True


class TestMissingValues:
    def test_missing_drops_by_default(self, sources):
        domain, range_ = sources
        constraint = ConstraintExpression(
            "[domain.year]-[range.year]<=1",
            domain_source=domain, range_source=range_)
        assert constraint(Correspondence("a1", "b2", 1.0)) is False

    def test_keep_missing_mode(self, sources):
        domain, range_ = sources
        constraint = ConstraintExpression(
            "[domain.year]-[range.year]<=1",
            domain_source=domain, range_source=range_, keep_missing=True)
        assert constraint(Correspondence("a1", "b2", 1.0)) is True

    def test_unresolved_instance(self, sources):
        domain, range_ = sources
        constraint = ConstraintExpression(
            "[domain.year]>=2000", domain_source=domain,
            range_source=range_)
        assert constraint(Correspondence("ghost", "b1", 1.0)) is False


class TestErrors:
    def test_no_operator(self):
        with pytest.raises(ScriptRuntimeError):
            ConstraintExpression("[domain.id] [range.id]")

    def test_attribute_without_source(self):
        constraint = ConstraintExpression("[domain.year]>=2000")
        with pytest.raises(ScriptRuntimeError):
            constraint(Correspondence("a", "b", 1.0))

    def test_garbage_operand(self):
        with pytest.raises(ScriptRuntimeError):
            ConstraintExpression("???<>[range.id]")

    def test_unterminated_string(self):
        with pytest.raises(ScriptRuntimeError):
            ConstraintExpression("[domain.venue]='open")
