"""Tests for the script tokenizer."""

import pytest

from repro.script.errors import ScriptSyntaxError
from repro.script.lexer import TokenType, tokenize


def types(text):
    return [token.type for token in tokenize(text)]


class TestTokenize:
    def test_assignment_tokens(self):
        tokens = tokenize("$X = merge($A, $B, Average)")
        assert [t.type for t in tokens[:3]] == [
            TokenType.VARIABLE, TokenType.EQUALS, TokenType.IDENTIFIER]

    def test_variable_names(self):
        token = tokenize("$CoAuthSim")[0]
        assert token.type == TokenType.VARIABLE
        assert token.value == "CoAuthSim"

    def test_keywords_case_insensitive(self):
        for text in ("PROCEDURE", "procedure", "Procedure"):
            assert tokenize(text)[0].type == TokenType.KEYWORD

    def test_dotted_identifier(self):
        token = tokenize("DBLP.CoAuthor")[0]
        assert token.type == TokenType.IDENTIFIER
        assert token.value == "DBLP.CoAuthor"

    def test_number_literal(self):
        token = tokenize("0.5")[0]
        assert token.type == TokenType.NUMBER
        assert token.value == "0.5"

    def test_string_literal(self):
        token = tokenize('"[name]"')[0]
        assert token.type == TokenType.STRING
        assert token.value == "[name]"

    def test_unterminated_string(self):
        with pytest.raises(ScriptSyntaxError):
            tokenize('"unclosed')

    def test_comments_skipped(self):
        tokens = tokenize("# comment line\n$X = $Y // trailing\n")
        assert all(token.type != TokenType.IDENTIFIER for token in tokens)

    def test_newlines_collapsed(self):
        tokens = types("$A = $B\n\n\n$C = $D")
        assert tokens.count(TokenType.NEWLINE) == 2

    def test_line_numbers(self):
        tokens = tokenize("$A = $B\n$C = $D")
        last_assignment = [t for t in tokens if t.type == TokenType.VARIABLE][-1]
        assert last_assignment.line == 2

    def test_empty_variable_rejected(self):
        with pytest.raises(ScriptSyntaxError):
            tokenize("$ = x")

    def test_unexpected_character(self):
        with pytest.raises(ScriptSyntaxError):
            tokenize("$X = a @ b")

    def test_eof_token_present(self):
        assert tokenize("")[-1].type == TokenType.EOF
