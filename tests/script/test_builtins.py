"""Tests for script builtins."""

import pytest

from repro.core.mapping import Mapping
from repro.model.repository import MappingRepository
from repro.model.smm import SourceMappingModel
from repro.script.errors import ScriptRuntimeError
from repro.script.interpreter import ScriptEngine


@pytest.fixture
def engine():
    smm = SourceMappingModel()
    authors_l = smm.create_source("L", "Author")
    authors_r = smm.create_source("R", "Author")
    authors_l.add_record("a1", name="John Smith", year=2001)
    authors_l.add_record("a2", name="Jane Miller", year=2002)
    authors_r.add_record("b1", name="John Smith", year=2001)
    authors_r.add_record("b2", name="Jane Miler", year=2003)
    return ScriptEngine(smm=smm, repository=MappingRepository())


class TestAttrMatch:
    def test_basic(self, engine):
        mapping = engine.run(
            '$M = attrMatch(L.Author, R.Author, Trigram, 0.5, '
            '"[name]", "[name]")')
        assert mapping.get("a1", "b1") == 1.0
        assert mapping.get("a2", "b2") > 0.5

    def test_threshold_respected(self, engine):
        mapping = engine.run(
            '$M = attrMatch(L.Author, R.Author, Trigram, 0.99, '
            '"[name]", "[name]")')
        assert ("a2", "b2") not in mapping.pairs()

    def test_arity_error(self, engine):
        with pytest.raises(ScriptRuntimeError):
            engine.run("$M = attrMatch(L.Author)")

    def test_source_type_checked(self, engine):
        with pytest.raises(ScriptRuntimeError):
            engine.run('$M = attrMatch(Min, R.Author, Trigram, 0.5, "[name]")')


class TestMergeComposeSelect:
    def test_merge_with_function_symbol(self, engine):
        first = Mapping.from_correspondences("L.Author", "R.Author",
                                             [("a1", "b1", 1.0)])
        second = Mapping.from_correspondences("L.Author", "R.Author",
                                              [("a1", "b1", 0.5)])
        engine.add_mapping("First", first)
        engine.add_mapping("Second", second)
        merged = engine.run("$M = merge(First, Second, Average)")
        assert merged.get("a1", "b1") == pytest.approx(0.75)

    def test_merge_prefermap(self, engine):
        first = Mapping.from_correspondences("L.Author", "R.Author",
                                             [("a1", "b1", 1.0)])
        second = Mapping.from_correspondences("L.Author", "R.Author",
                                              [("a1", "b2", 0.9),
                                               ("a2", "b2", 0.8)])
        engine.add_mapping("First", first)
        engine.add_mapping("Second", second)
        merged = engine.run("$M = merge(First, Second, PreferMap1)")
        assert merged.pairs() == {("a1", "b1"), ("a2", "b2")}

    def test_compose_defaults(self, engine):
        left = Mapping.from_correspondences("L.Author", "X", [("a1", "x", 1.0)])
        right = Mapping.from_correspondences("X", "R.Author", [("x", "b1", 0.8)])
        engine.add_mapping("Left", left)
        engine.add_mapping("Right", right)
        composed = engine.run("$C = compose(Left, Right)")
        assert composed.get("a1", "b1") == pytest.approx(0.8)

    def test_select_threshold_number(self, engine):
        mapping = Mapping.from_correspondences("L.Author", "R.Author",
                                               [("a1", "b1", 0.9),
                                                ("a2", "b2", 0.4)])
        engine.add_mapping("M", mapping)
        selected = engine.run("$S = select(M, 0.5)")
        assert selected.pairs() == {("a1", "b1")}

    def test_select_best_n(self, engine):
        mapping = Mapping.from_correspondences("L.Author", "R.Author",
                                               [("a1", "b1", 0.9),
                                                ("a1", "b2", 0.5)])
        engine.add_mapping("M", mapping)
        selected = engine.run('$S = select(M, "best-1")')
        assert selected.pairs() == {("a1", "b1")}

    def test_select_identity_constraint(self, engine):
        mapping = Mapping.from_correspondences("L.Author", "L.Author",
                                               [("a1", "a1", 1.0),
                                                ("a1", "a2", 0.8)])
        engine.add_mapping("M", mapping)
        selected = engine.run('$S = select(M, "[domain.id]<>[range.id]")')
        assert selected.pairs() == {("a1", "a2")}

    def test_select_attribute_constraint(self, engine):
        mapping = Mapping.from_correspondences("L.Author", "R.Author",
                                               [("a1", "b1", 1.0),
                                                ("a2", "b2", 1.0)])
        engine.add_mapping("M", mapping)
        selected = engine.run(
            '$S = select(M, "[domain.year]-[range.year]<=0.5")')
        assert selected.pairs() == {("a1", "b1")}


class TestUtilities:
    def test_inverse(self, engine):
        engine.add_mapping("M", Mapping.from_correspondences(
            "L.Author", "R.Author", [("a1", "b1", 0.9)]))
        inverted = engine.run("$I = inverse(M)")
        assert inverted.get("b1", "a1") == 0.9

    def test_identity(self, engine):
        identity = engine.run("$I = identity(L.Author)")
        assert identity.get("a1", "a1") == 1.0

    def test_store_and_load(self, engine):
        engine.add_mapping("M", Mapping.from_correspondences(
            "L.Author", "R.Author", [("a1", "b1", 0.9)]))
        engine.run('store(M, "persisted")')
        loaded = engine.run('$L = load("persisted")')
        assert loaded.get("a1", "b1") == 0.9

    def test_store_requires_repository(self):
        engine = ScriptEngine()
        engine.add_mapping("M", Mapping("A", "B"))
        with pytest.raises(ScriptRuntimeError):
            engine.run('store(M, "x")')

    def test_bestn_builtin(self, engine):
        engine.add_mapping("M", Mapping.from_correspondences(
            "L.Author", "R.Author",
            [("a1", "b1", 0.9), ("a1", "b2", 0.5)]))
        best = engine.run("$B = bestN(M, 1)")
        assert best.pairs() == {("a1", "b1")}

    def test_size(self, engine):
        engine.add_mapping("M", Mapping.from_correspondences(
            "L.Author", "R.Author", [("a1", "b1", 0.9)]))
        assert engine.run("size(M)") == 1.0
