"""Tests for the script parser."""

import pytest

from repro.script.errors import ScriptSyntaxError
from repro.script.nodes import (
    Assignment,
    Call,
    Identifier,
    NumberLiteral,
    ProcedureDef,
    Return,
    StringLiteral,
    VariableRef,
)
from repro.script.parser import parse


class TestExpressions:
    def test_assignment(self):
        program = parse("$X = $Y")
        statement = program.statements[0]
        assert isinstance(statement, Assignment)
        assert statement.target == "X"
        assert isinstance(statement.expression, VariableRef)

    def test_call_with_mixed_arguments(self):
        program = parse('$M = attrMatch(DBLP.Author, DBLP.Author, '
                        'Trigram, 0.5, "[name]", "[name]")')
        call = program.statements[0].expression
        assert isinstance(call, Call)
        assert call.name == "attrMatch"
        assert isinstance(call.arguments[0], Identifier)
        assert isinstance(call.arguments[3], NumberLiteral)
        assert isinstance(call.arguments[4], StringLiteral)

    def test_nested_calls(self):
        program = parse("$X = merge(compose($A, $B), $C, Average)")
        outer = program.statements[0].expression
        assert isinstance(outer.arguments[0], Call)
        assert outer.arguments[0].name == "compose"

    def test_multiline_call(self):
        program = parse("$X = merge(\n  $A,\n  $B,\n  Average\n)")
        assert len(program.statements[0].expression.arguments) == 3

    def test_bare_expression_statement(self):
        program = parse("size($X)")
        assert program.statements[0].expression.name == "size"


class TestProcedures:
    PAPER_SCRIPT = """
    PROCEDURE nhMatch ( $Asso1, $Same, $Asso2)
       $Temp = compose ( $Asso1 , $Same , Min, Average )
       $Result = compose ( $Temp , $Asso2 , Min, Relative )
       RETURN $Result
    END
    """

    def test_paper_procedure_parses(self):
        program = parse(self.PAPER_SCRIPT)
        procedure = program.statements[0]
        assert isinstance(procedure, ProcedureDef)
        assert procedure.name == "nhMatch"
        assert procedure.parameters == ("Asso1", "Same", "Asso2")
        assert len(procedure.body) == 3
        assert isinstance(procedure.body[-1], Return)

    def test_procedure_without_end_rejected(self):
        with pytest.raises(ScriptSyntaxError):
            parse("PROCEDURE broken($A)\n$X = $A\n")

    def test_empty_parameter_list(self):
        program = parse("PROCEDURE noop()\nRETURN 1\nEND")
        assert program.statements[0].parameters == ()

    def test_multiple_statements(self):
        program = parse("$A = f()\n$B = g($A)\n$C = h($B)")
        assert len(program.statements) == 3


class TestErrors:
    def test_unbalanced_parens(self):
        with pytest.raises(ScriptSyntaxError):
            parse("$X = merge($A, $B")

    def test_garbage_after_statement(self):
        with pytest.raises(ScriptSyntaxError):
            parse("$X = $Y $Z")

    def test_error_carries_line(self):
        with pytest.raises(ScriptSyntaxError) as excinfo:
            parse("$A = f()\n$X = merge($A,")
        assert excinfo.value.line >= 2
