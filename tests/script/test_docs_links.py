"""Docs link checker: every markdown link in docs/ and README resolves.

Runs under tier-1 (no new CI workflow or dependency), so a renamed
file or a typoed anchor breaks the build instead of the reader.
Relative links must point at existing files; intra-repo anchors
(``file.md#section``) must match a heading in the target; external
``http(s)`` links are recorded but not fetched (CI must not depend on
the network).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: every markdown file whose links the build guarantees
DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md")),
    key=lambda path: path.name,
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (lowercase, dashes, no punct)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _links(path: Path):
    return _LINK_RE.findall(path.read_text(encoding="utf-8"))


def test_docs_directory_has_the_guaranteed_pages():
    names = {path.name for path in (REPO_ROOT / "docs").glob("*.md")}
    assert {"architecture.md", "engine.md", "benchmarks.md",
            "serving.md", "static-analysis.md"} <= names


def test_readme_links_every_docs_page():
    readme_links = " ".join(_links(REPO_ROOT / "README.md"))
    for page in ("docs/architecture.md", "docs/engine.md",
                 "docs/benchmarks.md", "docs/serving.md",
                 "docs/static-analysis.md"):
        assert page in readme_links, f"README does not link {page}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda path: path.name)
def test_links_resolve(doc):
    broken = []
    for target in _links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            path, anchor = doc, target[1:]
        else:
            raw, _, anchor = target.partition("#")
            path = (doc.parent / raw).resolve()
        if not path.exists():
            broken.append(f"{target}: file {path} does not exist")
            continue
        if anchor and path.suffix == ".md":
            anchors = {_anchor(h) for h in
                       _HEADING_RE.findall(path.read_text(encoding="utf-8"))}
            if anchor not in anchors:
                broken.append(f"{target}: no heading for anchor #{anchor}")
    assert not broken, f"broken links in {doc.name}:\n" + "\n".join(broken)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda path: path.name)
def test_links_stay_inside_the_repository(doc):
    for target in _links(doc):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (doc.parent / target.partition("#")[0]).resolve()
        assert resolved.is_relative_to(REPO_ROOT), \
            f"{target} escapes the repository"
