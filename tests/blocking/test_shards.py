"""Tests for the sharded candidate-generation protocol.

The load-bearing contract: for every blocking strategy, the union of
``shards()``'s pair streams equals the distinct ``candidates()`` set
on the same inputs — for any shard count, in both matching modes.
That set-level equality (plus deterministic scoring and idempotent
merging) is what makes sharded parallel execution byte-identical to
serial execution.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking import (
    CanopyBlocking,
    FullCross,
    IdBlock,
    KeyBlocking,
    PairGenerator,
    SortedNeighborhood,
    TokenBlocking,
    partition_spans,
)
from repro.model.source import LogicalSource, ObjectType, PhysicalSource

STRATEGIES = [
    FullCross(),
    KeyBlocking(),
    KeyBlocking(max_block_size=3),
    TokenBlocking(max_df=1.0),
    TokenBlocking(max_df=0.4),
    SortedNeighborhood(window=3),
    CanopyBlocking(loose=0.15, tight=0.5, seed=3),
]

IDS = [
    "FullCross", "KeyBlocking", "KeyBlocking-capped", "TokenBlocking",
    "TokenBlocking-df", "SortedNeighborhood", "CanopyBlocking",
]


def _source(name: str, titles) -> LogicalSource:
    source = LogicalSource(PhysicalSource(name), ObjectType("Publication"))
    for index, title in enumerate(titles):
        source.add_record(f"{name.lower()}{index}", title=title)
    return source


@pytest.fixture(scope="module")
def sources():
    titles = [
        "adaptive query processing for streams",
        "adaptive query optimization",
        "schema matching with cupid",
        "schema matching survey",
        "data cleaning in warehouses",
        "streaming joins over windows",
        "top retrieval for the web",
        "web data extraction",
        None,
        "query answering using views",
        "views and query rewriting",
    ]
    return _source("L", titles), _source("R", list(reversed(titles)))


def _candidate_set(blocking, domain, range_):
    return set(blocking.candidates(domain, range_,
                                   domain_attribute="title",
                                   range_attribute="title"))


def _shard_union(blocking, domain, range_, n_shards):
    shards = blocking.shards(domain, range_, n_shards=n_shards,
                             domain_attribute="title",
                             range_attribute="title")
    assert len(shards) <= max(1, n_shards)
    union = set()
    for shard in shards:
        union |= set(shard.pairs())
    return union


class TestShardUnionEqualsCandidates:
    @pytest.mark.parametrize("blocking", STRATEGIES, ids=IDS)
    @pytest.mark.parametrize("n_shards", [1, 2, 5, 64])
    def test_two_source(self, sources, blocking, n_shards):
        domain, range_ = sources
        assert _shard_union(blocking, domain, range_, n_shards) == \
            _candidate_set(blocking, domain, range_)

    @pytest.mark.parametrize("blocking", STRATEGIES, ids=IDS)
    @pytest.mark.parametrize("n_shards", [1, 3, 64])
    def test_self_matching(self, sources, blocking, n_shards):
        domain, _ = sources
        assert _shard_union(blocking, domain, domain, n_shards) == \
            _candidate_set(blocking, domain, domain)

    @pytest.mark.parametrize("blocking", STRATEGIES, ids=IDS)
    def test_empty_sources(self, blocking):
        domain = _source("L", [])
        range_ = _source("R", [])
        assert _shard_union(blocking, domain, range_, 4) == set()

    @settings(max_examples=20, deadline=None)
    @given(titles=st.lists(st.text(alphabet="abcd ", min_size=0,
                                   max_size=10),
                           min_size=0, max_size=10),
           n_shards=st.integers(min_value=1, max_value=12))
    def test_property_over_random_titles(self, titles, n_shards):
        domain = _source("L", titles)
        range_ = _source("R", titles[::-1])
        for blocking in STRATEGIES:
            assert _shard_union(blocking, domain, range_, n_shards) == \
                _candidate_set(blocking, domain, range_), type(blocking)


class TestShardBlocks:
    """The optional block view must agree with the shard's pair stream."""

    @pytest.mark.parametrize("blocking", STRATEGIES, ids=IDS)
    @pytest.mark.parametrize("self_match", [False, True])
    def test_blocks_cover_pairs(self, sources, blocking, self_match):
        domain, range_ = sources
        range_ = domain if self_match else range_
        shards = blocking.shards(domain, range_, n_shards=3,
                                 domain_attribute="title",
                                 range_attribute="title")
        for shard in shards:
            blocks = shard.blocks()
            if blocks is None:
                continue
            expanded = set()
            for block in blocks:
                if block.triangle:
                    ids = block.domain_ids
                    for i, id_a in enumerate(ids):
                        for id_b in ids[i + 1:]:
                            expanded.add(tuple(sorted((id_a, id_b))))
                else:
                    expanded.update(
                        (a, b) for a in block.domain_ids
                        for b in block.range_ids)
            pairs = {tuple(sorted(pair)) if self_match else pair
                     for pair in shard.pairs()}
            assert pairs == {tuple(sorted(pair)) if self_match else pair
                             for pair in expanded}

    def test_id_block_pair_count(self):
        assert IdBlock(["a", "b"], ["x", "y", "z"]).pair_count() == 6
        assert IdBlock(["a", "b", "c"], ["a", "b", "c"],
                       triangle=True).pair_count() == 3


class TestShardCosts:
    """Shards expose raw pair-count estimates for skew rebalancing."""

    @pytest.mark.parametrize("blocking", STRATEGIES, ids=IDS)
    @pytest.mark.parametrize("self_match", [False, True])
    def test_known_costs_bound_distinct_pairs(self, sources, blocking,
                                              self_match):
        """Costs are raw (pre-dedup) counts, so the sum over shards is
        an upper bound on the distinct candidate count."""
        domain, range_ = sources
        range_ = domain if self_match else range_
        shards = blocking.shards(domain, range_, n_shards=4,
                                 domain_attribute="title",
                                 range_attribute="title")
        costs = [shard.cost() for shard in shards]
        if not shards:
            return
        assert all(cost is not None and cost >= 0 for cost in costs)
        distinct = len(_candidate_set(blocking, domain, range_))
        assert sum(costs) >= distinct

    def test_block_shard_cost_is_exact(self):
        from repro.blocking.pair_generator import BlockShard

        shard = BlockShard(lambda: iter([
            IdBlock(["a", "b"], ["x", "y", "z"]),
            IdBlock(["p", "q", "r"], ["p", "q", "r"], triangle=True),
        ]))
        assert shard.cost() == 6 + 3

    def test_iterable_shard_cost_defaults_to_unknown(self):
        from repro.blocking.pair_generator import IterableShard

        assert IterableShard(lambda: [("a", "b")]).cost() is None
        assert IterableShard(lambda: [("a", "b")], cost=7).cost() == 7

    def test_base_protocol_default_is_unknown(self, sources):
        class Custom(PairGenerator):
            def candidates(self, domain, range, *, domain_attribute,
                           range_attribute):
                yield ("x", "y")

        domain, range_ = sources
        shards = Custom().shards(domain, range_, n_shards=2,
                                 domain_attribute="title",
                                 range_attribute="title")
        assert shards[0].cost() is None


class TestCanonicalRectBlocks:
    """Rebalancing splits canonical triangles into rectangles; the
    rect branch must then keep the (min id, max id) orientation."""

    def test_rect_pairs_canonicalized(self):
        from repro.blocking.pair_generator import BlockShard

        shard = BlockShard(lambda: iter([IdBlock(["s2"], ["s10", "s3"])]),
                           canonical=True)
        assert list(shard.pairs()) == [("s10", "s2"), ("s2", "s3")]

    def test_rect_pairs_keep_block_order_without_flag(self):
        from repro.blocking.pair_generator import BlockShard

        shard = BlockShard(lambda: iter([IdBlock(["s2"], ["s10", "s3"])]))
        assert list(shard.pairs()) == [("s2", "s10"), ("s2", "s3")]


class TestShardValidation:
    @pytest.mark.parametrize("blocking", STRATEGIES, ids=IDS)
    def test_rejects_non_positive_shard_count(self, sources, blocking):
        domain, range_ = sources
        with pytest.raises(ValueError):
            blocking.shards(domain, range_, n_shards=0,
                            domain_attribute="title",
                            range_attribute="title")

    def test_base_class_default_is_one_delegating_shard(self, sources):
        class Custom(PairGenerator):
            def candidates(self, domain, range, *, domain_attribute,
                           range_attribute):
                yield ("x", "y")
                yield ("x", "z")

        domain, range_ = sources
        shards = Custom().shards(domain, range_, n_shards=8,
                                 domain_attribute="title",
                                 range_attribute="title")
        assert len(shards) == 1
        assert set(shards[0].pairs()) == {("x", "y"), ("x", "z")}


class TestPartitionSpans:
    def test_balances_uniform_costs(self):
        assert partition_spans([1] * 16, 4) == \
            [(0, 4), (4, 8), (8, 12), (12, 16)]

    def test_contiguous_and_complete(self):
        costs = [5, 1, 1, 1, 9, 1, 2, 7]
        spans = partition_spans(costs, 3)
        assert spans[0][0] == 0 and spans[-1][1] == len(costs)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end == start

    def test_never_exceeds_requested_count(self):
        assert len(partition_spans([1] * 100, 7)) <= 7
        assert len(partition_spans([100] + [1] * 5, 4)) <= 4

    def test_fewer_items_than_shards(self):
        assert partition_spans([3, 3], 10) == [(0, 1), (1, 2)]

    def test_empty_and_zero_costs(self):
        assert partition_spans([], 4) == []
        assert partition_spans([0, 0, 0, 0], 2) == [(0, 2), (2, 4)]

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ValueError):
            partition_spans([1, 2], 0)
