"""Tests for all blocking strategies and the blocking metrics."""

import pytest

from repro.blocking import (
    CanopyBlocking,
    FullCross,
    KeyBlocking,
    SortedNeighborhood,
    TokenBlocking,
    pair_completeness,
    reduction_ratio,
    unique_pairs,
)
from repro.core.mapping import Mapping
from repro.model.source import LogicalSource, ObjectType, PhysicalSource


@pytest.fixture
def sources():
    domain = LogicalSource(PhysicalSource("L"), ObjectType("Publication"))
    range_ = LogicalSource(PhysicalSource("R"), ObjectType("Publication"))
    titles = [
        "Adaptive Query Processing for Streams",
        "Schema Matching with Cupid",
        "Data Cleaning in Warehouses",
        "Streaming Joins over Windows",
        "Top-k Retrieval",
    ]
    for index, title in enumerate(titles):
        domain.add_record(f"a{index}", title=title)
        range_.add_record(f"b{index}", title=title)
    return domain, range_


@pytest.fixture
def gold(sources):
    domain, range_ = sources
    return Mapping.from_correspondences(
        domain.name, range_.name,
        [(f"a{i}", f"b{i}", 1.0) for i in range(5)])


def collect(blocking, domain, range_):
    return set(blocking.candidates(domain, range_,
                                   domain_attribute="title",
                                   range_attribute="title"))


class TestFullCross:
    def test_cross_product_size(self, sources):
        domain, range_ = sources
        assert len(collect(FullCross(), domain, range_)) == 25

    def test_self_match_unordered(self, sources):
        domain, _ = sources
        pairs = collect(FullCross(), domain, domain)
        assert len(pairs) == 10  # 5 choose 2
        assert all(a != b for a, b in pairs)


class TestTokenBlocking:
    def test_full_completeness_on_identical_titles(self, sources, gold):
        domain, range_ = sources
        pairs = collect(TokenBlocking(max_df=1.0), domain, range_)
        assert pair_completeness(pairs, gold) == 1.0

    def test_reduces_pairs(self, sources):
        domain, range_ = sources
        pairs = collect(TokenBlocking(max_df=1.0), domain, range_)
        assert len(pairs) < 25

    def test_stopword_suppression(self):
        domain = LogicalSource(PhysicalSource("L"), ObjectType("P"))
        range_ = LogicalSource(PhysicalSource("R"), ObjectType("P"))
        for index in range(20):
            domain.add_record(f"a{index}", title=f"the common word {index}xx")
            range_.add_record(f"b{index}", title=f"the common word {index}xx")
        pairs = collect(TokenBlocking(max_df=0.2), domain, range_)
        # "common"/"word" exceed the df cutoff; only the rare {i}xx
        # tokens block, giving the 20 true pairs only
        assert len(pairs) == 20

    def test_self_matching_dedups(self, sources):
        domain, _ = sources
        pairs = collect(TokenBlocking(max_df=1.0), domain, domain)
        assert all(a < b for a, b in pairs)

    def test_df_cutoff_consistent_across_matching_modes(self):
        """Regression: the cutoff test double-counted the shared posting
        list on self-matching runs, so the same ``max_df`` meant a 2x
        looser effective cutoff for two-source matching.  A token in
        40% of all values must be suppressed at ``max_df=0.3`` in both
        modes."""
        # two-source: "shared" occurs in 4 of 10 values (40% > 30%)
        domain = LogicalSource(PhysicalSource("L"), ObjectType("P"))
        range_ = LogicalSource(PhysicalSource("R"), ObjectType("P"))
        for index in range(2):
            domain.add_record(f"a{index}", title=f"shared common{index}x")
            range_.add_record(f"b{index}", title=f"shared common{index}x")
        for index in range(2, 5):
            domain.add_record(f"a{index}", title=f"filler{index}y")
            range_.add_record(f"b{index}", title=f"filler{index}y")
        pairs = collect(TokenBlocking(max_df=0.3), domain, range_)
        # "shared" is a stop word; only the aligned rare tokens block
        assert pairs == {(f"a{i}", f"b{i}") for i in range(5)}

        # self-matching: "shared" occurs in 4 of 10 values as well
        source = LogicalSource(PhysicalSource("S"), ObjectType("P"))
        for index in range(4):
            source.add_record(f"s{index}", title=f"shared only{index}z")
        for index in range(4, 10):
            source.add_record(f"s{index}", title=f"lone{index}q")
        assert collect(TokenBlocking(max_df=0.3), source, source) == set()

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBlocking(min_token_length=0)
        with pytest.raises(ValueError):
            TokenBlocking(max_df=0.0)
        with pytest.raises(ValueError):
            TokenBlocking(max_block_size=0)


class TestKeyBlocking:
    def test_first_token_key(self, sources):
        domain, range_ = sources
        pairs = collect(KeyBlocking(), domain, range_)
        assert ("a0", "b0") in pairs
        # different first tokens are never candidates
        assert ("a0", "b1") not in pairs

    def test_custom_key(self, sources):
        domain, range_ = sources
        def length_key(value):
            return str(len(str(value)) // 10)

        pairs = collect(KeyBlocking(key=length_key), domain, range_)
        assert pairs  # produces some candidates deterministically

    def test_none_key_skips(self):
        domain = LogicalSource(PhysicalSource("L"), ObjectType("P"))
        domain.add_record("a", title=None)
        range_ = LogicalSource(PhysicalSource("R"), ObjectType("P"))
        range_.add_record("b", title="x")
        assert collect(KeyBlocking(), domain, range_) == set()

    def test_block_size_guard(self):
        domain = LogicalSource(PhysicalSource("L"), ObjectType("P"))
        range_ = LogicalSource(PhysicalSource("R"), ObjectType("P"))
        for index in range(30):
            domain.add_record(f"a{index}", title="same first")
            range_.add_record(f"b{index}", title="same first")
        pairs = collect(KeyBlocking(max_block_size=5), domain, range_)
        assert pairs == set()


class TestSortedNeighborhood:
    def test_adjacent_strings_are_candidates(self, sources, gold):
        domain, range_ = sources
        pairs = collect(SortedNeighborhood(window=3), domain, range_)
        # identical strings sort adjacently -> all gold pairs survive
        assert pair_completeness(pairs, gold) == 1.0

    def test_window_bounds_pair_count(self, sources):
        domain, range_ = sources
        small = collect(SortedNeighborhood(window=2), domain, range_)
        large = collect(SortedNeighborhood(window=6), domain, range_)
        assert len(small) <= len(large)

    def test_orientation_normalized(self, sources):
        domain, range_ = sources
        pairs = collect(SortedNeighborhood(window=4), domain, range_)
        assert all(a.startswith("a") and b.startswith("b")
                   for a, b in pairs)

    def test_validation(self):
        with pytest.raises(ValueError):
            SortedNeighborhood(window=1)


class TestCanopy:
    def test_identical_titles_share_canopy(self, sources, gold):
        domain, range_ = sources
        pairs = collect(CanopyBlocking(loose=0.2, tight=0.8, seed=1),
                        domain, range_)
        assert pair_completeness(pairs, gold) == 1.0

    def test_deterministic_given_seed(self, sources):
        domain, range_ = sources
        first = collect(CanopyBlocking(seed=5), domain, range_)
        second = collect(CanopyBlocking(seed=5), domain, range_)
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError):
            CanopyBlocking(loose=0.9, tight=0.5)

    def test_tight_removed_records_join_later_canopies(self):
        """Regression: tight removal must only stop a record from
        *seeding* future canopies — McCallum canopies overlap, so the
        record stays assignable.  Here ``s1`` is tightly bound to
        ``s0``'s canopy but loosely similar to ``s2``; dropping it
        from ``s2``'s canopy silently loses the (s1, s2) candidate."""
        source = LogicalSource(PhysicalSource("S"), ObjectType("P"))
        source.add_record("s0", title="alpha beta gamma")
        # jaccard(s0, s1) = 3/4 >= tight: s1 never seeds again
        source.add_record("s1", title="alpha beta gamma delta")
        # jaccard(s1, s2) = 1/6 >= loose, jaccard(s0, s2) = 0
        source.add_record("s2", title="delta epsilon zeta")
        # shuffle seed 5 orders the seeds s0, s1, s2: s0's canopy
        # removes s1, then s2 opens the canopy that must reclaim it
        blocking = CanopyBlocking(loose=0.15, tight=0.6, seed=5)
        pairs = collect(blocking, source, source)
        assert ("s0", "s1") in pairs
        assert ("s1", "s2") in pairs


class TestMetrics:
    def test_reduction_ratio(self):
        assert reduction_ratio(25, 5, 5) == 0.0
        assert reduction_ratio(5, 5, 5) == pytest.approx(0.8)
        assert reduction_ratio(0, 0, 5) == 0.0

    def test_reduction_ratio_self_matching(self):
        """Regression: the self-matching comparison space is the
        n*(n-1)/2 unordered pairs, not the n*n cross product — the
        cross-product denominator understated blocking savings."""
        # 5 records self-matched: 10 possible pairs, none avoided
        assert reduction_ratio(10, 5, 5, self_match=True) == 0.0
        # half the pairs avoided reads 0.5, not the cross product's 0.8
        assert reduction_ratio(5, 5, 5, self_match=True) == pytest.approx(0.5)
        # degenerate single-record source has nothing to avoid
        assert reduction_ratio(0, 1, 1, self_match=True) == 0.0

    def test_pair_completeness_empty_gold(self):
        assert pair_completeness([], Mapping("A", "B")) == 1.0

    def test_unique_pairs(self):
        pairs = list(unique_pairs([("a", "b"), ("a", "b"), ("c", "d")]))
        assert pairs == [("a", "b"), ("c", "d")]

    def test_count_distinct(self, sources):
        domain, range_ = sources
        blocking = TokenBlocking(max_df=1.0)
        count = blocking.count(domain, range_,
                               domain_attribute="title",
                               range_attribute="title")
        assert count == len(collect(blocking, domain, range_))
