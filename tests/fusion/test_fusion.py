"""Tests for clustering, attribute fusion and citation analysis."""

import pytest

from repro.core.mapping import Mapping, MappingKind
from repro.fusion.aggregate import FusionPolicy, fuse_clusters
from repro.fusion.citation import citation_analysis
from repro.fusion.cluster import clusters_from_mappings
from repro.model.source import LogicalSource, ObjectType, PhysicalSource


def make_source(name, records):
    source = LogicalSource(PhysicalSource(name), ObjectType("Publication"))
    for record_id, attributes in records.items():
        source.add_record(record_id, **attributes)
    return source


@pytest.fixture
def sources():
    dblp = make_source("DBLP", {
        "d1": {"title": "Adaptive Query Processing", "year": 2001},
        "d2": {"title": "Schema Matching", "year": 2002},
        "d3": {"title": "Lonely Paper", "year": 1999},
    })
    acm = make_source("ACM", {
        "a1": {"title": "Adaptive Query Processing", "citations": 40},
        "a2": {"title": "Schema Matching", "citations": 120},
    })
    gs = make_source("GS", {
        "g1": {"title": "adaptive query processing", "citations": 55},
        "g1b": {"title": "Adaptive Query Proc.", "citations": 12},
    })
    return dblp, acm, gs


@pytest.fixture
def mappings(sources):
    dblp, acm, gs = sources
    dblp_acm = Mapping.from_correspondences(
        dblp.name, acm.name, [("d1", "a1", 1.0), ("d2", "a2", 0.9)])
    dblp_gs = Mapping.from_correspondences(
        dblp.name, gs.name, [("d1", "g1", 1.0), ("d1", "g1b", 0.8)])
    return dblp_acm, dblp_gs


class TestClustering:
    def test_transitive_clusters(self, mappings):
        clusters = clusters_from_mappings(mappings)
        biggest = clusters[0]
        assert biggest.ids("DBLP.Publication") == ["d1"]
        assert biggest.ids("ACM.Publication") == ["a1"]
        assert set(biggest.ids("GS.Publication")) == {"g1", "g1b"}

    def test_min_similarity_cuts_edges(self, mappings):
        clusters = clusters_from_mappings(mappings, min_similarity=0.95)
        biggest = clusters[0]
        assert "g1b" not in biggest.ids("GS.Publication")

    def test_singletons_seeded(self, sources, mappings):
        dblp, _, _ = sources
        clusters = clusters_from_mappings(
            mappings, singletons={dblp.name: dblp.ids()})
        all_dblp = {pub_id for cluster in clusters
                    for pub_id in cluster.ids(dblp.name)}
        assert "d3" in all_dblp

    def test_association_mapping_rejected(self):
        association = Mapping("A", "B", kind=MappingKind.ASSOCIATION)
        with pytest.raises(ValueError):
            clusters_from_mappings([association])

    def test_clusters_sorted_by_size(self, mappings):
        clusters = clusters_from_mappings(mappings)
        sizes = [cluster.size() for cluster in clusters]
        assert sizes == sorted(sizes, reverse=True)


class TestFusion:
    def test_prefer_source(self, sources, mappings):
        dblp, acm, gs = sources
        clusters = clusters_from_mappings(mappings)
        policy = FusionPolicy(
            strategies={"title": "prefer_source"},
            source_priority=[dblp.name, acm.name, gs.name],
        )
        fused = fuse_clusters(clusters, {
            dblp.name: dblp, acm.name: acm, gs.name: gs}, policy)
        adaptive = next(obj for obj in fused
                        if "d1" in obj.cluster.ids(dblp.name))
        assert adaptive.get("title") == "Adaptive Query Processing"

    def test_max_citations(self, sources, mappings):
        dblp, acm, gs = sources
        clusters = clusters_from_mappings(mappings)
        policy = FusionPolicy(strategies={"citations": "max"})
        fused = fuse_clusters(clusters, {
            dblp.name: dblp, acm.name: acm, gs.name: gs}, policy)
        adaptive = next(obj for obj in fused
                        if "d1" in obj.cluster.ids(dblp.name))
        assert adaptive.get("citations") == 55

    def test_sum_strategy(self, sources, mappings):
        dblp, acm, gs = sources
        clusters = clusters_from_mappings(mappings)
        policy = FusionPolicy(strategies={"citations": "sum"})
        fused = fuse_clusters(clusters, {
            dblp.name: dblp, acm.name: acm, gs.name: gs}, policy)
        adaptive = next(obj for obj in fused
                        if "d1" in obj.cluster.ids(dblp.name))
        assert adaptive.get("citations") == 40 + 55 + 12

    def test_vote_strategy(self, sources, mappings):
        dblp, acm, gs = sources
        clusters = clusters_from_mappings(mappings)
        policy = FusionPolicy(strategies={"title": "vote"})
        fused = fuse_clusters(clusters, {
            dblp.name: dblp, acm.name: acm, gs.name: gs}, policy)
        assert all(obj.get("title") for obj in fused)

    def test_longest_strategy(self, sources, mappings):
        dblp, acm, gs = sources
        clusters = clusters_from_mappings(mappings)
        policy = FusionPolicy(strategies={"title": "longest"})
        fused = fuse_clusters(clusters, {
            dblp.name: dblp, acm.name: acm, gs.name: gs}, policy)
        adaptive = next(obj for obj in fused
                        if "d1" in obj.cluster.ids(dblp.name))
        assert adaptive.get("title") in (
            "Adaptive Query Processing", "adaptive query processing")

    def test_unknown_strategy_rejected(self, sources, mappings):
        dblp, acm, gs = sources
        clusters = clusters_from_mappings(mappings)
        policy = FusionPolicy(default_strategy="median")
        with pytest.raises(ValueError):
            fuse_clusters(clusters, {dblp.name: dblp}, policy)


class TestCitationAnalysis:
    def test_on_generated_dataset(self, dataset, workbench):
        same = [workbench.pub_same("DBLP", "ACM"),
                workbench.pub_same("DBLP", "GS")]
        report = citation_analysis(dataset.dblp, [dataset.acm, dataset.gs],
                                   same)
        assert len(report.per_publication) == len(dataset.dblp.publications)
        assert report.per_venue
        assert report.per_author

    def test_fused_counts_bounded_by_truth(self, dataset, workbench):
        same = [workbench.pub_same("DBLP", "ACM")]
        report = citation_analysis(dataset.dblp, [dataset.acm], same)
        max_true = max(pub.citations
                       for pub in dataset.world.publications.values())
        assert max(report.per_publication.values()) <= max_true

    def test_top_rankings_consistent(self, dataset, workbench):
        same = [workbench.pub_same("DBLP", "ACM")]
        report = citation_analysis(dataset.dblp, [dataset.acm], same)
        top = report.top_publications(5)
        values = [count for _, count in top]
        assert values == sorted(values, reverse=True)
        assert len(report.top_venues(3)) <= 3
        assert len(report.top_authors(3)) <= 3


class TestClusterDeterminism:
    """Equal-size clusters must order by union-find root, not by the
    insertion history of the mappings that produced them (DET regression
    from the static-analysis pass)."""

    @staticmethod
    def _mappings(pairs):
        return [Mapping.from_correspondences(
            "D.P", "A.P", [(domain_id, range_id, 1.0)])
            for domain_id, range_id in pairs]

    def test_equal_size_cluster_order_is_insertion_independent(self):
        pairs = [("d1", "a1"), ("d2", "a2"), ("d3", "a3")]
        forward = clusters_from_mappings(self._mappings(pairs))
        backward = clusters_from_mappings(self._mappings(pairs[::-1]))
        assert [cluster.ids("D.P") for cluster in forward] == \
            [cluster.ids("D.P") for cluster in backward]
        assert [cluster.ids("D.P") for cluster in forward] == \
            [["d1"], ["d2"], ["d3"]]

    def test_larger_clusters_still_sort_first(self):
        pairs = [("d9", "a9"), ("d1", "a1")]
        mappings = self._mappings(pairs)
        mappings.append(Mapping.from_correspondences(
            "D.P", "A.P", [("d9", "a9b", 1.0)]))
        clusters = clusters_from_mappings(mappings)
        assert clusters[0].ids("D.P") == ["d9"]
        assert clusters[0].size() == 3
