"""End-to-end integration: full match pipelines on the tiny dataset."""


from repro import (
    AttributeMatcher,
    BestNSelection,
    MappingRepository,
    MatchContext,
    MatchWorkflow,
    ThresholdSelection,
    neighborhood_match,
)
from repro.blocking import TokenBlocking
from repro.eval import evaluate
from repro.fusion import clusters_from_mappings
from repro.script import ScriptEngine


class TestFullWorkflowApi:
    def test_workflow_reproduces_direct_pipeline(self, dataset):
        """The workflow engine and hand-written operator calls agree."""
        context = MatchContext(smm=dataset.smm,
                               repository=MappingRepository())
        workflow = (
            MatchWorkflow("dblp-acm-pubs")
            .add_matcher(
                "titles",
                AttributeMatcher("title", similarity="trigram",
                                 threshold=0.5,
                                 blocking=TokenBlocking()),
                "DBLP.Publication", "ACM.Publication")
            .add_select("final", "titles", ThresholdSelection(0.8))
            .add_store("final", "pub-same-dblp-acm")
        )
        result = workflow.run(context)

        direct = ThresholdSelection(0.8).apply(
            AttributeMatcher("title", similarity="trigram", threshold=0.5,
                             blocking=TokenBlocking()).match(
                dataset.dblp.publications, dataset.acm.publications))
        assert result.to_rows() == direct.to_rows()
        assert context.repository.contains("pub-same-dblp-acm")

    def test_stored_mapping_reusable_across_workflows(self, dataset):
        repository = MappingRepository()
        context = MatchContext(smm=dataset.smm, repository=repository)
        (MatchWorkflow("producer")
         .add_matcher("titles",
                      AttributeMatcher("title", threshold=0.8,
                                       blocking=TokenBlocking()),
                      "DBLP.Publication", "ACM.Publication")
         .add_store("titles", "shared")).run(context)

        consumer_context = MatchContext(smm=dataset.smm,
                                        repository=repository)
        consumer = (MatchWorkflow("consumer")
                    .add_select("refined", "shared",
                                BestNSelection(1, side="both")))
        refined = consumer.run(consumer_context)
        assert len(refined) > 0

    def test_workflow_quality_against_gold(self, dataset, workbench):
        gold = dataset.gold.publications("DBLP.Publication",
                                         "ACM.Publication")
        mapping = workbench.pub_same("DBLP", "ACM")
        quality = evaluate(mapping, gold)
        assert quality.f1 > 0.75


class TestScriptParity:
    def test_script_and_api_agree_on_dedup(self, dataset):
        engine = ScriptEngine(smm=dataset.smm)
        script_result = engine.run(
            "$CoAuthSim = nhMatch(DBLP.CoAuthor, DBLP.AuthorAuthor, "
            "DBLP.CoAuthor)\n"
            "$Result = select($CoAuthSim, \"[domain.id]<>[range.id]\")"
        )
        from repro import Mapping
        identity = Mapping.identity("DBLP.Author",
                                    dataset.dblp.authors.ids())
        api_result = neighborhood_match(
            dataset.dblp.co_author, identity, dataset.dblp.co_author
        ).without_identity()
        assert script_result.to_rows() == api_result.to_rows()

    def test_script_merge_pipeline(self, dataset):
        engine = ScriptEngine(smm=dataset.smm)
        result = engine.run(
            '$T = attrMatch(DBLP.Publication, ACM.Publication, Trigram, '
            '0.8, "[title]", "[title]")\n'
            '$Y = attrMatch(DBLP.Publication, ACM.Publication, Exact, '
            '1.0, "[year]", "[year]")\n'
            "$M = merge($T, $Y, Min0)\n"
            "$Final = select($M, 0.5)"
        )
        gold = dataset.gold.publications("DBLP.Publication",
                                         "ACM.Publication")
        quality = evaluate(result, gold)
        assert quality.precision > 0.7


class TestDuplicateDetection:
    def test_injected_duplicates_rank_high(self, dataset):
        from repro import Mapping, merge
        identity = Mapping.identity("DBLP.Author",
                                    dataset.dblp.authors.ids())
        co_sim = neighborhood_match(dataset.dblp.co_author, identity,
                                    dataset.dblp.co_author)
        name_sim = AttributeMatcher(
            "name", similarity="trigram", threshold=0.5,
            blocking=TokenBlocking(max_df=0.3)).match(
                dataset.dblp.authors, dataset.dblp.authors)
        merged = merge([co_sim, name_sim], "avg0").without_identity()
        gold = dataset.gold.get("author-duplicates", "DBLP.Author",
                                "DBLP.Author")
        ranked = sorted(merged, key=lambda c: -c.similarity)
        top_pairs = {tuple(sorted((c.domain, c.range)))
                     for c in ranked[:4 * len(gold.pairs())]}
        gold_pairs = {tuple(sorted(p)) for p in gold.pairs()}
        recovered = len(top_pairs & gold_pairs) / len(gold_pairs)
        assert recovered >= 0.4


class TestCrossSourceFusion:
    def test_entity_clusters_mostly_pure(self, dataset, workbench):
        same = [workbench.pub_same("DBLP", "ACM"),
                workbench.pub_same("DBLP", "GS")]
        clusters = clusters_from_mappings(same)
        world = dataset.world
        pure = 0
        checked = 0
        for cluster in clusters[:50]:
            true_ids = set()
            for source, bundle in (("DBLP.Publication", dataset.dblp),
                                   ("ACM.Publication", dataset.acm),
                                   ("GS.Publication", dataset.gs)):
                for instance_id in cluster.ids(source):
                    true_ids.add(bundle.true_pub[instance_id])
            checked += 1
            # allow conf/journal versions of the same work in one cluster
            titles = {world.publications[t].title for t in true_ids}
            if len(titles) == 1:
                pure += 1
        assert pure / checked > 0.85
