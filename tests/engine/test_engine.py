"""Tests for the parallel batch match engine (``repro.engine``).

The load-bearing guarantee is *execution equivalence*: chunked,
cached, parallel scoring must produce byte-identical mappings to
serial one-pair-at-a-time evaluation, for every matcher flavor and
blocking strategy.  The property test drives that over randomized
sources; the seed-scenario tests pin it on the deterministic datagen
world the rest of the suite uses.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import AttributeMatcher, AttributePair, MultiAttributeMatcher
from repro.blocking import (
    CanopyBlocking,
    FullCross,
    KeyBlocking,
    SortedNeighborhood,
    TokenBlocking,
)
from repro.core.workflow import MatchContext, MatchWorkflow
from repro.engine import (
    AttributeSpec,
    BatchMatchEngine,
    ChunkScorer,
    EngineConfig,
    MatchRequest,
    iter_chunks,
    vectorized,
)
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.sim.base import CachedSimilarity, SimilarityFunction
from repro.sim.ngram import JaccardNGram, NGramSimilarity, TrigramSimilarity
from repro.sim.tfidf import SoftTfIdfSimilarity, TfIdfCosineSimilarity

PARALLEL = BatchMatchEngine(EngineConfig(workers=4, chunk_size=64))
SERIAL = BatchMatchEngine(EngineConfig(workers=1, chunk_size=64))


def _source(name: str, titles, years=None) -> LogicalSource:
    source = LogicalSource(PhysicalSource(name), ObjectType("Publication"))
    for index, title in enumerate(titles):
        year = None if years is None else years[index % len(years)]
        source.add_record(f"{name.lower()}{index}", title=title, year=year)
    return source


# ----------------------------------------------------------------------
# chunked streaming
# ----------------------------------------------------------------------

class TestIterChunks:
    def test_partitions_without_loss_or_overlap(self):
        items = list(range(25))
        chunks = list(iter_chunks(items, 8))
        assert [len(c) for c in chunks] == [8, 8, 8, 1]
        assert [x for chunk in chunks for x in chunk] == items

    def test_exact_multiple_has_no_empty_tail(self):
        assert [len(c) for c in iter_chunks(range(16), 8)] == [8, 8]

    def test_empty_iterable_yields_nothing(self):
        assert list(iter_chunks([], 4)) == []

    def test_rejects_non_positive_chunk_size(self):
        with pytest.raises(ValueError):
            next(iter_chunks([1], 0))

    def test_streams_lazily(self):
        pulled = []

        def generator():
            for i in range(100):
                pulled.append(i)
                yield i

        chunks = iter_chunks(generator(), 10)
        next(chunks)
        # only the first chunk (plus nothing beyond it) was pulled
        assert len(pulled) == 10

    @pytest.mark.parametrize("blocking", [
        FullCross(),
        KeyBlocking(),
        TokenBlocking(max_df=1.0),
        SortedNeighborhood(window=3),
        CanopyBlocking(loose=0.1, tight=0.5),
    ], ids=lambda b: type(b).__name__)
    def test_chunked_stream_covers_each_blocking_strategy(self, blocking):
        domain = _source("L", [f"alpha beta {i}xx" for i in range(12)])
        range_ = _source("R", [f"alpha beta {i}xx" for i in range(12)])
        full = list(blocking.candidates(domain, range_,
                                        domain_attribute="title",
                                        range_attribute="title"))
        chunks = list(iter_chunks(
            blocking.candidates(domain, range_,
                                domain_attribute="title",
                                range_attribute="title"), 7))
        assert all(len(chunk) <= 7 for chunk in chunks)
        assert [pair for chunk in chunks for pair in chunk] == full


# ----------------------------------------------------------------------
# serial == parallel (property + seed scenarios)
# ----------------------------------------------------------------------

_titles = st.lists(
    st.text(alphabet="abcdefg ", min_size=0, max_size=12),
    min_size=0, max_size=12)


class TestSerialParallelEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(domain_titles=_titles, range_titles=_titles,
           threshold=st.sampled_from([0.0, 0.3, 0.7]))
    def test_property_identical_mappings(self, domain_titles, range_titles,
                                         threshold):
        domain = _source("L", domain_titles)
        range_ = _source("R", range_titles)
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=threshold, engine=SERIAL)
        parallel = AttributeMatcher("title", similarity="trigram",
                                    threshold=threshold, engine=PARALLEL)
        assert serial.match(domain, range_).to_rows() == \
            parallel.match(domain, range_).to_rows()

    def test_seed_scenario_single_attribute(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=0.4, engine=SERIAL)
        parallel = AttributeMatcher("title", similarity="trigram",
                                    threshold=0.4, engine=PARALLEL)
        rows = serial.match(dblp, acm).to_rows()
        assert rows == parallel.match(dblp, acm).to_rows()
        assert rows  # the scenario is non-trivial

    def test_seed_scenario_multi_attribute(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        pairs = [AttributePair("title", similarity="tfidf"),
                 AttributePair("year", similarity="year", weight=0.5)]
        serial = MultiAttributeMatcher(
            [AttributePair("title", similarity="tfidf"),
             AttributePair("year", similarity="year", weight=0.5)],
            combine="weighted", threshold=0.3, engine=SERIAL)
        parallel = MultiAttributeMatcher(pairs, combine="weighted",
                                         threshold=0.3, engine=PARALLEL)
        assert serial.match(dblp, acm).to_rows() == \
            parallel.match(dblp, acm).to_rows()

    def test_seed_scenario_self_mapping(self, dataset):
        gs = dataset.gs.publications
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=0.7, engine=SERIAL)
        parallel = AttributeMatcher("title", similarity="trigram",
                                    threshold=0.7, engine=PARALLEL)
        rows = serial.match(gs, gs).to_rows()
        assert rows == parallel.match(gs, gs).to_rows()
        # self-mappings stay symmetric through the parallel merge
        mapping = parallel.match(gs, gs)
        for domain_id, range_id, similarity in mapping.to_rows():
            assert mapping.get(range_id, domain_id) == similarity

    def test_seed_scenario_with_blocking(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        blocking = TokenBlocking(max_df=0.5)
        serial = AttributeMatcher("title", similarity="trigram", threshold=0.4,
                                  blocking=blocking, engine=SERIAL)
        parallel = AttributeMatcher("title", similarity="trigram",
                                    threshold=0.4, blocking=blocking,
                                    engine=PARALLEL)
        assert serial.match(dblp, acm).to_rows() == \
            parallel.match(dblp, acm).to_rows()

    def test_explicit_candidate_list_respected(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        candidates = [(a, b) for a in dblp.ids()[:20] for b in acm.ids()[:20]]
        matcher = AttributeMatcher("title", similarity="trigram",
                                   engine=PARALLEL)
        mapping = matcher.match(dblp, acm, candidates=candidates)
        allowed = set(candidates)
        assert all((a, b) in allowed for a, b, _ in mapping.to_rows())


# ----------------------------------------------------------------------
# engine internals
# ----------------------------------------------------------------------

class TestEngineConfig:
    def test_defaults_are_serial(self):
        config = EngineConfig()
        assert config.workers == 1
        assert config.chunk_size == 2048

    @pytest.mark.parametrize("kwargs", [
        {"workers": 0}, {"chunk_size": 0}, {"max_inflight": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_engine_kwarg_overrides(self):
        engine = BatchMatchEngine(workers=3, chunk_size=17)
        assert engine.config.workers == 3
        assert engine.config.chunk_size == 17

    def test_kwarg_overrides_preserve_other_config_fields(self):
        base = EngineConfig(dedup_limit=12345, max_inflight=7)
        engine = BatchMatchEngine(base, workers=4)
        assert engine.config.workers == 4
        assert engine.config.dedup_limit == 12345
        assert engine.config.max_inflight == 7


class TestMatchRequest:
    def test_requires_specs(self, dataset):
        dblp = dataset.dblp.publications
        with pytest.raises(ValueError):
            MatchRequest(domain=dblp, range=dblp, specs=[])

    def test_multi_spec_requires_combiner(self, dataset):
        dblp = dataset.dblp.publications
        specs = [AttributeSpec("title", "title", TrigramSimilarity()),
                 AttributeSpec("year", "year", TrigramSimilarity())]
        with pytest.raises(ValueError):
            MatchRequest(domain=dblp, range=dblp, specs=specs)


class TestChunkScorerCaching:
    def test_duplicate_value_pairs_score_once(self):
        class CountingSim(SimilarityFunction):
            name = "counting"
            calls = 0

            def _score(self, a: str, b: str) -> float:
                type(self).calls += 1
                return 1.0 if a == b else 0.5

        domain = _source("L", ["same title"] * 6)
        range_ = _source("R", ["same title"] * 6)
        sim = CountingSim()
        request = MatchRequest(
            domain=domain, range=range_,
            specs=[AttributeSpec("title", "title", sim)])
        scorer = ChunkScorer(request)
        pairs = [(a, b) for a in domain.ids() for b in range_.ids()]
        triples = scorer.score_chunk(pairs)
        assert len(triples) == 36
        assert CountingSim.calls == 1  # 36 pairs, one distinct value pair


class TestChunkScorerCacheLimit:
    def test_tiny_cache_limit_never_loses_scores(self, dataset):
        """Regression: a memo reset must not orphan in-flight records."""
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        reference = AttributeMatcher("title", similarity="trigram",
                                     threshold=0.4, engine=SERIAL)
        expected = reference.match(dblp, acm).to_rows()

        request = MatchRequest(
            domain=dblp, range=acm,
            specs=[AttributeSpec("title", "title", TrigramSimilarity())],
            threshold=0.4)
        scorer = ChunkScorer(request, cache_limit=16)
        request.specs[0].similarity.prepare(
            dblp.attribute_values("title") + acm.attribute_values("title"))
        triples = []
        for chunk in iter_chunks(
                ((a, b) for a in dblp.ids() for b in acm.ids()), 64):
            triples.extend(scorer.score_chunk(chunk))
        assert sorted(triples) == expected


class TestWorkflowEngineInjection:
    def test_context_engine_reaches_matcher_step(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        matcher = AttributeMatcher("title", similarity="trigram",
                                   threshold=0.4)
        workflow = MatchWorkflow("wired").add_matcher(
            "out", matcher, dblp.name, acm.name)

        serial_context = MatchContext(
            sources={dblp.name: dblp, acm.name: acm})
        parallel_context = MatchContext(
            sources={dblp.name: dblp, acm.name: acm}, engine=PARALLEL)
        serial_rows = workflow.run(serial_context).to_rows()
        parallel_rows = workflow.run(parallel_context).to_rows()
        assert serial_rows == parallel_rows
        # the injection is per-step: the matcher's own engine is restored
        assert matcher.engine is None


# ----------------------------------------------------------------------
# vectorized (bit-kernel) path
# ----------------------------------------------------------------------

class TestVectorizedKernel:
    @pytest.mark.skipif(not vectorized.numpy_available(),
                        reason="numpy bit kernel unavailable")
    @pytest.mark.parametrize("make_sim", [
        TrigramSimilarity,
        lambda: JaccardNGram(2),
        lambda: NGramSimilarity(3, method="overlap"),
    ], ids=["dice", "jaccard", "overlap"])
    def test_bit_identical_to_python_path(self, dataset, monkeypatch,
                                          make_sim):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        engine = BatchMatchEngine(EngineConfig(workers=1, chunk_size=128))
        fast = AttributeMatcher("title", similarity=make_sim(),
                                threshold=0.0, engine=engine)
        fast_rows = fast.match(dblp, acm).to_rows()

        monkeypatch.setattr(vectorized, "build_kernel",
                            lambda *args, **kwargs: None)
        slow = AttributeMatcher("title", similarity=make_sim(),
                                threshold=0.0, engine=engine)
        assert slow.match(dblp, acm).to_rows() == fast_rows

    @pytest.mark.skipif(not vectorized.numpy_available(),
                        reason="numpy bit kernel unavailable")
    def test_parallel_indexed_path_identical(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=0.3, engine=SERIAL)
        parallel = AttributeMatcher("title", similarity="trigram",
                                    threshold=0.3, engine=PARALLEL)
        assert serial.match(dblp, acm).to_rows() == \
            parallel.match(dblp, acm).to_rows()

    def test_subclass_with_custom_score_is_not_eligible(self, dataset):
        class Tweaked(TrigramSimilarity):
            def _score(self, a: str, b: str) -> float:
                return min(1.0, super()._score(a, b) * 1.1)

        dblp = dataset.dblp.publications
        kernel = vectorized.build_kernel(Tweaked(), dblp, dblp,
                                         "title", "title")
        assert kernel is None

    def test_explicit_candidates_skip_kernel_build(self, dataset,
                                                   monkeypatch):
        """A tiny candidate list must not pay for full source matrices."""
        dblp, acm = dataset.dblp.publications, dataset.acm.publications

        def exploding_build(*args, **kwargs):
            raise AssertionError("kernel built for an explicit list")

        monkeypatch.setattr(vectorized, "build_kernel", exploding_build)
        matcher = AttributeMatcher("title", similarity="trigram",
                                   engine=SERIAL)
        candidates = [(dblp.ids()[0], acm.ids()[0])]
        mapping = matcher.match(dblp, acm, candidates=candidates)
        assert len(mapping) <= 1

    def test_missing_values_score_like_python_path(self, monkeypatch):
        domain = _source("L", ["alpha beta", None, "gamma delta"])
        range_ = _source("R", ["alpha beta", "gamma delta", None])
        engine = BatchMatchEngine(EngineConfig(workers=1, chunk_size=2))
        fast = AttributeMatcher("title", similarity="trigram",
                                threshold=0.0, engine=engine)
        fast_rows = fast.match(domain, range_).to_rows()
        monkeypatch.setattr(vectorized, "build_kernel",
                            lambda *args, **kwargs: None)
        slow = AttributeMatcher("title", similarity="trigram",
                                threshold=0.0, engine=engine)
        assert slow.match(domain, range_).to_rows() == fast_rows


# ----------------------------------------------------------------------
# score_batch kernels
# ----------------------------------------------------------------------

class TestScoreBatch:
    PAIRS = [("data cleaning", "data cleaning in warehouses"),
             ("schema matching", "cupid schema matching"),
             ("", "empty left"), ("x", "y"), ("abc", "abc")]

    @pytest.mark.parametrize("sim", [
        TrigramSimilarity(),
        TfIdfCosineSimilarity(),
        SoftTfIdfSimilarity(),
        CachedSimilarity(TrigramSimilarity()),
    ], ids=lambda s: s.name)
    def test_batch_matches_per_pair_scoring(self, sim):
        sim.prepare([a for a, _ in self.PAIRS] + [b for _, b in self.PAIRS])
        expected = [sim.similarity(a, b) for a, b in self.PAIRS]
        assert sim.score_batch(self.PAIRS) == expected

    def test_cached_similarity_batches_misses_once(self):
        cached = CachedSimilarity(TrigramSimilarity())
        pairs = [("aa", "bb"), ("bb", "aa"), ("aa", "bb")]
        scores = cached.score_batch(pairs)
        assert scores[0] == scores[1] == scores[2]
        # symmetric normalization: one distinct key, two batch hits
        assert cached.misses == 1
        assert cached.hits == 2

    def test_cached_similarity_bounded_cache_serves_evicted_hits(self):
        """Regression: a size-triggered reset mid-batch must not drop
        keys the batch already counted as hits."""
        cached = CachedSimilarity(TrigramSimilarity(), max_size=2)
        warm = cached.similarity("alpha", "beta")
        batch = [("alpha", "beta"), ("gamma", "delta"),
                 ("epsilon", "zeta"), ("eta", "theta")]
        scores = cached.score_batch(batch)
        assert scores[0] == warm
        assert len(cached._cache) <= 2  # the bound survives the batch

    def test_cached_similarity_oversized_batch_respects_bound(self):
        cached = CachedSimilarity(TrigramSimilarity(), max_size=3)
        pairs = [(f"left {i}", f"right {i}") for i in range(10)]
        expected = [cached.inner.similarity(a, b) for a, b in pairs]
        assert cached.score_batch(pairs) == expected
        assert len(cached._cache) <= 3


# ----------------------------------------------------------------------
# streaming pair counting
# ----------------------------------------------------------------------

class TestPairCounting:
    def test_full_cross_closed_form(self):
        domain = _source("L", [f"t{i}" for i in range(7)])
        range_ = _source("R", [f"t{i}" for i in range(5)])
        blocking = FullCross()
        assert blocking.count(domain, range_, domain_attribute="title",
                              range_attribute="title") == 35
        assert blocking.count(domain, domain, domain_attribute="title",
                              range_attribute="title") == 21  # 7 choose 2

    def test_full_cross_limit(self):
        domain = _source("L", [f"t{i}" for i in range(7)])
        blocking = FullCross()
        assert blocking.count(domain, domain, domain_attribute="title",
                              range_attribute="title", limit=4) == 4

    def test_generic_count_deduplicates_and_limits(self):
        domain = _source("L", ["alpha beta"] * 4)
        range_ = _source("R", ["alpha beta"] * 4)
        blocking = TokenBlocking(max_df=1.0)
        full = blocking.count(domain, range_, domain_attribute="title",
                              range_attribute="title")
        distinct = len(set(blocking.candidates(
            domain, range_, domain_attribute="title",
            range_attribute="title")))
        assert full == distinct == 16
        assert blocking.count(domain, range_, domain_attribute="title",
                              range_attribute="title", limit=5) == 5
