"""Tests for the parallel batch match engine (``repro.engine``).

The load-bearing guarantee is *execution equivalence*: chunked,
cached, parallel scoring must produce byte-identical mappings to
serial one-pair-at-a-time evaluation, for every matcher flavor and
blocking strategy.  The property test drives that over randomized
sources; the seed-scenario tests pin it on the deterministic datagen
world the rest of the suite uses.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AttributeMatcher, AttributePair, MultiAttributeMatcher
from repro.blocking import (
    CanopyBlocking,
    FullCross,
    KeyBlocking,
    SortedNeighborhood,
    TokenBlocking,
)
from repro.core.workflow import MatchContext, MatchWorkflow
from repro.engine import (
    AttributeSpec,
    BatchMatchEngine,
    ChunkScorer,
    EngineConfig,
    MatchRequest,
    iter_chunks,
    vectorized,
)
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.sim.base import CachedSimilarity, SimilarityFunction
from repro.sim.ngram import JaccardNGram, NGramSimilarity, TrigramSimilarity
from repro.sim.tfidf import SoftTfIdfSimilarity, TfIdfCosineSimilarity

PARALLEL = BatchMatchEngine(EngineConfig(workers=4, chunk_size=64))
SERIAL = BatchMatchEngine(EngineConfig(workers=1, chunk_size=64))
SHARDED = BatchMatchEngine(EngineConfig(workers=4, chunk_size=64,
                                        shard_blocking=True))
SHARDED_INLINE = BatchMatchEngine(EngineConfig(workers=1, chunk_size=64,
                                               shard_blocking=True,
                                               n_shards=5))


def _source(name: str, titles, years=None) -> LogicalSource:
    source = LogicalSource(PhysicalSource(name), ObjectType("Publication"))
    for index, title in enumerate(titles):
        year = None if years is None else years[index % len(years)]
        source.add_record(f"{name.lower()}{index}", title=title, year=year)
    return source


# ----------------------------------------------------------------------
# chunked streaming
# ----------------------------------------------------------------------

class TestIterChunks:
    def test_partitions_without_loss_or_overlap(self):
        items = list(range(25))
        chunks = list(iter_chunks(items, 8))
        assert [len(c) for c in chunks] == [8, 8, 8, 1]
        assert [x for chunk in chunks for x in chunk] == items

    def test_exact_multiple_has_no_empty_tail(self):
        assert [len(c) for c in iter_chunks(range(16), 8)] == [8, 8]

    def test_empty_iterable_yields_nothing(self):
        assert list(iter_chunks([], 4)) == []

    def test_rejects_non_positive_chunk_size(self):
        with pytest.raises(ValueError):
            next(iter_chunks([1], 0))

    def test_streams_lazily(self):
        pulled = []

        def generator():
            for i in range(100):
                pulled.append(i)
                yield i

        chunks = iter_chunks(generator(), 10)
        next(chunks)
        # only the first chunk (plus nothing beyond it) was pulled
        assert len(pulled) == 10

    @pytest.mark.parametrize("blocking", [
        FullCross(),
        KeyBlocking(),
        TokenBlocking(max_df=1.0),
        SortedNeighborhood(window=3),
        CanopyBlocking(loose=0.1, tight=0.5),
    ], ids=lambda b: type(b).__name__)
    def test_chunked_stream_covers_each_blocking_strategy(self, blocking):
        domain = _source("L", [f"alpha beta {i}xx" for i in range(12)])
        range_ = _source("R", [f"alpha beta {i}xx" for i in range(12)])
        full = list(blocking.candidates(domain, range_,
                                        domain_attribute="title",
                                        range_attribute="title"))
        chunks = list(iter_chunks(
            blocking.candidates(domain, range_,
                                domain_attribute="title",
                                range_attribute="title"), 7))
        assert all(len(chunk) <= 7 for chunk in chunks)
        assert [pair for chunk in chunks for pair in chunk] == full


# ----------------------------------------------------------------------
# serial == parallel (property + seed scenarios)
# ----------------------------------------------------------------------

_titles = st.lists(
    st.text(alphabet="abcdefg ", min_size=0, max_size=12),
    min_size=0, max_size=12)


class TestSerialParallelEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(domain_titles=_titles, range_titles=_titles,
           threshold=st.sampled_from([0.0, 0.3, 0.7]))
    def test_property_identical_mappings(self, domain_titles, range_titles,
                                         threshold):
        domain = _source("L", domain_titles)
        range_ = _source("R", range_titles)
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=threshold, engine=SERIAL)
        parallel = AttributeMatcher("title", similarity="trigram",
                                    threshold=threshold, engine=PARALLEL)
        assert serial.match(domain, range_).to_rows() == \
            parallel.match(domain, range_).to_rows()

    def test_seed_scenario_single_attribute(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=0.4, engine=SERIAL)
        parallel = AttributeMatcher("title", similarity="trigram",
                                    threshold=0.4, engine=PARALLEL)
        rows = serial.match(dblp, acm).to_rows()
        assert rows == parallel.match(dblp, acm).to_rows()
        assert rows  # the scenario is non-trivial

    def test_seed_scenario_multi_attribute(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        pairs = [AttributePair("title", similarity="tfidf"),
                 AttributePair("year", similarity="year", weight=0.5)]
        serial = MultiAttributeMatcher(
            [AttributePair("title", similarity="tfidf"),
             AttributePair("year", similarity="year", weight=0.5)],
            combine="weighted", threshold=0.3, engine=SERIAL)
        parallel = MultiAttributeMatcher(pairs, combine="weighted",
                                         threshold=0.3, engine=PARALLEL)
        assert serial.match(dblp, acm).to_rows() == \
            parallel.match(dblp, acm).to_rows()

    def test_seed_scenario_self_mapping(self, dataset):
        gs = dataset.gs.publications
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=0.7, engine=SERIAL)
        parallel = AttributeMatcher("title", similarity="trigram",
                                    threshold=0.7, engine=PARALLEL)
        rows = serial.match(gs, gs).to_rows()
        assert rows == parallel.match(gs, gs).to_rows()
        # self-mappings stay symmetric through the parallel merge
        mapping = parallel.match(gs, gs)
        for domain_id, range_id, similarity in mapping.to_rows():
            assert mapping.get(range_id, domain_id) == similarity

    def test_seed_scenario_with_blocking(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        blocking = TokenBlocking(max_df=0.5)
        serial = AttributeMatcher("title", similarity="trigram", threshold=0.4,
                                  blocking=blocking, engine=SERIAL)
        parallel = AttributeMatcher("title", similarity="trigram",
                                    threshold=0.4, blocking=blocking,
                                    engine=PARALLEL)
        assert serial.match(dblp, acm).to_rows() == \
            parallel.match(dblp, acm).to_rows()

    def test_explicit_candidate_list_respected(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        candidates = [(a, b) for a in dblp.ids()[:20] for b in acm.ids()[:20]]
        matcher = AttributeMatcher("title", similarity="trigram",
                                   engine=PARALLEL)
        mapping = matcher.match(dblp, acm, candidates=candidates)
        allowed = set(candidates)
        assert all((a, b) in allowed for a, b, _ in mapping.to_rows())


# ----------------------------------------------------------------------
# serial == sharded (candidate generation inside the workers)
# ----------------------------------------------------------------------

ALL_BLOCKINGS = [
    None,  # full cross product
    FullCross(),
    KeyBlocking(),
    TokenBlocking(max_df=0.5),
    SortedNeighborhood(window=3),
    CanopyBlocking(loose=0.1, tight=0.5),
]
BLOCKING_IDS = ["cross-default", "FullCross", "KeyBlocking",
                "TokenBlocking", "SortedNeighborhood", "CanopyBlocking"]


class TestSerialShardedEquivalence:
    """Sharded execution must be byte-identical to serial execution
    for every blocking strategy, in every worker-side scoring mode
    (block-vectorized q-gram kernel, row-converted pair stream, and
    the generic chunk scorer)."""

    @pytest.mark.parametrize("blocking", ALL_BLOCKINGS, ids=BLOCKING_IDS)
    @pytest.mark.parametrize("engine", [SHARDED, SHARDED_INLINE],
                             ids=["pool", "inline"])
    def test_vectorized_kernel_path(self, dataset, blocking, engine):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=0.4, blocking=blocking,
                                  engine=SERIAL)
        sharded = AttributeMatcher("title", similarity="trigram",
                                   threshold=0.4, blocking=blocking,
                                   engine=engine)
        rows = serial.match(dblp, acm).to_rows()
        assert rows == sharded.match(dblp, acm).to_rows()
        assert rows  # the scenario is non-trivial

    @pytest.mark.parametrize("blocking", ALL_BLOCKINGS, ids=BLOCKING_IDS)
    def test_chunk_scorer_path(self, dataset, blocking):
        """levenshtein has no vector kernel (tfidf gained the sparse
        one), forcing the generic scorer mode."""
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        serial = AttributeMatcher("title", similarity="levenshtein",
                                  threshold=0.3, blocking=blocking,
                                  engine=SERIAL)
        sharded = AttributeMatcher("title", similarity="levenshtein",
                                   threshold=0.3, blocking=blocking,
                                   engine=SHARDED)
        assert serial.match(dblp, acm).to_rows() == \
            sharded.match(dblp, acm).to_rows()

    @pytest.mark.parametrize("blocking", ALL_BLOCKINGS, ids=BLOCKING_IDS)
    def test_self_matching(self, dataset, blocking):
        gs = dataset.gs.publications
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=0.7, blocking=blocking,
                                  engine=SERIAL)
        sharded = AttributeMatcher("title", similarity="trigram",
                                   threshold=0.7, blocking=blocking,
                                   engine=SHARDED)
        rows = serial.match(gs, gs).to_rows()
        assert rows == sharded.match(gs, gs).to_rows()
        # self-mappings stay symmetric through the sharded merge
        mapping = sharded.match(gs, gs)
        for domain_id, range_id, similarity in mapping.to_rows():
            assert mapping.get(range_id, domain_id) == similarity

    def test_multi_attribute(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        pairs = [AttributePair("title", similarity="tfidf"),
                 AttributePair("year", similarity="year", weight=0.5)]
        serial = MultiAttributeMatcher(pairs, combine="weighted",
                                       threshold=0.3,
                                       blocking=TokenBlocking(max_df=0.5),
                                       engine=SERIAL)
        sharded = MultiAttributeMatcher(pairs, combine="weighted",
                                        threshold=0.3,
                                        blocking=TokenBlocking(max_df=0.5),
                                        engine=SHARDED)
        assert serial.match(dblp, acm).to_rows() == \
            sharded.match(dblp, acm).to_rows()

    def test_explicit_candidates_fall_back_to_streaming(self, dataset):
        """Explicit candidate lists cannot shard; the engine must fall
        through to the streamed path and still honor the list."""
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        candidates = [(a, b) for a in dblp.ids()[:15] for b in acm.ids()[:15]]
        matcher = AttributeMatcher("title", similarity="trigram",
                                   engine=SHARDED)
        mapping = matcher.match(dblp, acm, candidates=candidates)
        allowed = set(candidates)
        assert all((a, b) in allowed for a, b, _ in mapping.to_rows())

    def test_foreign_blocking_object_falls_back(self, dataset):
        """A blocking object without the shards protocol still works
        through the streamed path."""
        class BareBlocking:
            def candidates(self, domain, range, *, domain_attribute,
                           range_attribute):
                for id_a in domain.ids()[:10]:
                    for id_b in range.ids()[:10]:
                        yield id_a, id_b

        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=0.4, blocking=BareBlocking(),
                                  engine=SERIAL)
        sharded = AttributeMatcher("title", similarity="trigram",
                                   threshold=0.4, blocking=BareBlocking(),
                                   engine=SHARDED)
        assert serial.match(dblp, acm).to_rows() == \
            sharded.match(dblp, acm).to_rows()

    def test_subclass_without_shards_override_uses_streamed_pool(
            self, dataset, monkeypatch):
        """A PairGenerator subclass that only overrides candidates()
        must fall through to the streamed pool — running the default
        single delegating shard would serialize the request into one
        worker."""
        from repro.blocking.pair_generator import PairGenerator
        from repro.engine import shards as shards_module

        class CandidatesOnly(PairGenerator):
            def candidates(self, domain, range, *, domain_attribute,
                           range_attribute):
                for id_a in domain.ids()[:10]:
                    for id_b in range.ids()[:10]:
                        yield id_a, id_b

        installed = []
        monkeypatch.setattr(
            shards_module, "_install_runner",
            lambda runner: installed.append(runner))
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        serial = AttributeMatcher("title", similarity="tfidf",
                                  threshold=0.4, blocking=CandidatesOnly(),
                                  engine=SERIAL)
        sharded = AttributeMatcher("title", similarity="tfidf",
                                   threshold=0.4, blocking=CandidatesOnly(),
                                   engine=SHARDED)
        assert serial.match(dblp, acm).to_rows() == \
            sharded.match(dblp, acm).to_rows()
        assert not installed  # the sharded orchestration never engaged

    def test_subclass_overriding_candidates_invalidates_inherited_shards(
            self, dataset):
        """Inherited shards() describing the parent's pair set must not
        be used when candidates() was overridden below it — the sharded
        run would score pairs serial execution never generates."""
        class FilteredTokenBlocking(TokenBlocking):
            def candidates(self, domain, range, *, domain_attribute,
                           range_attribute):
                for id_a, id_b in super().candidates(
                        domain, range, domain_attribute=domain_attribute,
                        range_attribute=range_attribute):
                    if hash((id_a, id_b)) % 2:
                        yield id_a, id_b

        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        blocking = FilteredTokenBlocking(max_df=0.5)
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=0.4, blocking=blocking,
                                  engine=SERIAL)
        sharded = AttributeMatcher("title", similarity="trigram",
                                   threshold=0.4, blocking=blocking,
                                   engine=SHARDED)
        assert serial.match(dblp, acm).to_rows() == \
            sharded.match(dblp, acm).to_rows()

    def test_spawn_only_platform_falls_back_to_streamed_pool(
            self, dataset, monkeypatch):
        """Without fork, the streamed path still parallelizes (spawn +
        pickle); the sharded path must step aside rather than running
        everything inline."""
        from repro.engine import shards as shards_module
        from repro.engine.request import AttributeSpec as Spec

        monkeypatch.setattr(shards_module.multiprocessing,
                            "get_all_start_methods", lambda: ["spawn"])
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        request = MatchRequest(
            domain=dblp, range=acm,
            specs=[Spec("title", "title", TrigramSimilarity())],
            threshold=0.4, blocking=TokenBlocking(max_df=0.5))
        from repro.core.mapping import Mapping
        result = Mapping(dblp.name, acm.name)
        assert shards_module.execute_sharded(SHARDED, request, result) \
            is False
        assert len(result) == 0

    @settings(max_examples=10, deadline=None)
    @given(domain_titles=_titles, range_titles=_titles,
           threshold=st.sampled_from([0.0, 0.3, 0.7]))
    def test_property_identical_mappings(self, domain_titles, range_titles,
                                         threshold):
        domain = _source("L", domain_titles)
        range_ = _source("R", range_titles)
        blocking = TokenBlocking(max_df=1.0)
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=threshold, blocking=blocking,
                                  engine=SERIAL)
        sharded = AttributeMatcher("title", similarity="trigram",
                                   threshold=threshold, blocking=blocking,
                                   engine=SHARDED_INLINE)
        assert serial.match(domain, range_).to_rows() == \
            sharded.match(domain, range_).to_rows()


# ----------------------------------------------------------------------
# engine internals
# ----------------------------------------------------------------------

class TestEngineConfig:
    def test_defaults_are_serial(self):
        config = EngineConfig()
        assert config.workers == 1
        assert config.chunk_size == 2048

    @pytest.mark.parametrize("kwargs", [
        {"workers": 0}, {"chunk_size": 0}, {"max_inflight": 0},
        {"n_shards": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_engine_kwarg_overrides(self):
        engine = BatchMatchEngine(workers=3, chunk_size=17)
        assert engine.config.workers == 3
        assert engine.config.chunk_size == 17

    def test_kwarg_overrides_preserve_other_config_fields(self):
        base = EngineConfig(dedup_limit=12345, max_inflight=7)
        engine = BatchMatchEngine(base, workers=4)
        assert engine.config.workers == 4
        assert engine.config.dedup_limit == 12345
        assert engine.config.max_inflight == 7


class TestMatchRequest:
    def test_requires_specs(self, dataset):
        dblp = dataset.dblp.publications
        with pytest.raises(ValueError):
            MatchRequest(domain=dblp, range=dblp, specs=[])

    def test_multi_spec_requires_combiner(self, dataset):
        dblp = dataset.dblp.publications
        specs = [AttributeSpec("title", "title", TrigramSimilarity()),
                 AttributeSpec("year", "year", TrigramSimilarity())]
        with pytest.raises(ValueError):
            MatchRequest(domain=dblp, range=dblp, specs=specs)


class TestChunkScorerCaching:
    def test_duplicate_value_pairs_score_once(self):
        class CountingSim(SimilarityFunction):
            name = "counting"
            calls = 0

            def _score(self, a: str, b: str) -> float:
                type(self).calls += 1
                return 1.0 if a == b else 0.5

        domain = _source("L", ["same title"] * 6)
        range_ = _source("R", ["same title"] * 6)
        sim = CountingSim()
        request = MatchRequest(
            domain=domain, range=range_,
            specs=[AttributeSpec("title", "title", sim)])
        scorer = ChunkScorer(request)
        pairs = [(a, b) for a in domain.ids() for b in range_.ids()]
        triples = scorer.score_chunk(pairs)
        assert len(triples) == 36
        assert CountingSim.calls == 1  # 36 pairs, one distinct value pair


class TestChunkScorerCacheLimit:
    def test_tiny_cache_limit_never_loses_scores(self, dataset):
        """Regression: a memo reset must not orphan in-flight records."""
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        reference = AttributeMatcher("title", similarity="trigram",
                                     threshold=0.4, engine=SERIAL)
        expected = reference.match(dblp, acm).to_rows()

        request = MatchRequest(
            domain=dblp, range=acm,
            specs=[AttributeSpec("title", "title", TrigramSimilarity())],
            threshold=0.4)
        scorer = ChunkScorer(request, cache_limit=16)
        request.specs[0].similarity.prepare(
            dblp.attribute_values("title") + acm.attribute_values("title"))
        triples = []
        for chunk in iter_chunks(
                ((a, b) for a in dblp.ids() for b in acm.ids()), 64):
            triples.extend(scorer.score_chunk(chunk))
        assert sorted(triples) == expected


class TestWorkflowEngineInjection:
    def test_context_engine_reaches_matcher_step(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        matcher = AttributeMatcher("title", similarity="trigram",
                                   threshold=0.4)
        workflow = MatchWorkflow("wired").add_matcher(
            "out", matcher, dblp.name, acm.name)

        serial_context = MatchContext(
            sources={dblp.name: dblp, acm.name: acm})
        parallel_context = MatchContext(
            sources={dblp.name: dblp, acm.name: acm}, engine=PARALLEL)
        serial_rows = workflow.run(serial_context).to_rows()
        parallel_rows = workflow.run(parallel_context).to_rows()
        assert serial_rows == parallel_rows
        # the injection is per-step: the matcher's own engine is restored
        assert matcher.engine is None

    def test_engine_config_injected_as_config(self, dataset):
        """A bare EngineConfig (e.g. asking for sharded execution) is
        accepted wherever an engine instance is."""
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        matcher = AttributeMatcher("title", similarity="trigram",
                                   threshold=0.4,
                                   blocking=TokenBlocking(max_df=0.5))
        workflow = MatchWorkflow("wired").add_matcher(
            "out", matcher, dblp.name, acm.name,
            engine=EngineConfig(workers=2, chunk_size=64,
                                shard_blocking=True))
        serial_context = MatchContext(
            sources={dblp.name: dblp, acm.name: acm})
        sharded_rows = workflow.run(serial_context).to_rows()

        reference = AttributeMatcher("title", similarity="trigram",
                                     threshold=0.4,
                                     blocking=TokenBlocking(max_df=0.5),
                                     engine=SERIAL)
        assert sharded_rows == reference.match(dblp, acm).to_rows()
        assert matcher.engine is None


# ----------------------------------------------------------------------
# vectorized (bit-kernel) path
# ----------------------------------------------------------------------

class TestVectorizedKernel:
    @pytest.mark.skipif(not vectorized.numpy_available(),
                        reason="numpy bit kernel unavailable")
    @pytest.mark.parametrize("make_sim", [
        TrigramSimilarity,
        lambda: JaccardNGram(2),
        lambda: NGramSimilarity(3, method="overlap"),
    ], ids=["dice", "jaccard", "overlap"])
    def test_bit_identical_to_python_path(self, dataset, monkeypatch,
                                          make_sim):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        engine = BatchMatchEngine(EngineConfig(workers=1, chunk_size=128))
        fast = AttributeMatcher("title", similarity=make_sim(),
                                threshold=0.0, engine=engine)
        fast_rows = fast.match(dblp, acm).to_rows()

        monkeypatch.setattr(vectorized, "build_kernel",
                            lambda *args, **kwargs: None)
        slow = AttributeMatcher("title", similarity=make_sim(),
                                threshold=0.0, engine=engine)
        assert slow.match(dblp, acm).to_rows() == fast_rows

    @pytest.mark.skipif(not vectorized.numpy_available(),
                        reason="numpy bit kernel unavailable")
    def test_parallel_indexed_path_identical(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=0.3, engine=SERIAL)
        parallel = AttributeMatcher("title", similarity="trigram",
                                    threshold=0.3, engine=PARALLEL)
        assert serial.match(dblp, acm).to_rows() == \
            parallel.match(dblp, acm).to_rows()

    def test_subclass_with_custom_score_is_not_eligible(self, dataset):
        class Tweaked(TrigramSimilarity):
            def _score(self, a: str, b: str) -> float:
                return min(1.0, super()._score(a, b) * 1.1)

        dblp = dataset.dblp.publications
        kernel = vectorized.build_kernel(Tweaked(), dblp, dblp,
                                         "title", "title")
        assert kernel is None

    def test_explicit_candidates_skip_kernel_build(self, dataset,
                                                   monkeypatch):
        """A tiny candidate list must not pay for full source matrices."""
        dblp, acm = dataset.dblp.publications, dataset.acm.publications

        def exploding_build(*args, **kwargs):
            raise AssertionError("kernel built for an explicit list")

        monkeypatch.setattr(vectorized, "build_kernel", exploding_build)
        matcher = AttributeMatcher("title", similarity="trigram",
                                   engine=SERIAL)
        candidates = [(dblp.ids()[0], acm.ids()[0])]
        mapping = matcher.match(dblp, acm, candidates=candidates)
        assert len(mapping) <= 1

    def test_missing_values_score_like_python_path(self, monkeypatch):
        domain = _source("L", ["alpha beta", None, "gamma delta"])
        range_ = _source("R", ["alpha beta", "gamma delta", None])
        engine = BatchMatchEngine(EngineConfig(workers=1, chunk_size=2))
        fast = AttributeMatcher("title", similarity="trigram",
                                threshold=0.0, engine=engine)
        fast_rows = fast.match(domain, range_).to_rows()
        monkeypatch.setattr(vectorized, "build_kernel",
                            lambda *args, **kwargs: None)
        slow = AttributeMatcher("title", similarity="trigram",
                                threshold=0.0, engine=engine)
        assert slow.match(domain, range_).to_rows() == fast_rows


# ----------------------------------------------------------------------
# score_batch kernels
# ----------------------------------------------------------------------

class TestScoreBatch:
    PAIRS = [("data cleaning", "data cleaning in warehouses"),
             ("schema matching", "cupid schema matching"),
             ("", "empty left"), ("x", "y"), ("abc", "abc")]

    @pytest.mark.parametrize("sim", [
        TrigramSimilarity(),
        TfIdfCosineSimilarity(),
        SoftTfIdfSimilarity(),
        CachedSimilarity(TrigramSimilarity()),
    ], ids=lambda s: s.name)
    def test_batch_matches_per_pair_scoring(self, sim):
        sim.prepare([a for a, _ in self.PAIRS] + [b for _, b in self.PAIRS])
        expected = [sim.similarity(a, b) for a, b in self.PAIRS]
        assert sim.score_batch(self.PAIRS) == expected

    def test_cached_similarity_batches_misses_once(self):
        cached = CachedSimilarity(TrigramSimilarity())
        pairs = [("aa", "bb"), ("bb", "aa"), ("aa", "bb")]
        scores = cached.score_batch(pairs)
        assert scores[0] == scores[1] == scores[2]
        # symmetric normalization: one distinct key, two batch hits
        assert cached.misses == 1
        assert cached.hits == 2

    def test_cached_similarity_bounded_cache_serves_evicted_hits(self):
        """Regression: a size-triggered reset mid-batch must not drop
        keys the batch already counted as hits."""
        cached = CachedSimilarity(TrigramSimilarity(), max_size=2)
        warm = cached.similarity("alpha", "beta")
        batch = [("alpha", "beta"), ("gamma", "delta"),
                 ("epsilon", "zeta"), ("eta", "theta")]
        scores = cached.score_batch(batch)
        assert scores[0] == warm
        assert len(cached._cache) <= 2  # the bound survives the batch

    def test_cached_similarity_oversized_batch_respects_bound(self):
        cached = CachedSimilarity(TrigramSimilarity(), max_size=3)
        pairs = [(f"left {i}", f"right {i}") for i in range(10)]
        expected = [cached.inner.similarity(a, b) for a, b in pairs]
        assert cached.score_batch(pairs) == expected
        assert len(cached._cache) <= 3


# ----------------------------------------------------------------------
# streaming pair counting
# ----------------------------------------------------------------------

class TestPairCounting:
    def test_full_cross_closed_form(self):
        domain = _source("L", [f"t{i}" for i in range(7)])
        range_ = _source("R", [f"t{i}" for i in range(5)])
        blocking = FullCross()
        assert blocking.count(domain, range_, domain_attribute="title",
                              range_attribute="title") == 35
        assert blocking.count(domain, domain, domain_attribute="title",
                              range_attribute="title") == 21  # 7 choose 2

    def test_full_cross_limit(self):
        domain = _source("L", [f"t{i}" for i in range(7)])
        blocking = FullCross()
        assert blocking.count(domain, domain, domain_attribute="title",
                              range_attribute="title", limit=4) == 4

    def test_generic_count_deduplicates_and_limits(self):
        domain = _source("L", ["alpha beta"] * 4)
        range_ = _source("R", ["alpha beta"] * 4)
        blocking = TokenBlocking(max_df=1.0)
        full = blocking.count(domain, range_, domain_attribute="title",
                              range_attribute="title")
        distinct = len(set(blocking.candidates(
            domain, range_, domain_attribute="title",
            range_attribute="title")))
        assert full == distinct == 16
        assert blocking.count(domain, range_, domain_attribute="title",
                              range_attribute="title", limit=5) == 5
