"""Engine profiling observes without steering.

``EngineConfig(profile=True)`` reuses the timed task variants the
adaptive tuner already ships, so a profiled run must produce the
byte-identical mapping of an unprofiled one on every execution path —
serial, parallel, indexed and sharded — while filling
``engine.last_profile`` with per-stage wall-clock timings.
"""

from __future__ import annotations

import pytest

from repro.blocking import TokenBlocking
from repro.engine import (
    AttributeSpec,
    BatchMatchEngine,
    EngineConfig,
    MatchRequest,
)
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.sim.ngram import TrigramSimilarity

# each pair shares one rare, long token ("zebraNNN"), so TokenBlocking
# (min_token_length=3, max_df=0.1) blocks exactly the intended pairs
TITLES_A = [f"streaming theta join zebra{i:03d}" for i in range(40)]
TITLES_B = [f"streaming theta join zebra{i:03d} revised"
            for i in range(0, 80, 2)] \
    + ["entity fusion in warehouses", "graph cardinality estimation"]


def _source(name, titles):
    source = LogicalSource(PhysicalSource(name), ObjectType("Publication"))
    for index, title in enumerate(titles):
        source.add_record(f"{name.lower()}{index}", title=title)
    return source


def _request(**kwargs):
    return MatchRequest(
        domain=_source("A", TITLES_A), range=_source("B", TITLES_B),
        specs=[AttributeSpec("title", "title", TrigramSimilarity())],
        threshold=0.3, **kwargs)


CONFIGS = {
    "serial": dict(workers=1, chunk_size=64),
    "parallel": dict(workers=2, chunk_size=64),
    "sharded": dict(workers=2, chunk_size=64, shard_blocking=True),
}


def _run(profile, blocking=None, **config):
    engine = BatchMatchEngine(EngineConfig(profile=profile, **config))
    kwargs = {"blocking": blocking} if blocking is not None else {}
    mapping = engine.execute(_request(**kwargs))
    return engine, mapping


class TestBitIdentity:
    @pytest.mark.parametrize("path", sorted(CONFIGS))
    def test_profiled_run_matches_unprofiled(self, path):
        config = CONFIGS[path]
        blocking = TokenBlocking() if path == "sharded" else None
        _, plain = _run(False, blocking=blocking, **config)
        engine, profiled = _run(True, blocking=blocking, **config)
        assert profiled.to_rows() == plain.to_rows()
        assert profiled.to_rows()
        assert engine.last_profile is not None

    def test_indexed_path_matches_unprofiled(self):
        # TokenBlocking + single trigram spec takes the indexed fast
        # path on a serial engine
        _, plain = _run(False, blocking=TokenBlocking(),
                        workers=1, chunk_size=64)
        engine, profiled = _run(True, blocking=TokenBlocking(),
                                workers=1, chunk_size=64)
        assert profiled.to_rows() == plain.to_rows()
        assert engine.last_profile["path"] in ("indexed", "serial")


class TestProfileRecords:
    def test_off_by_default(self):
        engine, _ = _run(False, workers=1, chunk_size=64)
        assert engine.last_profile is None
        assert engine.profile_summary() is None

    def test_serial_profile_fields(self):
        engine, _ = _run(True, workers=1, chunk_size=64)
        profile = engine.last_profile
        assert profile["path"] in ("serial", "indexed")
        assert profile["chunks"] >= 1
        assert len(profile["chunk_seconds"]) == profile["chunks"]
        assert all(seconds >= 0.0 for seconds in profile["chunk_seconds"])
        assert profile["prepare_seconds"] >= 0.0
        assert profile["shard_seconds"] == []

    def test_sharded_profile_records_shard_durations(self):
        engine, _ = _run(True, blocking=TokenBlocking(), workers=2,
                         chunk_size=64, shard_blocking=True)
        profile = engine.last_profile
        assert profile["path"] == "sharded"
        assert profile["shard_seconds"]
        assert all(seconds >= 0.0 for seconds in profile["shard_seconds"])

    def test_summary_aggregates_last_run(self):
        engine, _ = _run(True, workers=1, chunk_size=64)
        summary = engine.profile_summary()
        assert summary["path"] == engine.last_profile["path"]
        assert summary["chunks"] == engine.last_profile["chunks"]
        assert summary["score_seconds"] == pytest.approx(
            sum(engine.last_profile["chunk_seconds"])
            + sum(engine.last_profile["shard_seconds"]))
        assert summary["chunk_p99_seconds"] >= summary["chunk_p50_seconds"]
        assert summary["shards"] == len(engine.last_profile["shard_seconds"])

    def test_each_run_resets_the_profile(self):
        engine = BatchMatchEngine(EngineConfig(profile=True, workers=1,
                                               chunk_size=64))
        engine.execute(_request())
        first = engine.last_profile
        engine.execute(_request())
        assert engine.last_profile is not first
