"""Equivalence suite for the multi-attribute composed kernel.

The composed kernel (:func:`repro.engine.vectorized.build_multi_kernel`)
must be *bit-identical* to the scalar multi-attribute path
(:meth:`ChunkScorer._score_multi`) in every execution mode: serial,
parallel streamed, sharded, and sharded+balanced — across all
combination functions (incl. the ``-0`` missing-as-zero policies),
asymmetric per-spec similarities (which force a scalar-fallback
column), and records with missing values on either side.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AttributePair, MultiAttributeMatcher
from repro.blocking import FullCross, KeyBlocking, TokenBlocking
from repro.core.operators.functions import (
    CombinationFunction,
    MaxFunction,
)
from repro.engine import BatchMatchEngine, EngineConfig, vectorized
from repro.engine.request import AttributeSpec, MatchRequest
from repro.engine.vectorized import (
    MultiSpecKernel,
    ScalarColumn,
    build_multi_kernel,
)
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.sim.base import SimilarityFunction
from repro.sim.ngram import TrigramSimilarity
from repro.sim.tfidf import TfIdfCosineSimilarity

pytestmark = pytest.mark.skipif(not vectorized.numpy_available(),
                                reason="numpy kernels unavailable")

SERIAL = BatchMatchEngine(EngineConfig(workers=1, chunk_size=64))
PARALLEL = BatchMatchEngine(EngineConfig(workers=4, chunk_size=64))
SHARDED = BatchMatchEngine(EngineConfig(workers=4, chunk_size=64,
                                        shard_blocking=True))
BALANCED = BatchMatchEngine(EngineConfig(workers=2, chunk_size=64,
                                         shard_blocking=True,
                                         balance_shards=True, n_shards=5))

COMBINERS = ["avg", "avg0", "min", "min0", "max", "weighted", "weighted0"]


class AsymmetricOverlap(SimilarityFunction):
    """Deliberately asymmetric: containment of ``a``'s tokens in ``b``.

    No vector kernel exists for it, so a multi request carrying it
    exercises the scalar-fallback column — and its asymmetry exercises
    the orientation-faithful sharded mode.
    """

    name = "asym-overlap"

    def _score(self, a: str, b: str) -> float:
        tokens_a = a.split()
        if not tokens_a:
            return 0.0
        tokens_b = set(b.split())
        return sum(1 for token in tokens_a if token in tokens_b) \
            / len(tokens_a)


def _sources(miss_rate=0.25, n=90, seed=11):
    rng = random.Random(seed)
    words = ["adaptive", "stream", "schema", "query", "index",
             "cache", "graph", "join", "view", "cube"]

    def build(name, count):
        source = LogicalSource(PhysicalSource(name),
                               ObjectType("Publication"))
        for i in range(count):
            title = " ".join(rng.choice(words) for _ in range(4)) \
                + f" {i % 9}"
            year = (None if rng.random() < miss_rate
                    else str(1990 + i % 15))
            venue = (None if rng.random() < miss_rate
                     else rng.choice(words))
            source.add_record(f"{name.lower()}{i}", title=title,
                              year=year, venue=venue)
        return source

    return build("L", n), build("R", n - 7)


def _pairs():
    return [AttributePair("title", similarity="trigram"),
            AttributePair("year", similarity="year", weight=0.5),
            AttributePair("venue", similarity="tfidf", weight=2.0)]


def _scalar_reference(pairs, combine, threshold, blocking, domain, range_,
                      monkeypatch):
    """The generic-path result: composed kernel disabled."""
    with monkeypatch.context() as patch:
        patch.setattr(vectorized, "build_multi_kernel",
                      lambda request: None)
        matcher = MultiAttributeMatcher(pairs, combine=combine,
                                        threshold=threshold,
                                        blocking=blocking, engine=SERIAL)
        return matcher.match(domain, range_).to_rows()


class TestComposedKernelEquivalence:
    @pytest.mark.parametrize("combine", COMBINERS)
    @pytest.mark.parametrize("threshold", [0.0, 0.3])
    def test_all_execution_modes_match_scalar(self, combine, threshold,
                                              monkeypatch):
        domain, range_ = _sources()
        blocking = TokenBlocking(max_df=0.8)
        reference = _scalar_reference(_pairs(), combine, threshold,
                                      blocking, domain, range_, monkeypatch)
        for engine in (SERIAL, PARALLEL, SHARDED, BALANCED):
            matcher = MultiAttributeMatcher(_pairs(), combine=combine,
                                            threshold=threshold,
                                            blocking=blocking,
                                            engine=engine)
            assert matcher.match(domain, range_).to_rows() == reference
        assert reference  # the scenario is non-trivial

    @pytest.mark.parametrize("combine", ["avg", "min0", "weighted"])
    def test_asymmetric_similarity_scalar_column(self, combine,
                                                 monkeypatch):
        """An asymmetric, kernel-less similarity rides a scalar-fallback
        column; every mode (incl. self-matching below) must agree."""
        domain, range_ = _sources()
        pairs = [AttributePair("title", similarity=AsymmetricOverlap()),
                 AttributePair("venue", similarity="tfidf", weight=2.0)]
        reference = _scalar_reference(pairs, combine, 0.2, KeyBlocking(),
                                      domain, range_, monkeypatch)
        for engine in (SERIAL, PARALLEL, SHARDED, BALANCED):
            matcher = MultiAttributeMatcher(pairs, combine=combine,
                                            threshold=0.2,
                                            blocking=KeyBlocking(),
                                            engine=engine)
            assert matcher.match(domain, range_).to_rows() == reference

    @pytest.mark.parametrize("combine", ["avg", "min", "weighted0"])
    def test_self_matching_with_scalar_column(self, combine):
        """Self-matching forces the orientation question: a composed
        kernel with a scalar column must leave the block-vectorized
        expansion for the orientation-faithful pair stream."""
        domain, _ = _sources(n=60)
        pairs = [AttributePair("title", similarity=AsymmetricOverlap()),
                 AttributePair("title", similarity="trigram")]
        reference = None
        for engine in (SERIAL, PARALLEL, SHARDED, BALANCED):
            matcher = MultiAttributeMatcher(pairs, combine=combine,
                                            threshold=0.2,
                                            blocking=KeyBlocking(),
                                            engine=engine)
            rows = matcher.match(domain, domain).to_rows()
            if reference is None:
                reference = rows
            assert rows == reference

    def test_missing_slots_on_either_side(self, monkeypatch):
        """Heavy missing rates on both sources: the masked None slots
        must flow through every combiner policy identically."""
        domain, range_ = _sources(miss_rate=0.6, seed=23)
        for combine in COMBINERS:
            reference = _scalar_reference(_pairs(), combine, 0.0,
                                          FullCross(), domain, range_,
                                          monkeypatch)
            matcher = MultiAttributeMatcher(_pairs(), combine=combine,
                                            threshold=0.0,
                                            blocking=FullCross(),
                                            engine=SHARDED)
            assert matcher.match(domain, range_).to_rows() == reference

    @settings(max_examples=10, deadline=None)
    @given(threshold=st.sampled_from([0.0, 0.3, 0.6]),
           combine=st.sampled_from(COMBINERS),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_property_composed_equals_scalar(self, threshold, combine,
                                             seed):
        domain, range_ = _sources(miss_rate=0.35, n=40, seed=seed)
        pairs = _pairs()
        fast = MultiAttributeMatcher(pairs, combine=combine,
                                     threshold=threshold, engine=SERIAL)
        fast_rows = fast.match(domain, range_).to_rows()
        original = vectorized.build_multi_kernel
        vectorized.build_multi_kernel = lambda request: None
        try:
            slow = MultiAttributeMatcher(pairs, combine=combine,
                                         threshold=threshold,
                                         engine=SERIAL)
            slow_rows = slow.match(domain, range_).to_rows()
        finally:
            vectorized.build_multi_kernel = original
        assert fast_rows == slow_rows


class TestComposedKernelStructure:
    def _request(self, pairs, combine="avg"):
        domain, range_ = _sources(n=30)
        matcher = MultiAttributeMatcher(pairs, combine=combine)
        return MatchRequest(
            domain=domain, range=range_,
            specs=[AttributeSpec(pair.attribute, pair.range_attribute,
                                 pair.similarity)
                   for pair in matcher.pairs],
            threshold=0.0, combiner=matcher.combiner)

    def test_kernel_engages_for_eligible_request(self):
        request = self._request(_pairs())
        for spec in request.specs:
            spec.similarity.prepare(
                request.domain.attribute_values(spec.attribute)
                + request.range.attribute_values(spec.range_attribute))
        kernel = build_multi_kernel(request)
        assert isinstance(kernel, MultiSpecKernel)
        # trigram + tfidf get real kernels, "year" needs the fallback
        assert sum(isinstance(column, ScalarColumn)
                   for column in kernel.columns) == 1
        assert not kernel.orientation_symmetric  # scalar column inside

    def test_all_scalar_columns_fall_back_to_generic(self):
        pairs = [AttributePair("title", similarity=AsymmetricOverlap()),
                 AttributePair("venue", similarity=AsymmetricOverlap())]
        request = self._request(pairs)
        assert build_multi_kernel(request) is None

    def test_all_real_kernels_are_orientation_symmetric(self):
        pairs = [AttributePair("title", similarity="trigram"),
                 AttributePair("venue", similarity="tfidf")]
        request = self._request(pairs)
        for spec in request.specs:
            spec.similarity.prepare(
                request.domain.attribute_values(spec.attribute)
                + request.range.attribute_values(spec.range_attribute))
        kernel = build_multi_kernel(request)
        assert isinstance(kernel, MultiSpecKernel)
        assert kernel.orientation_symmetric

    def test_custom_combiner_subclass_uses_per_row_fallback(self,
                                                            monkeypatch):
        """A combiner the vectorized dispatch does not recognize still
        produces scalar-identical results through the per-row path."""

        class Harmonic(CombinationFunction):
            name = "harmonic"

            def combine(self, values):
                present = [value for value in values if value is not None]
                if not present or any(value == 0.0 for value in present):
                    return None
                return len(present) / sum(1.0 / value
                                          for value in present)

        domain, range_ = _sources(n=40)
        pairs = [AttributePair("title", similarity="trigram"),
                 AttributePair("venue", similarity="tfidf")]
        reference = _scalar_reference(pairs, Harmonic(), 0.1, FullCross(),
                                      domain, range_, monkeypatch)
        matcher = MultiAttributeMatcher(pairs, combine=Harmonic(),
                                        threshold=0.1,
                                        blocking=FullCross(),
                                        engine=SHARDED)
        assert matcher.match(domain, range_).to_rows() == reference

    def test_tfidf_column_matches_single_kernel_scores(self):
        """The composed kernel's tfidf column is the same sparse kernel
        the single-attribute path builds — spot-check score agreement."""
        domain, range_ = _sources(n=30)
        sim = TfIdfCosineSimilarity()
        sim.prepare(domain.attribute_values("title")
                    + range_.attribute_values("title"))
        single = vectorized.build_kernel(sim, domain, range_,
                                         "title", "title")
        trigram = TrigramSimilarity()
        trigram.prepare(domain.attribute_values("title")
                        + range_.attribute_values("title"))
        request = MatchRequest(
            domain=domain, range=range_,
            specs=[AttributeSpec("title", "title", sim),
                   AttributeSpec("title", "title", trigram)],
            threshold=0.0, combiner=MaxFunction())
        composed = build_multi_kernel(request)
        import numpy as np
        rows = np.arange(min(len(domain.ids()), len(range_.ids())),
                         dtype=np.int64)
        assert (composed.columns[0].score_rows(rows, rows)
                == single.score_rows(rows, rows)).all()
