"""Regression suite for the single-attribute missing-value policy.

``AttributeMatcher(missing="zero")`` was validated and documented but
silently dead: the policy never reached the :class:`MatchRequest`, and
the engine's ``score > 0`` filter made zero-scored pairs unobservable
anyway.  These tests pin the fixed contract:

* ``"zero"`` emits 0.0-score correspondences for missing-value pairs
  at ``threshold == 0`` — on the scalar path, the vectorized kernel
  path, the parallel streamed path and the sharded path, identically;
* ``"skip"`` stays byte-identical to the pre-fix behavior (missing
  pairs simply produce nothing);
* any positive threshold filters the zeros, so results there are
  unchanged by the policy.
"""

from __future__ import annotations

import pytest

from repro import AttributeMatcher
from repro.core.matchers.base import MatcherError
from repro.engine import BatchMatchEngine, EngineConfig, vectorized
from repro.engine.request import AttributeSpec, MatchRequest
from repro.model.source import LogicalSource, ObjectType, PhysicalSource

SERIAL = BatchMatchEngine(EngineConfig(workers=1, chunk_size=16))
PARALLEL = BatchMatchEngine(EngineConfig(workers=4, chunk_size=16))
SHARDED = BatchMatchEngine(EngineConfig(workers=4, chunk_size=16,
                                        shard_blocking=True))
ENGINES = [SERIAL, PARALLEL, SHARDED]
ENGINE_IDS = ["serial", "parallel", "sharded"]


def _sources():
    domain = LogicalSource(PhysicalSource("L"), ObjectType("Publication"))
    range_ = LogicalSource(PhysicalSource("R"), ObjectType("Publication"))
    domain.add_record("a0", title="alpha beta gamma")
    domain.add_record("a1", title=None)
    domain.add_record("a2", title="delta epsilon")
    range_.add_record("b0", title="alpha beta gamma")
    range_.add_record("b1", title=None)
    range_.add_record("b2", title="unrelated zeta")
    return domain, range_


class TestZeroPolicy:
    @pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
    def test_zero_emits_missing_pairs_at_threshold_zero(self, engine):
        domain, range_ = _sources()
        matcher = AttributeMatcher("title", similarity="trigram",
                                   threshold=0.0, missing="zero",
                                   engine=engine)
        mapping = matcher.match(domain, range_)
        # every pair with a missing side scores exactly 0.0
        expected_missing = {("a1", "b0"), ("a1", "b1"), ("a1", "b2"),
                            ("a0", "b1"), ("a2", "b1")}
        zero_pairs = {(a, b) for a, b, score in mapping.to_rows()
                      if score == 0.0}
        assert expected_missing <= zero_pairs
        for id_a, id_b in expected_missing:
            assert mapping.get(id_a, id_b) == 0.0

    @pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
    def test_zero_and_skip_agree_on_positive_scores(self, engine):
        domain, range_ = _sources()
        zero = AttributeMatcher("title", similarity="trigram",
                                threshold=0.0, missing="zero",
                                engine=engine).match(domain, range_)
        skip = AttributeMatcher("title", similarity="trigram",
                                threshold=0.0, missing="skip",
                                engine=engine).match(domain, range_)
        assert {row for row in zero.to_rows() if row[2] > 0.0} \
            == set(skip.to_rows())

    @pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
    def test_positive_threshold_hides_the_policy(self, engine):
        domain, range_ = _sources()
        zero = AttributeMatcher("title", similarity="trigram",
                                threshold=0.4, missing="zero",
                                engine=engine).match(domain, range_)
        skip = AttributeMatcher("title", similarity="trigram",
                                threshold=0.4, missing="skip",
                                engine=engine).match(domain, range_)
        assert zero.to_rows() == skip.to_rows()
        assert all(score > 0.0 for _, _, score in zero.to_rows())

    def test_serial_parallel_sharded_identical(self, dataset):
        """The policy is part of the request, so every execution path
        must apply it identically on a realistic workload."""
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        rows = None
        for engine in ENGINES:
            matcher = AttributeMatcher("year", similarity="year",
                                       threshold=0.0, missing="zero",
                                       engine=engine)
            result = matcher.match(dblp, acm).to_rows()
            if rows is None:
                rows = result
            assert result == rows

    @pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
    def test_kernel_and_generic_paths_agree(self, engine, monkeypatch):
        """trigram rides the bit kernel; with kernels disabled the same
        request runs the generic scorer — results must not move."""
        domain, range_ = _sources()
        fast = AttributeMatcher("title", similarity="trigram",
                                threshold=0.0, missing="zero",
                                engine=engine).match(domain, range_)
        monkeypatch.setattr(vectorized, "build_kernel",
                            lambda *args, **kwargs: None)
        slow = AttributeMatcher("title", similarity="trigram",
                                threshold=0.0, missing="zero",
                                engine=engine).match(domain, range_)
        assert fast.to_rows() == slow.to_rows()

    def test_zero_policy_self_matching_stays_symmetric(self):
        domain, _ = _sources()
        matcher = AttributeMatcher("title", similarity="trigram",
                                   threshold=0.0, missing="zero",
                                   engine=SHARDED)
        mapping = matcher.match(domain, domain)
        assert mapping.get("a1", "a0") == 0.0
        assert mapping.get("a0", "a1") == 0.0


class TestSkipPolicyUnchanged:
    @pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
    def test_skip_emits_nothing_for_missing(self, engine):
        domain, range_ = _sources()
        mapping = AttributeMatcher("title", similarity="trigram",
                                   threshold=0.0, missing="skip",
                                   engine=engine).match(domain, range_)
        assert all("a1" != a and "b1" != b for a, b in mapping.pairs())

    def test_skip_seed_scenario_unchanged(self, dataset):
        """The default policy's results on the seed workload are the
        pre-fix results (missing pairs produce nothing, zeros are
        filtered)."""
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        rows = None
        for engine in ENGINES:
            matcher = AttributeMatcher("title", similarity="trigram",
                                       threshold=0.4, engine=engine)
            result = matcher.match(dblp, acm).to_rows()
            if rows is None:
                rows = result
            assert result == rows
        assert all(score >= 0.4 for _, _, score in rows)


class TestRequestValidation:
    def test_request_rejects_unknown_policy(self):
        domain, range_ = _sources()
        from repro.sim.ngram import TrigramSimilarity
        with pytest.raises(ValueError):
            MatchRequest(domain=domain, range=range_,
                         specs=[AttributeSpec("title", "title",
                                              TrigramSimilarity())],
                         missing="ignore")

    def test_matcher_rejects_unknown_policy(self):
        with pytest.raises(MatcherError):
            AttributeMatcher("title", missing="ignore")

    def test_matcher_threads_policy_onto_request(self):
        matcher = AttributeMatcher("title", missing="zero")
        assert matcher.missing == "zero"
        captured = {}

        class Capture:
            def execute(self, request):
                captured["missing"] = request.missing
                from repro.core.mapping import Mapping
                return Mapping("L", "R")

        matcher.engine = Capture()
        domain, range_ = _sources()
        matcher.match(domain, range_)
        assert captured["missing"] == "zero"
