"""Tests for the sparse TF/IDF kernel and skew-aware shard rebalancing.

Two load-bearing guarantees ride on this module:

* **kernel selection** — ``build_kernel`` must route each similarity
  function to the right fast path (bit kernel / sparse TF/IDF kernel /
  generic batch loop), and in particular must *never* hand SoftTFIDF's
  fuzzy math to the plain-cosine sparse kernel;
* **execution equivalence under skew** — serial, sharded and
  balanced-sharded execution must produce byte-identical mappings on
  skewed block-size distributions, where rebalancing splits oversized
  block groups into pieces serial execution never saw.
"""

from __future__ import annotations

import pytest

from repro import AttributeMatcher
from repro.blocking import (
    CanopyBlocking,
    FullCross,
    IdBlock,
    KeyBlocking,
    SortedNeighborhood,
    TokenBlocking,
)
from repro.blocking.pair_generator import BlockShard, IterableShard
from repro.engine import BatchMatchEngine, EngineConfig, vectorized
from repro.engine.shards import (
    CompositeShard,
    _explode_block,
    rebalance_shards,
)
from repro.engine.sparse import (
    TfIdfKernel,
    build_tfidf_kernel,
    numpy_available,
)
from repro.engine.vectorized import NGramBitKernel
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.sim.edit import LevenshteinSimilarity
from repro.sim.ngram import JaccardNGram, TrigramSimilarity
from repro.sim.tfidf import SoftTfIdfSimilarity, TfIdfCosineSimilarity

SERIAL = BatchMatchEngine(EngineConfig(workers=1, chunk_size=64))
SHARDED = BatchMatchEngine(EngineConfig(workers=4, chunk_size=64,
                                        shard_blocking=True))
BALANCED = BatchMatchEngine(EngineConfig(workers=4, chunk_size=64,
                                         shard_blocking=True,
                                         balance_shards=True))
BALANCED_INLINE = BatchMatchEngine(EngineConfig(workers=1, chunk_size=64,
                                                shard_blocking=True,
                                                balance_shards=True,
                                                n_shards=6))

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy unavailable")


def _source(name: str, titles) -> LogicalSource:
    source = LogicalSource(PhysicalSource(name), ObjectType("Publication"))
    for index, title in enumerate(titles):
        source.add_record(f"{name.lower()}{index}", title=title)
    return source


def _skewed_titles(count: int, skew_every: int = 2):
    """Titles whose first token is dominated by one hot key.

    Every ``skew_every``-th record starts with the same word, so
    first-token key blocking produces one block holding roughly
    ``(count / skew_every) ** 2`` of the pairs — the long-tail shape
    rebalancing exists for.
    """
    words = ["alpha", "beta", "gamma", "delta", "epsilon",
             "zeta", "eta", "theta"]
    titles = []
    for i in range(count):
        first = "popular" if i % skew_every == 0 else words[i % len(words)]
        tail = " ".join(words[(i + j) % len(words)] for j in range(1, 4))
        titles.append(f"{first} {tail} {i % 7}x")
    return titles


@pytest.fixture(scope="module")
def skewed_sources():
    return (_source("L", _skewed_titles(90)),
            _source("R", _skewed_titles(84)))


# ----------------------------------------------------------------------
# kernel selection
# ----------------------------------------------------------------------

class TweakedTfIdf(TfIdfCosineSimilarity):
    def _score(self, a: str, b: str) -> float:
        return min(1.0, super()._score(a, b) * 1.1)


class TweakedVector(TfIdfCosineSimilarity):
    def vector(self, text: str):
        return {token: 1.0 for token in text.split()}


class TestKernelSelection:
    """``build_kernel`` is the registry; each similarity type must land
    on exactly the kernel whose math it matches."""

    @needs_numpy
    @pytest.mark.parametrize("make_sim, expected", [
        (TrigramSimilarity, NGramBitKernel),
        (lambda: JaccardNGram(2), NGramBitKernel),
        (TfIdfCosineSimilarity, TfIdfKernel),
        (SoftTfIdfSimilarity, type(None)),
        (LevenshteinSimilarity, type(None)),
        (TweakedTfIdf, type(None)),
        (TweakedVector, type(None)),
    ], ids=["trigram", "jaccard-ngram", "tfidf", "softtfidf",
            "levenshtein", "tfidf-score-override",
            "tfidf-vector-override"])
    def test_registry_routing(self, dataset, make_sim, expected):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        sim = make_sim()
        sim.prepare(dblp.attribute_values("title")
                    + acm.attribute_values("title"))
        kernel = vectorized.build_kernel(sim, dblp, acm, "title", "title")
        assert type(kernel) is expected

    @needs_numpy
    def test_soft_tfidf_never_routes_into_sparse_kernel(self, dataset):
        """Regression for the ``score_batch`` reassignment: SoftTFIDF
        must be refused by the sparse kernel even though it *is* a
        TfIdfCosineSimilarity."""
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        sim = SoftTfIdfSimilarity()
        sim.prepare(dblp.attribute_values("title")
                    + acm.attribute_values("title"))
        assert build_tfidf_kernel(sim, dblp, acm, "title", "title") is None

    def test_soft_tfidf_batch_matches_pairwise(self, dataset):
        """The explicit ``score_batch`` override must keep producing
        the fuzzy per-pair scores, not the parent's plain cosine."""
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        sim = SoftTfIdfSimilarity()
        corpus = (dblp.attribute_values("title")
                  + acm.attribute_values("title"))
        sim.prepare(corpus)
        pairs = [(str(a), str(b)) for a, b in
                 zip(dblp.attribute_values("title")[:25],
                     acm.attribute_values("title")[:25])
                 if a is not None and b is not None]
        # a typo pair where fuzzy token matching genuinely diverges
        # from the plain cosine, or this regression test proves nothing
        typo = [(str(dblp.attribute_values("title")[0]),
                 str(dblp.attribute_values("title")[0])[:-1] + "x")]
        pairs = typo + pairs
        assert sim.score_batch(pairs) == \
            [sim.similarity(a, b) for a, b in pairs]
        hard = TfIdfCosineSimilarity()
        hard.prepare(corpus)
        assert sim.score_batch(pairs) != hard.score_batch(pairs)

    def test_soft_tfidf_engine_run_uses_generic_path(self, dataset,
                                                     monkeypatch):
        """End-to-end: a SoftTFIDF match through the engine must score
        through the generic batch loop (same rows as pairwise), with
        the sparse kernel forbidden outright."""
        from repro.engine import sparse as sparse_module

        def exploding_kernel(*args, **kwargs):
            raise AssertionError("SoftTFIDF reached the sparse kernel")

        monkeypatch.setattr(sparse_module, "TfIdfKernel", exploding_kernel)
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        engine_rows = AttributeMatcher(
            "title", similarity=SoftTfIdfSimilarity(), threshold=0.3,
            engine=SERIAL).match(dblp, acm).to_rows()

        sim = SoftTfIdfSimilarity()
        sim.prepare(dblp.attribute_values("title")
                    + acm.attribute_values("title"))
        expected = []
        for id_a in dblp.ids():
            for id_b in acm.ids():
                score = sim.similarity(dblp.get(id_a).get("title"),
                                       acm.get(id_b).get("title"))
                if score >= 0.3 and score > 0.0:
                    expected.append((id_a, id_b, score))
        assert engine_rows == sorted(expected)


# ----------------------------------------------------------------------
# sparse kernel bit-exactness
# ----------------------------------------------------------------------

@needs_numpy
class TestSparseKernelBitExact:
    def test_identical_to_python_path_two_source(self, dataset,
                                                 monkeypatch):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        fast = AttributeMatcher("title", similarity="tfidf", threshold=0.0,
                                engine=SERIAL)
        fast_rows = fast.match(dblp, acm).to_rows()
        assert fast_rows  # non-trivial scenario

        monkeypatch.setattr(vectorized, "build_kernel",
                            lambda *args, **kwargs: None)
        slow = AttributeMatcher("title", similarity="tfidf", threshold=0.0,
                                engine=SERIAL)
        assert slow.match(dblp, acm).to_rows() == fast_rows

    def test_identical_to_python_path_self_matching(self, dataset,
                                                    monkeypatch):
        gs = dataset.gs.publications
        fast = AttributeMatcher("title", similarity="tfidf", threshold=0.2,
                                engine=SERIAL)
        fast_rows = fast.match(gs, gs).to_rows()
        monkeypatch.setattr(vectorized, "build_kernel",
                            lambda *args, **kwargs: None)
        slow = AttributeMatcher("title", similarity="tfidf", threshold=0.2,
                                engine=SERIAL)
        assert slow.match(gs, gs).to_rows() == fast_rows

    def test_parallel_sparse_path_identical(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        parallel = BatchMatchEngine(EngineConfig(workers=4, chunk_size=64))
        serial_rows = AttributeMatcher(
            "title", similarity="tfidf", threshold=0.2,
            engine=SERIAL).match(dblp, acm).to_rows()
        parallel_rows = AttributeMatcher(
            "title", similarity="tfidf", threshold=0.2,
            engine=parallel).match(dblp, acm).to_rows()
        assert serial_rows == parallel_rows

    def test_missing_and_empty_values(self, monkeypatch):
        domain = _source("L", ["alpha beta", None, "", "gamma delta"])
        range_ = _source("R", ["alpha beta", "gamma delta", None, ""])
        fast = AttributeMatcher("title", similarity="tfidf", threshold=0.0,
                                engine=SERIAL)
        fast_rows = fast.match(domain, range_).to_rows()
        monkeypatch.setattr(vectorized, "build_kernel",
                            lambda *args, **kwargs: None)
        slow = AttributeMatcher("title", similarity="tfidf", threshold=0.0,
                                engine=SERIAL)
        assert slow.match(domain, range_).to_rows() == fast_rows

    def test_orientation_symmetric(self, dataset):
        """The kernel may see a self-matching pair in either
        orientation (block-vectorized triangles expand in block
        order); scores must not depend on it."""
        import numpy as np

        gs = dataset.gs.publications
        sim = TfIdfCosineSimilarity()
        sim.prepare(gs.attribute_values("title"))
        kernel = build_tfidf_kernel(sim, gs, gs, "title", "title")
        assert kernel is not None
        n = min(len(gs), 40)
        rows_a, rows_b = [], []
        for i in range(n):
            for j in range(i + 1, n):
                rows_a.append(i)
                rows_b.append(j)
        forward = kernel.score_rows(np.asarray(rows_a), np.asarray(rows_b))
        backward = kernel.score_rows(np.asarray(rows_b), np.asarray(rows_a))
        assert (forward == backward).all()

    def test_memory_budget_refuses_oversized_index(self, dataset,
                                                   monkeypatch):
        from repro.engine import sparse as sparse_module

        monkeypatch.setattr(sparse_module, "MAX_INDEX_BYTES", 64)
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        sim = TfIdfCosineSimilarity()
        sim.prepare(dblp.attribute_values("title"))
        assert build_tfidf_kernel(sim, dblp, acm, "title", "title") is None


# ----------------------------------------------------------------------
# serial == sharded == balanced-sharded on a skewed dataset
# ----------------------------------------------------------------------

SKEW_BLOCKINGS = [
    KeyBlocking(),
    TokenBlocking(max_df=0.9),
    SortedNeighborhood(window=4),
    CanopyBlocking(loose=0.1, tight=0.5),
    FullCross(),
]
SKEW_IDS = ["KeyBlocking", "TokenBlocking", "SortedNeighborhood",
            "CanopyBlocking", "FullCross"]


class TestBalancedShardingEquivalence:
    """Rebalancing splits block groups serial execution never saw;
    results must stay byte-identical anyway — for the kernel paths
    (trigram, tfidf) and the generic scorer path (softtfidf, whose
    asymmetric scores also pin pair *orientation* through splits)."""

    @pytest.mark.parametrize("blocking", SKEW_BLOCKINGS, ids=SKEW_IDS)
    @pytest.mark.parametrize("similarity", ["trigram", "tfidf"])
    def test_two_source(self, skewed_sources, blocking, similarity):
        domain, range_ = skewed_sources
        rows = [
            AttributeMatcher("title", similarity=similarity, threshold=0.4,
                             blocking=blocking, engine=engine)
            .match(domain, range_).to_rows()
            for engine in (SERIAL, SHARDED, BALANCED, BALANCED_INLINE)
        ]
        assert rows[0]  # the skewed scenario is non-trivial
        assert rows[0] == rows[1] == rows[2] == rows[3]

    @pytest.mark.parametrize("blocking", SKEW_BLOCKINGS, ids=SKEW_IDS)
    @pytest.mark.parametrize("similarity", ["trigram", "tfidf"])
    def test_self_matching(self, skewed_sources, blocking, similarity):
        domain, _ = skewed_sources
        rows = [
            AttributeMatcher("title", similarity=similarity, threshold=0.5,
                             blocking=blocking, engine=engine)
            .match(domain, domain).to_rows()
            for engine in (SERIAL, SHARDED, BALANCED, BALANCED_INLINE)
        ]
        assert rows[0] == rows[1] == rows[2] == rows[3]

    def test_generic_scorer_path_with_balancing(self, skewed_sources):
        """softtfidf has no kernel *and* asymmetric scores: splitting a
        canonical triangle block must preserve serial orientation."""
        domain, _ = skewed_sources
        blocking = TokenBlocking(max_df=0.9)
        serial_rows = AttributeMatcher(
            "title", similarity="softtfidf", threshold=0.5,
            blocking=blocking, engine=SERIAL).match(domain, domain).to_rows()
        balanced_rows = AttributeMatcher(
            "title", similarity="softtfidf", threshold=0.5,
            blocking=blocking,
            engine=BALANCED_INLINE).match(domain, domain).to_rows()
        assert serial_rows == balanced_rows


# ----------------------------------------------------------------------
# rebalancing mechanics
# ----------------------------------------------------------------------

def _pair_union(shards):
    union = set()
    for shard in shards:
        union |= set(shard.pairs())
    return union


class TestRebalanceShards:
    def test_splits_the_long_tail(self, skewed_sources):
        domain, range_ = skewed_sources
        blocking = KeyBlocking()
        shards = blocking.shards(domain, range_, n_shards=8,
                                 domain_attribute="title",
                                 range_attribute="title")
        naive_costs = [shard.cost() for shard in shards]
        balanced = rebalance_shards(shards, 8)
        balanced_costs = [shard.cost() for shard in balanced]
        assert len(balanced) <= 8
        assert sum(balanced_costs) == sum(naive_costs)  # splits, exactly
        assert max(balanced_costs) < max(naive_costs)
        # the tail is bounded: no bin above ~2x the ideal share
        assert max(balanced_costs) <= 2 * (sum(naive_costs) // 8 + 1)
        assert _pair_union(balanced) == _pair_union(shards)

    def test_deterministic(self, skewed_sources):
        domain, range_ = skewed_sources
        blocking = TokenBlocking(max_df=0.9)

        def run():
            shards = blocking.shards(domain, range_, n_shards=6,
                                     domain_attribute="title",
                                     range_attribute="title")
            return [sorted(shard.pairs())
                    for shard in rebalance_shards(shards, 6)]

        assert run() == run()

    def test_unsplittable_shards_pass_through(self):
        shards = [IterableShard(lambda: [("a", "b")]),
                  IterableShard(lambda: [("c", "d")])]
        assert rebalance_shards(shards, 4) == shards  # all costs unknown

    def test_single_bin_is_identity(self):
        shards = [BlockShard(lambda: iter([IdBlock(["a"], ["x", "y"])]))]
        assert rebalance_shards(shards, 1) == shards

    def test_rejects_non_positive_bin_count(self):
        with pytest.raises(ValueError):
            rebalance_shards([], 0)

    def test_giant_rectangle_splits_pair_exactly(self):
        domain_ids = [f"d{i}" for i in range(40)]
        range_ids = [f"r{i}" for i in range(35)]
        shard = BlockShard(lambda: iter([IdBlock(domain_ids, range_ids)]))
        tiny = BlockShard(lambda: iter([IdBlock(["z"], ["w"])]))
        balanced = rebalance_shards([shard, tiny], 5)
        assert len(balanced) == 5
        assert _pair_union(balanced) == _pair_union([shard, tiny])
        costs = [s.cost() for s in balanced]
        assert max(costs) <= 2 * ((40 * 35 + 1) // 5 + 1)

    def test_giant_triangle_splits_pair_exactly(self):
        ids = [f"s{i}" for i in range(30)]
        shard = BlockShard(lambda: iter([IdBlock(ids, ids, triangle=True)]),
                           canonical=True)
        balanced = rebalance_shards([shard, BlockShard(
            lambda: iter([IdBlock(["z"], ["w"])]), canonical=True)], 4)
        union = {tuple(sorted(pair)) for pair in _pair_union(balanced)}
        expected = {tuple(sorted((a, b)))
                    for i, a in enumerate(ids) for b in ids[i + 1:]}
        expected.add(("w", "z"))
        assert union == expected
        # canonical orientation survives the triangle -> rect split
        for shard in balanced:
            for pair in shard.pairs():
                assert pair == tuple(sorted(pair))

    def test_explode_block_bounds_piece_size(self):
        block = IdBlock([f"d{i}" for i in range(50)],
                        [f"r{i}" for i in range(60)])
        pieces = list(_explode_block(block, 100))
        assert sum(piece.pair_count() for piece in pieces) == 3000
        assert max(piece.pair_count() for piece in pieces) <= 100

    def test_single_dominant_shard_still_splits(self):
        """Regression: a workload where one key dominates *everything*
        yields exactly one shard; balancing must still split it rather
        than serializing the whole run onto one worker."""
        ids = [f"s{i}" for i in range(200)]
        shard = BlockShard(lambda: iter([IdBlock(ids, ids, triangle=True)]))
        balanced = rebalance_shards([shard], 8)
        assert 4 <= len(balanced) <= 8  # split into several real bins
        costs = [s.cost() for s in balanced]
        total = 200 * 199 // 2
        assert sum(costs) == total
        assert max(costs) <= 2 * (total // 8 + 1)
        union = {tuple(sorted(pair)) for pair in _pair_union(balanced)}
        assert union == {tuple(sorted((a, b)))
                         for i, a in enumerate(ids) for b in ids[i + 1:]}

    def test_explode_triangle_uses_row_bands_not_per_row_rects(self):
        """Regression: triangle decomposition must stay
        O(pair_count / target) pieces with O(ids) materialized id
        references per band, not one sliced-tail rectangle per row."""
        n = 400
        ids = [f"s{i}" for i in range(n)]
        total = n * (n - 1) // 2
        target = total // 8
        pieces = list(_explode_block(IdBlock(ids, ids, triangle=True),
                                     target))
        assert sum(piece.pair_count() for piece in pieces) == total
        assert max(piece.pair_count() for piece in pieces) <= target
        # ~2 pieces per band (triangle + rectangle), nowhere near n
        assert len(pieces) <= 3 * 8 + 2
        materialized = sum(len(piece.domain_ids) + len(piece.range_ids)
                           for piece in pieces)
        assert materialized <= 6 * n * 8  # O(n) per band, not O(n^2)

    def test_composite_shard_chains_members(self):
        left = BlockShard(lambda: iter([IdBlock(["a"], ["x"])]))
        right = BlockShard(lambda: iter([IdBlock(["b"], ["y"])]))
        composite = CompositeShard([left, right])
        assert list(composite.pairs()) == [("a", "x"), ("b", "y")]
        chained = [(block.domain_ids, block.range_ids)
                   for block in composite.blocks()]
        assert chained == [(["a"], ["x"]), (["b"], ["y"])]
        assert composite.cost() == 2

    def test_composite_shard_without_uniform_blocks_streams_pairs(self):
        block = BlockShard(lambda: iter([IdBlock(["a"], ["x"])]))
        stream = IterableShard(lambda: [("b", "y")], cost=1)
        composite = CompositeShard([block, stream])
        assert composite.blocks() is None
        assert set(composite.pairs()) == {("a", "x"), ("b", "y")}


class TestEngineBalanceConfig:
    def test_config_default_off(self):
        assert EngineConfig().balance_shards is False

    def test_configure_default_engine_accepts_balance_flag(self):
        from repro.engine import (
            configure_default_engine,
            get_default_engine,
            set_default_engine,
        )

        try:
            engine = configure_default_engine(workers=2,
                                              shard_blocking=True,
                                              balance_shards=True)
            assert engine.config.balance_shards is True
            assert get_default_engine() is engine
        finally:
            set_default_engine(None)
