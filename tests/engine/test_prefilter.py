"""Per-spec threshold prefilter: byte-identical survivors, every combiner.

:func:`repro.engine.vectorized.build_multi_kernel` threads the
request's threshold into :class:`MultiSpecKernel`, which drops a pair
as soon as no remaining column could lift its combined score over the
threshold (per-combiner score upper bounds).  The load-bearing
property: under the engine's survivor filter (``score >= threshold``
and ``score > 0``) the prefiltered path keeps exactly the rows the
unfiltered path keeps, with byte-identical floats — for every built-in
combiner (avg/min/max/weighted, including the ``-0`` policies), across
missing-value policies.  Custom combiner subclasses have no bound
formula and must fall back to the unfiltered path unchanged.
"""

import random
from typing import Optional, Sequence

import pytest

from repro.core.operators.functions import (
    CombinationFunction,
    get_combination,
)
from repro.engine.request import AttributeSpec, MatchRequest
from repro.engine.vectorized import MultiSpecKernel, build_multi_kernel
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.sim.edit import LevenshteinSimilarity
from repro.sim.ngram import DiceNGram, TrigramSimilarity

numpy = pytest.importorskip("numpy")

WORDS = [f"tok{i}" for i in range(40)]


def _sources(seed=3, n_domain=50, n_range=70):
    rng = random.Random(seed)

    def record(source, id, i):
        source.add_record(
            id,
            title=" ".join(rng.sample(WORDS, 4)),
            venue=" ".join(rng.sample(WORDS, 2)) if i % 7 else None,
            year=str(1990 + i % 30) if i % 5 else None)

    domain = LogicalSource(PhysicalSource("A"), ObjectType("Publication"))
    range_ = LogicalSource(PhysicalSource("B"), ObjectType("Publication"))
    for i in range(n_domain):
        record(domain, f"d{i}", i)
    for i in range(n_range):
        record(range_, f"r{i}", i * 3 + 1)
    return domain, range_


def _specs():
    return [AttributeSpec("title", "title", TrigramSimilarity()),
            AttributeSpec("venue", "venue", DiceNGram()),
            AttributeSpec("year", "year", LevenshteinSimilarity())]


def _all_rows(domain, range_):
    rows_a = numpy.repeat(
        numpy.arange(len(domain.ids()), dtype=numpy.int64),
        len(range_.ids()))
    rows_b = numpy.tile(
        numpy.arange(len(range_.ids()), dtype=numpy.int64),
        len(domain.ids()))
    return rows_a, rows_b


def _assert_survivors_identical(combiner, missing, threshold):
    domain, range_ = _sources()
    request = MatchRequest(domain, range_, specs=_specs(),
                           combiner=combiner, missing=missing,
                           threshold=threshold)
    filtered = build_multi_kernel(request)
    unfiltered = build_multi_kernel(request)
    unfiltered._prefilter = None  # force the unfiltered reference path
    rows_a, rows_b = _all_rows(domain, range_)
    scores_f = filtered.score_rows(rows_a, rows_b)
    scores_u = unfiltered.score_rows(rows_a, rows_b)
    keep_f = (scores_f >= threshold) & (scores_f > 0.0)
    keep_u = (scores_u >= threshold) & (scores_u > 0.0)
    assert numpy.array_equal(keep_f, keep_u)
    # byte-identical floats for every survivor
    assert numpy.array_equal(
        scores_f[keep_f].view(numpy.uint64),
        scores_u[keep_u].view(numpy.uint64))
    return filtered


BUILTINS = ["avg", "avg0", "min", "min0", "max", "weighted", "weighted0"]


def _combiner(name):
    if name.startswith("weighted"):
        return get_combination(name, weights=[0.5, 0.3, 0.2])
    return get_combination(name)


class TestBuiltinCombiners:
    @pytest.mark.parametrize("name", BUILTINS)
    @pytest.mark.parametrize("missing", ["skip", "zero"])
    @pytest.mark.parametrize("threshold", [0.3, 0.6, 0.9])
    def test_survivors_byte_identical(self, name, missing, threshold):
        kernel = _assert_survivors_identical(_combiner(name), missing,
                                             threshold)
        assert kernel._prefilter is not None  # prefilter was active

    @pytest.mark.parametrize("name", ["avg", "weighted"])
    def test_prefilter_actually_drops_rows(self, name):
        kernel = _assert_survivors_identical(_combiner(name), "skip", 0.6)
        assert kernel.prefiltered > 0


class _MedianCombiner(CombinationFunction):
    """A custom per-row combiner with no vectorized bound formula."""

    name = "median"

    def combine(self, values: Sequence[Optional[float]]) \
            -> Optional[float]:
        present = sorted(value for value in values if value is not None)
        if not present:
            return None
        return present[len(present) // 2]


class TestFallbacks:
    def test_custom_combiner_disables_prefilter(self):
        kernel = _assert_survivors_identical(_MedianCombiner(), "skip",
                                             0.5)
        assert kernel._prefilter is None
        assert kernel.prefiltered == 0

    def test_zero_threshold_disables_prefilter(self):
        domain, range_ = _sources()
        request = MatchRequest(domain, range_, specs=_specs(),
                               combiner=_combiner("avg"), threshold=0.0)
        kernel = build_multi_kernel(request)
        assert kernel._prefilter is None

    def test_mismatched_weight_count_disables_prefilter(self):
        domain, range_ = _sources()
        combiner = get_combination("weighted", weights=[0.6, 0.4])
        request = MatchRequest(domain, range_, specs=_specs()[:2],
                               combiner=combiner, threshold=0.5)
        kernel = build_multi_kernel(request)
        assert isinstance(kernel, MultiSpecKernel)
        assert kernel._prefilter is not None
        # break the alignment: three columns, two weights — the bound
        # formula no longer applies, so the prefilter must disable
        # itself (combine() semantics stay whatever the scalar path
        # defines; the kernel must not guess)
        request3 = MatchRequest(domain, range_, specs=_specs(),
                                combiner=combiner, threshold=0.5)
        kernel3 = build_multi_kernel(request3)
        assert kernel3._prefilter is None

    def test_single_column_has_no_prefilter(self):
        domain, range_ = _sources()
        request = MatchRequest(domain, range_, specs=_specs()[:1],
                               combiner=_combiner("avg"), threshold=0.5)
        kernel = build_multi_kernel(request)
        if isinstance(kernel, MultiSpecKernel):
            assert kernel._prefilter is None
