"""Tests for the engine autotuner (``EngineConfig(auto=True)``).

The autotuner replaces three hand-set knobs — ``chunk_size``,
``n_shards``, ``balance_shards`` — with observed-throughput chunk
sizing, cost-derived bin counts, and dispersion-driven rebalancing.
Every decision it makes is a pure performance knob, so the load-bearing
property is unchanged results; the decision logic itself is pinned
through the pure :func:`repro.engine.shards.autotune_plan` kernel.
"""

from __future__ import annotations

import pytest

from repro import AttributeMatcher
from repro.blocking import KeyBlocking, TokenBlocking
from repro.engine import AdaptiveChunker, BatchMatchEngine, EngineConfig
from repro.engine.chunks import ADAPTIVE_MAX_CHUNK, ADAPTIVE_MIN_CHUNK
from repro.engine.engine import AUTO_MAX_WORKERS, autotune_workers
from repro.engine.request import AttributeSpec, MatchRequest
from repro.engine.shards import (
    AUTO_SKEW_FACTOR,
    SHARD_TARGET_SECONDS,
    adapt_n_shards,
    autotune_plan,
    build_shard_runner,
)
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.sim.ngram import TrigramSimilarity

SERIAL = BatchMatchEngine(EngineConfig(workers=1, chunk_size=64))
AUTO = BatchMatchEngine(EngineConfig(workers=4, auto=True))
AUTO_INLINE = BatchMatchEngine(EngineConfig(workers=1, auto=True))


def _skewed_source(name: str, count: int):
    words = ["adaptive", "stream", "schema", "query", "index",
             "cache", "graph", "join", "view", "cube"]
    source = LogicalSource(PhysicalSource(name), ObjectType("Publication"))
    for i in range(count):
        first = "popular" if i % 2 == 0 else words[i % len(words)]
        tail = " ".join(words[(i * 7 + j) % len(words)]
                        for j in range(1, 5))
        source.add_record(f"{name.lower()}{i}",
                          title=f"{first} {tail} {i % 97}q")
    return source


class TestAutotunePlan:
    def test_dominant_shard_triggers_balancing(self):
        balance, _ = autotune_plan([525_000, 105_000], workers=4)
        assert balance

    def test_flat_distribution_stays_naive(self):
        balance, _ = autotune_plan([100] * 16, workers=4)
        assert not balance

    def test_single_oversized_shard_is_worst_skew(self):
        balance, _ = autotune_plan([1_000_000], workers=4)
        assert balance

    def test_serial_run_never_balances(self):
        # with one worker there is no makespan to cut
        balance, _ = autotune_plan([1_000_000, 10], workers=1)
        assert not balance

    def test_unknown_costs_disable_balancing(self):
        balance, bins = autotune_plan([None, None, None], workers=4)
        assert not balance
        assert bins == 16

    def test_unknown_costs_assumed_average(self):
        # unknowns fill in at the known mean, so a shard dominating
        # the known costs still reads as skew
        balance, _ = autotune_plan([1_000_000, 10, 10, None], workers=4)
        assert balance
        # ...while a lone known cost among unknowns reads as flat
        balance, _ = autotune_plan([1_000_000, None, None, None],
                                   workers=4)
        assert not balance

    def test_explicit_n_shards_is_honored(self):
        _, bins = autotune_plan([1_000_000, 10], workers=4, n_shards=6)
        assert bins == 6

    def test_bin_count_scales_with_total_cost(self):
        _, small = autotune_plan([1_000] * 8, workers=4)
        _, large = autotune_plan([10_000_000] * 8, workers=4)
        assert small == 16          # floor: 4 per worker
        assert large == 64          # ceiling: 16 per worker

    def test_threshold_boundary(self):
        # exactly at the factor: max * workers == factor * total
        total = 1000
        hot = int(AUTO_SKEW_FACTOR * total / 4)
        balance, _ = autotune_plan([hot, total - hot], workers=4)
        assert balance


class TestWorkersAutotune:
    """``EngineConfig(auto=True)`` derives the pool size from the CPU
    count when ``workers`` is left unset; explicit values always win."""

    @pytest.mark.parametrize("cpus,expected", [
        (1, 1),          # single core: stay serial
        (2, 1),          # leave one core for the parent
        (4, 3),
        (8, 7),
        (9, 8),          # capped at AUTO_MAX_WORKERS
        (64, AUTO_MAX_WORKERS),
    ])
    def test_decision(self, cpus, expected):
        assert autotune_workers(cpus) == expected

    def test_defaults_to_machine_cpu_count(self):
        import os
        assert autotune_workers() \
            == autotune_workers(os.cpu_count() or 1)

    def test_auto_config_autotunes_workers(self):
        assert EngineConfig(auto=True).workers == autotune_workers()

    def test_unset_workers_without_auto_stay_serial(self):
        assert EngineConfig().workers == 1

    def test_explicit_workers_beat_the_autotuner(self):
        assert EngineConfig(workers=2, auto=True).workers == 2
        assert EngineConfig(workers=1, auto=True).workers == 1

    def test_invalid_workers_still_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(workers=0, auto=True)

    def test_configure_default_engine_autotunes(self):
        from repro.engine import (
            configure_default_engine,
            set_default_engine,
        )
        try:
            engine = configure_default_engine(auto=True)
            assert engine.config.workers == autotune_workers()
            engine = configure_default_engine(workers=2, auto=True)
            assert engine.config.workers == 2
            engine = configure_default_engine()
            assert engine.config.workers == 1
        finally:
            set_default_engine(None)


class TestAdaptiveChunker:
    def test_chunks_partition_the_stream(self):
        chunker = AdaptiveChunker(range(1000), 128)
        items = [item for chunk in chunker for item in chunk]
        assert items == list(range(1000))

    def test_fast_chunks_grow_toward_the_ceiling(self):
        chunker = AdaptiveChunker(range(10**6), 512)
        for chunk in chunker:
            chunker.observe(len(chunk), 1e-6)
            if chunker.size == ADAPTIVE_MAX_CHUNK:
                break
        assert chunker.size == ADAPTIVE_MAX_CHUNK

    def test_slow_chunks_shrink_toward_the_floor(self):
        chunker = AdaptiveChunker(range(10**6), 8192)
        for chunk in chunker:
            chunker.observe(len(chunk), 30.0)
            if chunker.size == ADAPTIVE_MIN_CHUNK:
                break
        assert chunker.size == ADAPTIVE_MIN_CHUNK

    def test_on_target_chunks_hold_steady(self):
        chunker = AdaptiveChunker(range(10**5), 2048)
        iterator = iter(chunker)
        next(iterator)
        chunker.observe(2048, chunker.target_seconds)
        assert chunker.size == 2048

    def test_rejects_bad_initial_size(self):
        with pytest.raises(ValueError):
            AdaptiveChunker([], 0)

    def test_resuming_iteration_continues_the_stream(self):
        # the engine resumes the same chunker after a parallel fallback
        chunker = AdaptiveChunker(range(100), 30)
        first = next(iter(chunker))
        rest = [item for chunk in chunker for item in chunk]
        assert first + rest == list(range(100))


class TestAutoExecution:
    @pytest.mark.parametrize("blocking", [None, KeyBlocking(),
                                          TokenBlocking(max_df=0.8)],
                             ids=["cross", "key", "token"])
    def test_auto_matches_serial_results(self, dataset, blocking):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        serial = AttributeMatcher("title", similarity="trigram",
                                  threshold=0.4, blocking=blocking,
                                  engine=SERIAL)
        auto = AttributeMatcher("title", similarity="trigram",
                                threshold=0.4, blocking=blocking,
                                engine=AUTO)
        rows = serial.match(dblp, acm).to_rows()
        assert rows == auto.match(dblp, acm).to_rows()
        assert rows

    def test_auto_inline_matches_serial_results(self, dataset):
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        serial = AttributeMatcher("title", similarity="levenshtein",
                                  threshold=0.3, engine=SERIAL)
        auto = AttributeMatcher("title", similarity="levenshtein",
                                threshold=0.3, engine=AUTO_INLINE)
        assert serial.match(dblp, acm).to_rows() \
            == auto.match(dblp, acm).to_rows()

    def test_auto_rebalances_the_skewed_plan(self):
        """On a dominant-key workload the auto plan must match the
        hand-tuned balance_shards=True plan: same shard count, no
        dominant shard left."""
        domain = _skewed_source("SKL", 700)
        range_ = _skewed_source("SKR", 660)
        sim = TrigramSimilarity()
        request = MatchRequest(
            domain=domain, range=range_,
            specs=[AttributeSpec("title", "title", sim)],
            threshold=0.7, blocking=KeyBlocking())
        hand = BatchMatchEngine(EngineConfig(workers=4,
                                             shard_blocking=True,
                                             balance_shards=True))
        hand._prepare(request)
        hand_shards, _ = build_shard_runner(hand, request)
        auto_shards, _ = build_shard_runner(AUTO, request)
        naive_shards, _ = build_shard_runner(
            BatchMatchEngine(EngineConfig(workers=4, shard_blocking=True)),
            request)
        hand_max = max(shard.cost() for shard in hand_shards)
        auto_max = max(shard.cost() for shard in auto_shards)
        naive_max = max(shard.cost() for shard in naive_shards)
        assert auto_max <= hand_max * 1.2
        assert auto_max < naive_max

    def test_auto_leaves_flat_plans_naive(self, dataset):
        """An unskewed token-blocked plan must not pay the splitting
        pass: the auto shard list is the naive shard list."""
        dblp, acm = dataset.dblp.publications, dataset.acm.publications
        sim = TrigramSimilarity()
        request = MatchRequest(
            domain=dblp, range=acm,
            specs=[AttributeSpec("title", "title", sim)],
            threshold=0.4, blocking=TokenBlocking(max_df=0.5))
        naive = BatchMatchEngine(EngineConfig(workers=4,
                                              shard_blocking=True))
        naive._prepare(request)
        naive_shards, _ = build_shard_runner(naive, request)
        auto_shards, _ = build_shard_runner(AUTO, request)
        naive_costs = [shard.cost() for shard in naive_shards]
        if max(naive_costs) * 4 < AUTO_SKEW_FACTOR * sum(naive_costs):
            assert [shard.cost() for shard in auto_shards] == naive_costs

    def test_explicit_balance_wins_over_auto(self):
        """balance_shards=True + auto=True always balances, skew or
        not — explicit knobs win."""
        domain = _skewed_source("SKL", 100)
        sim = TrigramSimilarity()
        request = MatchRequest(
            domain=domain, range=domain,
            specs=[AttributeSpec("title", "title", sim)],
            threshold=0.7, blocking=KeyBlocking())
        both = BatchMatchEngine(EngineConfig(workers=2, auto=True,
                                             balance_shards=True,
                                             shard_blocking=True))
        both._prepare(request)
        plan = build_shard_runner(both, request)
        assert plan is not None

    def test_config_round_trip(self):
        config = EngineConfig(workers=2, auto=True)
        assert config.auto
        assert not EngineConfig().auto

    def test_configure_default_engine_accepts_auto(self):
        from repro.engine import (
            configure_default_engine,
            get_default_engine,
            set_default_engine,
        )
        try:
            engine = configure_default_engine(workers=2, auto=True)
            assert engine.config.auto
            assert get_default_engine() is engine
        finally:
            set_default_engine(None)


class TestAdaptNShards:
    """Online n_shards adaptation from measured shard durations."""

    def test_slow_shards_split_finer(self):
        assert adapt_n_shards(8, [1.0, 1.2], workers=2) == 16

    def test_fast_shards_merge_coarser(self):
        assert adapt_n_shards(8, [0.001] * 8, workers=2) == 4

    def test_on_target_unchanged(self):
        assert adapt_n_shards(8, [SHARD_TARGET_SECONDS], workers=2) == 8

    def test_clamped_to_worker_multiples(self):
        assert adapt_n_shards(40, [10.0], workers=2) == 32  # 16x cap
        assert adapt_n_shards(2, [0.0001], workers=2) == 2  # floor

    def test_factor_clamped_per_run(self):
        # a single pathological measurement moves the count at most 2x
        assert adapt_n_shards(8, [3600.0], workers=1) == 16

    def test_no_measurements_no_adjustment(self):
        assert adapt_n_shards(8, [], workers=2) is None
        assert adapt_n_shards(0, [1.0], workers=2) is None
        assert adapt_n_shards(8, [0.0], workers=2) is None

    def test_engine_feeds_back_and_results_identical(self):
        domain = _skewed_source("ADP", 120)
        sim = TrigramSimilarity()

        def request():
            return MatchRequest(
                domain=domain, range=domain,
                specs=[AttributeSpec("title", "title", sim)],
                threshold=0.5, blocking=TokenBlocking())

        auto = BatchMatchEngine(EngineConfig(workers=1, auto=True))
        assert auto._adapted_n_shards is None
        first = auto.execute(request())
        # tiny shards on a tiny corpus: the adapter recorded a count
        adapted = auto._adapted_n_shards
        assert adapted is not None and adapted >= 1
        second = auto.execute(request())  # runs with the adapted count
        reference = SERIAL.execute(request())
        assert sorted(first.to_rows()) == sorted(reference.to_rows())
        assert sorted(second.to_rows()) == sorted(reference.to_rows())

    def test_explicit_n_shards_wins_over_adaptation(self):
        domain = _skewed_source("ADX", 80)
        sim = TrigramSimilarity()
        request = MatchRequest(
            domain=domain, range=domain,
            specs=[AttributeSpec("title", "title", sim)],
            threshold=0.5, blocking=TokenBlocking())
        pinned = BatchMatchEngine(EngineConfig(workers=1, auto=True,
                                               n_shards=3))
        pinned._adapted_n_shards = 11  # must be ignored
        pinned._prepare(request)
        shards, _ = build_shard_runner(pinned, request)
        assert len(shards) <= 3


class TestCliAutoFlag:
    def test_cli_wires_auto_into_default_engine(self, monkeypatch):
        from repro import __main__ as cli
        from repro.engine import get_default_engine, set_default_engine

        monkeypatch.setattr(cli, "_command_stats", lambda args: 0)
        try:
            assert cli.main(["--auto", "stats"]) == 0
            assert get_default_engine().config.auto
            assert cli.main(["stats"]) == 0
            assert not get_default_engine().config.auto
        finally:
            set_default_engine(None)
