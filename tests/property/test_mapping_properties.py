"""Property-based tests for the Mapping data structure."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import Mapping

ids = st.text(alphabet="abcdefgh", min_size=1, max_size=3)
sims = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
correspondences = st.lists(st.tuples(ids, ids, sims), max_size=40)


def build(rows, domain="A", range_="B"):
    return Mapping.from_correspondences(domain, range_, rows)


@given(correspondences)
def test_indexes_stay_consistent(rows):
    mapping = build(rows)
    # by_domain and by_range always describe the same correspondence set
    from_domain = {(a, b, s) for a, row in mapping.by_domain.items()
                   for b, s in row.items()}
    from_range = {(a, b, s) for b, row in mapping.by_range.items()
                  for a, s in row.items()}
    assert from_domain == from_range
    assert len(mapping) == len(from_domain)


@given(correspondences)
def test_inverse_is_involution(rows):
    mapping = build(rows)
    assert mapping.inverse().inverse().to_rows() == mapping.to_rows()


@given(correspondences)
def test_inverse_preserves_degrees(rows):
    mapping = build(rows)
    inverse = mapping.inverse()
    for domain_id in mapping.domain_ids():
        assert mapping.out_degree(domain_id) == inverse.in_degree(domain_id)


@given(correspondences)
def test_conflict_max_keeps_maximum(rows):
    mapping = build(rows)
    best = {}
    for a, b, s in rows:
        key = (a, b)
        best[key] = max(best.get(key, 0.0), s)
    for (a, b), expected in best.items():
        assert mapping.get(a, b) == expected


@given(correspondences, sims)
def test_filter_threshold_monotone(rows, threshold):
    mapping = build(rows)
    filtered = mapping.filter(lambda c: c.similarity >= threshold)
    assert len(filtered) <= len(mapping)
    assert all(s >= threshold for _, _, s in filtered.to_rows())


@given(correspondences)
def test_copy_equals_original(rows):
    mapping = build(rows)
    assert mapping.copy() == mapping


@given(correspondences, st.sets(ids, max_size=5))
def test_restrict_domain_is_projection(rows, keep):
    mapping = build(rows)
    restricted = mapping.restrict_domain(keep)
    assert restricted.domain_ids() <= keep
    for a, b, s in restricted.to_rows():
        assert mapping.get(a, b) == s


@given(st.lists(st.tuples(ids, ids, sims), max_size=30))
@settings(max_examples=50)
def test_without_identity_removes_only_diagonal(rows):
    mapping = Mapping.from_correspondences("A", "A", rows)
    cleaned = mapping.without_identity()
    assert all(a != b for a, b in cleaned.pairs())
    diagonal = sum(1 for a, b in mapping.pairs() if a == b)
    assert len(cleaned) == len(mapping) - diagonal
