"""Property-based tests for the script language front end."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.script.lexer import TokenType, tokenize
from repro.script.nodes import Assignment, Call
from repro.script.parser import parse

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True) \
    .filter(lambda s: s.upper() not in ("PROCEDURE", "RETURN", "END"))
variables = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True)
numbers = st.floats(min_value=0, max_value=1000, allow_nan=False,
                    allow_infinity=False).map(lambda f: round(f, 3))


@st.composite
def call_expressions(draw, depth=0):
    """Random call expression source text + expected argument count."""
    name = draw(identifiers)
    argument_count = draw(st.integers(min_value=0, max_value=4))
    arguments = []
    for _ in range(argument_count):
        choice = draw(st.integers(min_value=0, max_value=3 if depth < 2 else 2))
        if choice == 0:
            arguments.append(f"${draw(variables)}")
        elif choice == 1:
            arguments.append(str(draw(numbers)))
        elif choice == 2:
            arguments.append(draw(identifiers))
        else:
            inner, _ = draw(call_expressions(depth=depth + 1))
            arguments.append(inner)
    return f"{name}({', '.join(arguments)})", argument_count


@given(call_expressions())
@settings(max_examples=80)
def test_generated_calls_parse(data):
    source, argument_count = data
    program = parse(f"$X = {source}")
    statement = program.statements[0]
    assert isinstance(statement, Assignment)
    assert isinstance(statement.expression, Call)
    assert len(statement.expression.arguments) == argument_count


@given(st.lists(st.tuples(variables, call_expressions()),
                min_size=1, max_size=6))
@settings(max_examples=40)
def test_generated_programs_parse(statements):
    source = "\n".join(f"${target} = {expression}"
                       for target, (expression, _) in statements)
    program = parse(source)
    assert len(program.statements) == len(statements)
    targets = [statement.target for statement in program.statements]
    assert targets == [target for target, _ in statements]


@given(variables, identifiers, numbers)
@settings(max_examples=60)
def test_token_stream_structure(variable, identifier, number):
    source = f"${variable} = {identifier}({number})"
    tokens = tokenize(source)
    types = [token.type for token in tokens]
    assert types[:5] == [TokenType.VARIABLE, TokenType.EQUALS,
                         TokenType.IDENTIFIER, TokenType.LPAREN,
                         TokenType.NUMBER]
    values = {token.type: token.value for token in tokens}
    assert values[TokenType.VARIABLE] == variable
    assert values[TokenType.IDENTIFIER] == identifier


@given(st.text(alphabet=" \t\n#", max_size=30))
@settings(max_examples=40)
def test_whitespace_and_comments_never_crash(source):
    program = parse(source)
    assert program.statements == []
