"""Property-based round-trip tests for persistence layers.

Any mapping must survive SQLite (repository) and CSV (io) round trips
bit-for-bit in structure and to float precision in similarities.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import Mapping, MappingKind
from repro.model.io import mapping_to_csv_text, read_mapping_csv
from repro.model.repository import MappingRepository

ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=8,
).filter(lambda s: s.strip() == s and "," not in s and '"' not in s)
sims = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                 allow_subnormal=False)
rows = st.lists(st.tuples(ids, ids, sims), max_size=25)
kinds = st.sampled_from([MappingKind.SAME, MappingKind.ASSOCIATION])


@given(rows=rows, kind=kinds)
@settings(max_examples=50, deadline=None)
def test_repository_round_trip(rows, kind):
    mapping = Mapping.from_correspondences("A.X", "B.Y", rows, kind=kind)
    with MappingRepository(":memory:") as repository:
        repository.save("probe", mapping)
        loaded = repository.load("probe")
    assert loaded.domain == mapping.domain
    assert loaded.range == mapping.range
    assert loaded.kind == mapping.kind
    assert loaded.pairs() == mapping.pairs()
    for a, b, s in mapping.to_rows():
        assert abs(loaded.get(a, b) - s) < 1e-9


@given(rows=rows)
@settings(max_examples=50, deadline=None)
def test_csv_round_trip(rows):
    mapping = Mapping.from_correspondences("A.X", "B.Y", rows)
    text = mapping_to_csv_text(mapping)
    loaded = read_mapping_csv(io.StringIO(text), domain="A.X", range="B.Y")
    assert loaded.pairs() == mapping.pairs()
    for a, b, s in mapping.to_rows():
        # %g formatting keeps ~6 significant digits
        assert abs(loaded.get(a, b) - s) < 1e-5


@given(rows=rows)
@settings(max_examples=30, deadline=None)
def test_repository_overwrite_is_replacement(rows):
    first = Mapping.from_correspondences("A.X", "B.Y", rows)
    second = Mapping.from_correspondences("A.X", "B.Y",
                                          [("only", "row", 0.5)])
    with MappingRepository(":memory:") as repository:
        repository.save("probe", first)
        repository.save("probe", second)
        loaded = repository.load("probe")
    assert loaded.pairs() == {("only", "row")}
