"""Property-based tests for similarity functions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.affix import AffixSimilarity
from repro.sim.edit import (
    LevenshteinSimilarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
)
from repro.sim.hybrid import TokenJaccardSimilarity
from repro.sim.ngram import TrigramSimilarity

texts = st.text(alphabet="abcdefg hi", min_size=0, max_size=20)
words = st.text(alphabet="abcdefg", min_size=1, max_size=12)

ALL_SIMS = [TrigramSimilarity(), LevenshteinSimilarity(),
            AffixSimilarity(), TokenJaccardSimilarity()]


@pytest.mark.parametrize("sim", ALL_SIMS, ids=lambda s: s.name)
@given(a=texts, b=texts)
@settings(max_examples=60)
def test_range_and_symmetry(sim, a, b):
    forward = sim(a, b)
    backward = sim(b, a)
    assert 0.0 <= forward <= 1.0
    assert forward == pytest.approx(backward)


@pytest.mark.parametrize("sim", ALL_SIMS, ids=lambda s: s.name)
@given(a=texts)
@settings(max_examples=60)
def test_reflexive_on_nonempty_normalized(sim, a):
    normalized = " ".join(a.split())
    if normalized.strip():
        assert sim(normalized, normalized) == pytest.approx(1.0)


@given(a=words, b=words, c=words)
@settings(max_examples=60)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein_distance(a, c) <= (
        levenshtein_distance(a, b) + levenshtein_distance(b, c))


@given(a=words, b=words)
def test_levenshtein_bounds(a, b):
    distance = levenshtein_distance(a, b)
    assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))


@given(a=words, b=words)
def test_jaro_winkler_dominates_jaro(a, b):
    assert jaro_winkler_similarity(a, b) >= jaro_similarity(a, b) - 1e-12


@given(a=words)
def test_single_typo_never_destroys_trigram(a):
    if len(a) >= 6:
        mutated = "z" + a[1:]
        assert TrigramSimilarity()(a, mutated) > 0.4
