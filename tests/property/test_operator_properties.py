"""Property-based tests for merge, compose and selection invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import Mapping
from repro.core.operators.compose import compose
from repro.core.operators.merge import merge
from repro.core.operators.selection import BestNSelection, ThresholdSelection

ids = st.text(alphabet="abcde", min_size=1, max_size=2)
sims = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
rows = st.lists(st.tuples(ids, ids, sims), min_size=0, max_size=25)


def mapping_ab(data):
    return Mapping.from_correspondences("A", "B", data)


@given(rows, rows)
def test_merge_similarities_bounded(left_rows, right_rows):
    left, right = mapping_ab(left_rows), mapping_ab(right_rows)
    for function in ("avg", "min", "max", "avg0"):
        merged = merge([left, right], function)
        assert all(0.0 <= s <= 1.0 for _, _, s in merged.to_rows())


@given(rows, rows)
def test_merge_pair_set_relations(left_rows, right_rows):
    left, right = mapping_ab(left_rows), mapping_ab(right_rows)
    union_pairs = left.pairs() | right.pairs()
    intersection_pairs = left.pairs() & right.pairs()
    assert merge([left, right], "max").pairs() == union_pairs
    assert merge([left, right], "min0").pairs() == intersection_pairs
    assert merge([left, right], "avg").pairs() == union_pairs


@given(rows, rows)
def test_merge_commutative_for_symmetric_functions(left_rows, right_rows):
    left, right = mapping_ab(left_rows), mapping_ab(right_rows)
    for function in ("avg", "min", "max"):
        forward = merge([left, right], function)
        backward = merge([right, left], function)
        assert forward.to_rows() == backward.to_rows()


@given(rows, rows)
def test_merge_min_le_avg_le_max(left_rows, right_rows):
    left, right = mapping_ab(left_rows), mapping_ab(right_rows)
    low = merge([left, right], "min")
    mid = merge([left, right], "avg")
    high = merge([left, right], "max")
    for a, b, s in mid.to_rows():
        assert low.get(a, b) - 1e-12 <= s <= high.get(a, b) + 1e-12


@given(rows, rows)
def test_merge_prefer_keeps_preferred_intact(left_rows, right_rows):
    left, right = mapping_ab(left_rows), mapping_ab(right_rows)
    merged = merge([left, right], "prefer", prefer=0)
    for a, b, s in left.to_rows():
        assert merged.get(a, b) == s
    # added pairs only for uncovered domain objects
    for a, _b in merged.pairs() - left.pairs():
        assert a not in left.domain_ids()


@given(rows, rows)
@settings(max_examples=60)
def test_compose_bounded_and_connected(left_rows, right_rows):
    left = Mapping.from_correspondences("A", "C", left_rows)
    right = Mapping.from_correspondences("C", "B", right_rows)
    for aggregate in ("avg", "min", "max", "relative",
                      "relative_left", "relative_right", "sum"):
        composed = compose(left, right, "min", aggregate)
        for a, b, s in composed.to_rows():
            assert 0.0 < s <= 1.0
            # every output pair is witnessed by at least one path
            witnessed = any(
                right.get(c, b) is not None
                for c in left.range_ids_of(a)
            )
            assert witnessed


@given(rows, rows)
@settings(max_examples=60)
def test_compose_relative_le_max(left_rows, right_rows):
    left = Mapping.from_correspondences("A", "C", left_rows)
    right = Mapping.from_correspondences("C", "B", right_rows)
    relative = compose(left, right, "min", "relative")
    maximal = compose(left, right, "min", "max")
    for a, b, s in relative.to_rows():
        assert s <= maximal.get(a, b) + 1e-12


@given(rows, sims)
def test_threshold_idempotent(data, threshold):
    mapping = mapping_ab(data)
    selection = ThresholdSelection(threshold)
    once = selection.apply(mapping)
    twice = selection.apply(once)
    assert once.to_rows() == twice.to_rows()


@given(rows, st.integers(min_value=1, max_value=3))
def test_best_n_bounds_degree_up_to_ties(data, n):
    mapping = mapping_ab(data)
    selected = BestNSelection(n, side="domain").apply(mapping)
    for domain_id in selected.domain_ids():
        row = selected.range_ids_of(domain_id)
        if len(row) > n:
            # overflow is only allowed through ties at the cutoff
            ranked = sorted(row.values(), reverse=True)
            assert ranked[n - 1] == ranked[-1]


@given(rows)
def test_best1_subset_of_input(data):
    mapping = mapping_ab(data)
    selected = BestNSelection(1).apply(mapping)
    assert selected.pairs() <= mapping.pairs()
