"""Tests for the ``python -m repro`` command-line interface."""


import json
import threading
import urllib.request

import pytest

from repro.__main__ import main


class TestStats:
    def test_prints_table1(self, capsys):
        assert main(["--scale", "tiny", "stats"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "DBLP" in output


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["--scale", "tiny", "experiments", "table4"]) == 0
        output = capsys.readouterr().out
        assert "Table 4" in output
        assert "neighborhood" in output

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["--scale", "tiny", "experiments", "table42"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_extension_runs(self, capsys):
        assert main(["--scale", "tiny", "experiments",
                     "self-mapping"]) == 0
        assert "duplicate clusters" in capsys.readouterr().out


class TestFigures:
    def test_all_figures_match(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "all figures match the paper: True" in output


class TestExport:
    def test_exports_mapping_tables(self, tmp_path, capsys):
        out = tmp_path / "mappings"
        assert main(["--scale", "tiny", "export", "--out", str(out)]) == 0
        files = sorted(path.name for path in out.glob("*.csv"))
        assert any(name.startswith("DBLP_PubAuthor") for name in files)
        assert any(name.startswith("gold_publications") for name in files)

    def test_exported_tables_reimportable(self, tmp_path):
        from repro.model.io import read_mapping_csv
        out = tmp_path / "mappings"
        main(["--scale", "tiny", "export", "--out", str(out)])
        path = next(out.glob("DBLP_CoAuthor.csv"))
        mapping = read_mapping_csv(path, domain="DBLP.Author",
                                   range="DBLP.Author")
        assert len(mapping) > 0


class TestSeedScale:
    def test_seed_changes_world(self, capsys):
        main(["--scale", "tiny", "--seed", "1", "stats"])
        first = capsys.readouterr().out
        main(["--scale", "tiny", "--seed", "2", "stats"])
        second = capsys.readouterr().out
        assert first != second


class TestServe:
    def test_serve_command_answers_requests(self, capsys, monkeypatch):
        """``repro serve`` binds the HTTP service over the generated
        reference; drive one /match round trip, then shut down."""
        from repro.serve import http as serve_http

        answers = {}
        real_build_server = serve_http.build_server

        def build_and_probe(service, host, port):
            server = real_build_server(service, host, port)

            def probe():
                try:
                    bound_host, bound_port = server.server_address[:2]
                    title = service.index.get(
                        service.index.ids()[0]).get("title")
                    body = json.dumps({"record": {
                        "id": "probe", "attributes": {"title": title}}})
                    request = urllib.request.Request(
                        f"http://{bound_host}:{bound_port}/v1/match",
                        data=body.encode(),
                        headers={"Content-Type": "application/json"})
                    with urllib.request.urlopen(
                            request, timeout=10) as response:
                        answers["match"] = json.loads(response.read())
                finally:
                    server.shutdown()  # a dead probe must not hang serve

            threading.Thread(target=probe, daemon=True).start()
            return server

        monkeypatch.setattr(serve_http, "build_server", build_and_probe)
        assert main(["--scale", "tiny", "serve", "--port", "0",
                     "--threshold", "0.9"]) == 0
        output = capsys.readouterr().out
        assert "serving DBLP.Publication" in output
        matches = answers["match"]["matches"]["probe"]
        assert matches and matches[0][1] == 1.0

    def test_serve_flag_validation(self, capsys):
        assert main(["--workers", "0", "stats"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["--scale", "tiny", "serve", "--threshold", "1.5"]) == 2
        assert "--threshold" in capsys.readouterr().err
        assert main(["--scale", "tiny", "serve",
                     "--max-candidates", "-1"]) == 2
        assert "--max-candidates" in capsys.readouterr().err


class TestServeKnobFlags:
    def test_new_serve_knobs_parse_with_defaults(self):
        from repro.__main__ import _build_parser

        args = _build_parser().parse_args(["serve"])
        assert args.missing == "skip"
        assert args.cache_size == 1024
        assert args.compact_ratio == 0.25
        assert args.compact_min == 64

    def test_new_serve_knobs_accept_overrides(self):
        from repro.__main__ import _build_parser

        args = _build_parser().parse_args(
            ["serve", "--missing", "zero", "--cache-size", "0",
             "--compact-ratio", "0.5", "--compact-min", "128"])
        assert args.missing == "zero"
        assert args.cache_size == 0
        assert args.compact_ratio == 0.5
        assert args.compact_min == 128

    def test_missing_flag_rejects_unknown_policy(self, capsys):
        from repro.__main__ import _build_parser

        with pytest.raises(SystemExit):
            _build_parser().parse_args(["serve", "--missing", "explode"])

    def test_lint_subcommand_accepts_cache_flags(self):
        from repro.__main__ import _build_parser

        args = _build_parser().parse_args(
            ["lint", "--cache", "scratch.json", "--no-cache"])
        assert args.lint_cache == "scratch.json"
        assert args.lint_no_cache is True


class TestEngineFlags:
    def test_n_shards_flag_configures_default_engine(self, capsys):
        from repro.engine import get_default_engine, set_default_engine

        try:
            assert main(["--scale", "tiny", "--workers", "2",
                         "--shard-blocking", "--n-shards", "3",
                         "experiments", "table2"]) == 0
            engine = get_default_engine()
            assert engine.config.n_shards == 3
            assert "Table 2" in capsys.readouterr().out
        finally:
            set_default_engine(None)

    def test_n_shards_flag_rejects_non_positive(self, capsys):
        assert main(["--n-shards", "0", "stats"]) == 2
        assert "--n-shards" in capsys.readouterr().err

    def test_shard_blocking_flag_configures_default_engine(self, capsys):
        from repro.engine import get_default_engine, set_default_engine

        try:
            assert main(["--scale", "tiny", "--workers", "2",
                         "--shard-blocking", "experiments", "table2"]) == 0
            engine = get_default_engine()
            assert engine.config.workers == 2
            assert engine.config.shard_blocking is True
            assert "Table 2" in capsys.readouterr().out
        finally:
            set_default_engine(None)

    def test_balance_shards_flag_configures_default_engine(self, capsys):
        from repro.engine import get_default_engine, set_default_engine

        try:
            assert main(["--scale", "tiny", "--workers", "2",
                         "--shard-blocking", "--balance-shards",
                         "experiments", "table2"]) == 0
            engine = get_default_engine()
            assert engine.config.shard_blocking is True
            assert engine.config.balance_shards is True
            assert "Table 2" in capsys.readouterr().out
        finally:
            set_default_engine(None)

    def test_sharded_run_matches_streamed_run(self, capsys):
        from repro.engine import set_default_engine

        def trim(text):
            # strip the trailing wall-time line before comparing
            return [line for line in text.splitlines()
                    if not line.strip().startswith("[table2")]

        try:
            main(["--scale", "tiny", "experiments", "table2"])
            streamed = capsys.readouterr().out
            main(["--scale", "tiny", "--workers", "2", "--shard-blocking",
                  "experiments", "table2"])
            sharded = capsys.readouterr().out
            assert trim(streamed) == trim(sharded)
            main(["--scale", "tiny", "--workers", "2", "--shard-blocking",
                  "--balance-shards", "experiments", "table2"])
            balanced = capsys.readouterr().out
            assert trim(streamed) == trim(balanced)
        finally:
            set_default_engine(None)
