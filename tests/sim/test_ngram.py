"""Tests for n-gram similarity (the paper's trigram matcher)."""

import pytest

from repro.sim.ngram import DiceNGram, JaccardNGram, NGramSimilarity, TrigramSimilarity


class TestTrigram:
    def setup_method(self):
        self.sim = TrigramSimilarity()

    def test_identical_strings(self):
        assert self.sim("query processing", "query processing") == 1.0

    def test_disjoint_strings(self):
        assert self.sim("zzz", "qqq") == 0.0

    def test_symmetry(self):
        a, b = "data integration", "data cleaning"
        assert self.sim(a, b) == pytest.approx(self.sim(b, a))

    def test_small_typo_keeps_high_similarity(self):
        assert self.sim("schema matching", "schema matchng") > 0.7

    def test_case_insensitive(self):
        assert self.sim("VLDB", "vldb") == 1.0

    def test_none_values_score_zero(self):
        assert self.sim(None, "abc") == 0.0
        assert self.sim("abc", None) == 0.0

    def test_empty_strings(self):
        assert self.sim("", "") == 0.0

    def test_range(self):
        value = self.sim("adaptive query processing", "query optimization")
        assert 0.0 <= value <= 1.0


class TestVariants:
    def test_dice_vs_jaccard_ordering(self):
        # Dice >= Jaccard for any non-disjoint pair
        a, b = "data streams", "data stream"
        dice = DiceNGram(3)(a, b)
        jaccard = JaccardNGram(3)(a, b)
        assert dice >= jaccard > 0

    def test_overlap_coefficient(self):
        sim = NGramSimilarity(3, method="overlap")
        # substring pairs score 1.0 under overlap
        assert sim("data", "data streams") > DiceNGram(3)("data", "data streams")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            NGramSimilarity(3, method="cosine")

    def test_gram_cache_reused(self):
        sim = TrigramSimilarity()
        grams_first = sim.grams("hello world")
        grams_second = sim.grams("hello world")
        assert grams_first is grams_second

    def test_prepare_populates_cache(self):
        sim = TrigramSimilarity()
        sim.prepare(["alpha", "beta", None])
        assert sim.grams("alpha")  # already cached, still correct
        assert sim("alpha", "beta") >= 0.0

    def test_q1_grams(self):
        sim = NGramSimilarity(1, pad=False)
        assert sim("abc", "cba") == 1.0  # same character set
