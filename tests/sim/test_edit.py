"""Tests for the edit-distance similarity family."""

import pytest

from repro.sim.edit import (
    JaroSimilarity,
    JaroWinklerSimilarity,
    LevenshteinSimilarity,
    damerau_levenshtein_distance,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
)


class TestLevenshteinDistance:
    def test_identical(self):
        assert levenshtein_distance("kitten", "kitten") == 0

    def test_classic_example(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_empty_vs_word(self):
        assert levenshtein_distance("", "abc") == 3

    def test_symmetry(self):
        assert levenshtein_distance("abc", "acb") == levenshtein_distance("acb", "abc")

    def test_single_substitution(self):
        assert levenshtein_distance("flaw", "claw") == 1

    def test_max_distance_cutoff(self):
        # returns max+1 as soon as the bound is provably exceeded
        assert levenshtein_distance("aaaa", "bbbb", max_distance=2) == 3

    def test_max_distance_length_gap(self):
        assert levenshtein_distance("a", "abcdef", max_distance=2) == 3

    def test_max_distance_not_triggered(self):
        assert levenshtein_distance("abc", "abd", max_distance=2) == 1


class TestDamerau:
    def test_transposition_counts_one(self):
        assert damerau_levenshtein_distance("ab", "ba") == 1
        assert levenshtein_distance("ab", "ba") == 2

    def test_identical(self):
        assert damerau_levenshtein_distance("same", "same") == 0

    def test_empty(self):
        assert damerau_levenshtein_distance("", "ab") == 2

    def test_mixed_edits(self):
        assert damerau_levenshtein_distance("ca", "abc") == 3


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_known_value(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_dissimilar(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_symmetry(self):
        assert jaro_similarity("dwayne", "duane") == pytest.approx(
            jaro_similarity("duane", "dwayne"))


class TestJaroWinkler:
    def test_known_value(self):
        assert jaro_winkler_similarity("martha", "marhta") == pytest.approx(
            0.9611, abs=1e-3)

    def test_prefix_boost(self):
        plain = jaro_similarity("prefixed", "prefixes")
        boosted = jaro_winkler_similarity("prefixed", "prefixes")
        assert boosted > plain

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_weight=0.5)

    def test_max_prefix_caps_boost(self):
        long_prefix = jaro_winkler_similarity("abcdefgh", "abcdefgx",
                                              max_prefix=4)
        longer_cap = jaro_winkler_similarity("abcdefgh", "abcdefgx",
                                             max_prefix=8)
        assert longer_cap >= long_prefix


class TestSimilarityClasses:
    def test_levenshtein_normalized(self):
        sim = LevenshteinSimilarity()
        assert sim("abcd", "abcd") == 1.0
        assert sim("abcd", "abce") == pytest.approx(0.75)

    def test_levenshtein_empty_pair(self):
        assert LevenshteinSimilarity()("", "") == 0.0

    def test_jaro_class_delegates(self):
        assert JaroSimilarity()("martha", "marhta") == pytest.approx(
            jaro_similarity("martha", "marhta"))

    def test_jaro_winkler_class_params(self):
        sim = JaroWinklerSimilarity(prefix_weight=0.2)
        assert sim("martha", "marhta") >= jaro_similarity("martha", "marhta")

    def test_none_handling(self):
        assert LevenshteinSimilarity()(None, None) == 0.0
