"""Tests for TF/IDF cosine and SoftTFIDF."""

import pytest

from repro.sim.tfidf import SoftTfIdfSimilarity, TfIdfCosineSimilarity


CORPUS = [
    "adaptive query processing",
    "query optimization in relational databases",
    "data integration for web databases",
    "schema matching with cupid",
    "the the the common words",
]


class TestTfIdfCosine:
    def setup_method(self):
        self.sim = TfIdfCosineSimilarity()
        self.sim.prepare(CORPUS)

    def test_identical(self):
        assert self.sim("adaptive query processing",
                        "adaptive query processing") == pytest.approx(1.0)

    def test_disjoint(self):
        assert self.sim("alpha beta", "gamma delta") == 0.0

    def test_rare_tokens_dominate(self):
        # sharing the rare token "cupid" beats sharing the common "query"
        rare = self.sim("schema matching with cupid", "cupid evaluation")
        common = self.sim("adaptive query processing", "query languages")
        assert rare > common

    def test_unprepared_degrades_to_tf(self):
        fresh = TfIdfCosineSimilarity()
        assert fresh("a b", "a b") == pytest.approx(1.0)

    def test_unknown_token_gets_max_idf(self):
        assert self.sim.idf("neverseen") >= self.sim.idf("query")

    def test_prepare_resets_vectors(self):
        before = self.sim("query processing", "query optimization")
        self.sim.prepare(["query", "query", "query"])
        after = self.sim("query processing", "query optimization")
        assert before != after or before == pytest.approx(after)

    def test_none_prepare_entries_skipped(self):
        sim = TfIdfCosineSimilarity()
        sim.prepare(["abc", None, "def"])
        assert sim._corpus_size == 2

    def test_score_in_range(self):
        value = self.sim("query data", "data query optimization")
        assert 0.0 <= value <= 1.0


class TestSoftTfIdf:
    def setup_method(self):
        self.sim = SoftTfIdfSimilarity(token_threshold=0.9)
        self.sim.prepare(CORPUS)

    def test_exact_tokens(self):
        assert self.sim("schema matching", "schema matching") == pytest.approx(
            1.0, abs=1e-6)

    def test_typo_tolerance_beats_hard_tfidf(self):
        hard = TfIdfCosineSimilarity()
        hard.prepare(CORPUS)
        a, b = "schema matching", "schema matchng"
        assert self.sim(a, b) > hard(a, b)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SoftTfIdfSimilarity(token_threshold=0.0)

    def test_empty(self):
        assert self.sim("", "anything") == 0.0
