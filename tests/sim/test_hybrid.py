"""Tests for hybrid and person-name similarities."""

import pytest

from repro.sim.hybrid import (
    ExactSimilarity,
    MongeElkanSimilarity,
    PersonNameSimilarity,
    TokenJaccardSimilarity,
)


class TestExact:
    def test_equal_after_normalization(self):
        assert ExactSimilarity()("VLDB 2002!", "vldb 2002") == 1.0

    def test_different(self):
        assert ExactSimilarity()("2001", "2002") == 0.0


class TestTokenJaccard:
    def test_identical(self):
        assert TokenJaccardSimilarity()("data streams", "data streams") == 1.0

    def test_half_overlap(self):
        value = TokenJaccardSimilarity()("a b", "b c")
        assert value == pytest.approx(1 / 3)

    def test_empty(self):
        assert TokenJaccardSimilarity()("", "abc") == 0.0


class TestMongeElkan:
    def test_identical(self):
        assert MongeElkanSimilarity()("john smith", "john smith") == pytest.approx(1.0)

    def test_asymmetric_directed(self):
        sim = MongeElkanSimilarity(symmetric=False)
        forward = sim("data", "data processing systems")
        backward = sim("data processing systems", "data")
        assert forward > backward

    def test_symmetric_mode_is_symmetric(self):
        sim = MongeElkanSimilarity(symmetric=True)
        a, b = "schema matching cupid", "cupid schema"
        assert sim(a, b) == pytest.approx(sim(b, a))

    def test_typo_tokens_still_match(self):
        assert MongeElkanSimilarity()("jon smith", "john smith") > 0.8

    def test_empty(self):
        assert MongeElkanSimilarity()("", "x") == 0.0


class TestPersonName:
    def setup_method(self):
        self.sim = PersonNameSimilarity()

    def test_identical_full_names(self):
        assert self.sim("John Smith", "John Smith") == pytest.approx(1.0)

    def test_initial_matches_full_first_name(self):
        # the Google Scholar case: "J. Smith" vs "John Smith"
        assert self.sim("J. Smith", "John Smith") == pytest.approx(1.0)

    def test_wrong_initial_penalized(self):
        right = self.sim("J. Smith", "John Smith")
        wrong = self.sim("K. Smith", "John Smith")
        assert wrong < right

    def test_different_last_names_dominate(self):
        assert self.sim("John Smith", "John Smythe") < 0.95
        assert self.sim("John Smith", "John Miller") < 0.6

    def test_middle_initial_prefix_match(self):
        assert self.sim("J. B. Smith", "John B. Smith") == pytest.approx(1.0)

    def test_missing_first_name_neutral(self):
        value = self.sim("Smith", "John Smith")
        assert 0.5 < value < 1.0

    def test_comma_convention(self):
        assert self.sim("Smith, John", "John Smith") == pytest.approx(1.0)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            PersonNameSimilarity(last_weight=1.5)

    def test_typo_in_last_name(self):
        assert self.sim("John Smith", "John Smth") > 0.6
