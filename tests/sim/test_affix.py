"""Tests for affix similarity."""

import pytest

from repro.sim.affix import AffixSimilarity, common_prefix_length, common_suffix_length


class TestHelpers:
    def test_prefix_length(self):
        assert common_prefix_length("database", "databank") == 6

    def test_prefix_no_overlap(self):
        assert common_prefix_length("abc", "xyz") == 0

    def test_suffix_length(self):
        assert common_suffix_length("matching", "patching") == 7

    def test_suffix_empty(self):
        assert common_suffix_length("", "abc") == 0


class TestAffixSimilarity:
    def setup_method(self):
        self.sim = AffixSimilarity()

    def test_identical_scores_one(self):
        assert self.sim("data cleaning", "data cleaning") == pytest.approx(1.0)

    def test_no_double_counting(self):
        # identical strings must not exceed 1.0 via prefix+suffix overlap
        assert self.sim("aaa", "aaa") <= 1.0

    def test_shared_prefix(self):
        assert self.sim("VLDB 2002", "VLDB 2003") > 0.5

    def test_disjoint(self):
        assert self.sim("abc", "xyz") == 0.0

    def test_empty(self):
        assert self.sim("", "abc") == 0.0

    def test_normalization(self):
        assert self.sim("Data!", "data") == pytest.approx(1.0)

    def test_asymmetric_lengths(self):
        value = self.sim("sig", "sigmod record")
        assert 0 < value < 1
