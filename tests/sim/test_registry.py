"""Tests for the similarity-function registry."""

import pytest

from repro.sim.base import SimilarityFunction
from repro.sim.registry import (
    available_similarities,
    get_similarity,
    register_similarity,
)


class TestRegistry:
    def test_known_names_resolve(self):
        for name in ("trigram", "tfidf", "affix", "levenshtein", "jaro",
                     "jarowinkler", "exact", "year", "personname",
                     "mongeelkan", "jaccard", "softtfidf"):
            function = get_similarity(name)
            assert isinstance(function, SimilarityFunction)

    def test_case_insensitive(self):
        assert type(get_similarity("Trigram")) is type(get_similarity("trigram"))

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError) as excinfo:
            get_similarity("no-such-sim")
        assert "trigram" in str(excinfo.value)

    def test_parameters_forwarded(self):
        sim = get_similarity("ngram", q=2)
        assert sim.q == 2

    def test_fresh_instances(self):
        assert get_similarity("trigram") is not get_similarity("trigram")

    def test_available_contains_trigram(self):
        assert "trigram" in available_similarities()

    def test_custom_registration(self):
        class Constant(SimilarityFunction):
            name = "constant"

            def _score(self, a, b):
                return 0.5

        register_similarity("constant-test", lambda **kw: Constant())
        assert get_similarity("constant-test")("a", "b") == 0.5

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_similarity("  ", lambda **kw: None)


class TestBaseBehaviour:
    def test_clamping(self):
        class Overflow(SimilarityFunction):
            name = "overflow"

            def _score(self, a, b):
                return 1.5

        assert Overflow()("a", "b") == 1.0

    def test_negative_clamped(self):
        class Negative(SimilarityFunction):
            name = "negative"

            def _score(self, a, b):
                return -0.5

        assert Negative()("a", "b") == 0.0


class TestCachedSimilarity:
    def test_caching_hits(self):
        from repro.sim.base import CachedSimilarity
        from repro.sim.ngram import TrigramSimilarity

        cached = CachedSimilarity(TrigramSimilarity())
        first = cached("abc", "abd")
        second = cached("abc", "abd")
        assert first == second
        assert cached.hits == 1 and cached.misses == 1

    def test_symmetric_key(self):
        from repro.sim.base import CachedSimilarity
        from repro.sim.ngram import TrigramSimilarity

        cached = CachedSimilarity(TrigramSimilarity(), symmetric=True)
        cached("abc", "abd")
        cached("abd", "abc")
        assert cached.hits == 1

    def test_max_size_eviction(self):
        from repro.sim.base import CachedSimilarity
        from repro.sim.ngram import TrigramSimilarity

        cached = CachedSimilarity(TrigramSimilarity(), max_size=1)
        cached("a", "b")
        cached("c", "d")
        assert cached.cache_info()["size"] <= 1
