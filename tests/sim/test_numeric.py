"""Tests for numeric and year similarity."""

import pytest

from repro.sim.numeric import NumericSimilarity, YearSimilarity


class TestNumeric:
    def test_equal_values(self):
        assert NumericSimilarity(window=5)(10, 10) == 1.0

    def test_linear_decay(self):
        assert NumericSimilarity(window=4)(10, 12) == pytest.approx(0.5)

    def test_outside_window(self):
        assert NumericSimilarity(window=2)(10, 20) == 0.0

    def test_non_numeric_scores_zero(self):
        assert NumericSimilarity()(10, "abc") == 0.0

    def test_string_numbers_parsed(self):
        assert NumericSimilarity(window=2)("10", "11") == pytest.approx(0.5)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            NumericSimilarity(window=0)

    def test_none(self):
        assert NumericSimilarity()(None, 5) == 0.0


class TestYear:
    def test_equal_years(self):
        assert YearSimilarity()(2001, 2001) == 1.0

    def test_one_year_apart(self):
        # conference vs journal version: one year off scores 0.5,
        # matching Figure 1's 0.6-style partial correspondences
        assert YearSimilarity()(2001, 2002) == pytest.approx(0.5)

    def test_two_years_apart(self):
        assert YearSimilarity()(2001, 2003) == 0.0

    def test_missing_year(self):
        assert YearSimilarity()(None, 2001) == 0.0
