"""Tests for string normalization and tokenization."""

import pytest

from repro.sim.tokenize import (
    initials,
    name_parts,
    ngram_windows,
    normalize,
    qgrams,
    strip_accents,
    strip_punctuation,
    word_tokens,
)


class TestNormalize:
    def test_lowercases(self):
        assert normalize("Query Processing") == "query processing"

    def test_strips_punctuation(self):
        assert normalize("Potter's Wheel: A System!") == "potter s wheel a system"

    def test_collapses_whitespace(self):
        assert normalize("  a   b\t c ") == "a b c"

    def test_empty_string(self):
        assert normalize("") == ""

    def test_accents_removed(self):
        assert normalize("Café Müller") == "cafe muller"

    def test_idempotent(self):
        once = normalize("A  Strange-Title!")
        assert normalize(once) == once


class TestStripHelpers:
    def test_strip_accents(self):
        assert strip_accents("naïve résumé") == "naive resume"

    def test_strip_punctuation_keeps_words(self):
        assert strip_punctuation("a,b.c").split() == ["a", "b", "c"]


class TestWordTokens:
    def test_basic_split(self):
        assert word_tokens("Data Integration") == ["data", "integration"]

    def test_numbers_kept(self):
        assert word_tokens("VLDB 2002") == ["vldb", "2002"]

    def test_empty(self):
        assert word_tokens("") == []

    def test_punctuation_separates(self):
        assert word_tokens("top-k retrieval") == ["top", "k", "retrieval"]


class TestQgrams:
    def test_trigrams_padded(self):
        grams = qgrams("ab", 3)
        assert "##a" in grams and "ab#" in grams

    def test_unpadded_shorter_than_q(self):
        assert qgrams("ab", 3, pad=False) == ["ab"]

    def test_count_matches_formula(self):
        text = "abcdef"
        grams = qgrams(text, 3, pad=False)
        assert len(grams) == len(text) - 3 + 1

    def test_empty_text(self):
        assert qgrams("", 3) == []

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", 0)

    def test_normalization_applied(self):
        assert qgrams("AB", 2) == qgrams("ab", 2)


class TestNgramWindows:
    def test_windows(self):
        assert list(ngram_windows(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_window_too_large(self):
        assert list(ngram_windows(["a"], 2)) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(ngram_windows(["a"], 0))


class TestNameParts:
    def test_first_last(self):
        assert name_parts("John Smith") == ("John", "Smith")

    def test_middle_goes_to_first(self):
        assert name_parts("John B. Smith") == ("John B.", "Smith")

    def test_comma_convention(self):
        assert name_parts("Smith, John") == ("John", "Smith")

    def test_single_token(self):
        assert name_parts("Smith") == ("", "Smith")

    def test_empty(self):
        assert name_parts("") == ("", "")


class TestInitials:
    def test_full_name(self):
        assert initials("John B.") == "jb"

    def test_single(self):
        assert initials("J.") == "j"

    def test_empty(self):
        assert initials("") == ""
