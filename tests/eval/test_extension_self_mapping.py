"""Tests for the §5.6 GS self-mapping extension workflow."""


from repro.eval.experiments.extension_self_mapping import (
    gs_self_mapping,
    run_self_mapping_extension,
)


class TestGsSelfMapping:
    def test_self_mapping_is_self(self, workbench):
        mapping = gs_self_mapping(workbench)
        assert mapping.is_self_mapping()
        assert mapping.domain == "GS.Publication"

    def test_clusters_are_symmetric(self, workbench):
        mapping = gs_self_mapping(workbench)
        for domain_id, range_id, similarity in mapping:
            assert mapping.get(range_id, domain_id) == similarity

    def test_clusters_mostly_true_duplicates(self, workbench):
        mapping = gs_self_mapping(workbench)
        true_of = workbench.dataset.gs.true_pub
        agree = sum(1 for a, b in mapping.pairs()
                    if true_of[a] == true_of[b])
        assert agree / max(len(mapping), 1) > 0.8

    def test_version_pairs_separated(self, workbench):
        """Conference/journal versions share titles but must not be
        clustered (the year constraint's job)."""
        mapping = gs_self_mapping(workbench)
        world = workbench.dataset.world
        true_of = workbench.dataset.gs.true_pub
        for a, b in mapping.pairs():
            pub_a = world.publications[true_of[a]]
            pub_b = world.publications[true_of[b]]
            if pub_a.id != pub_b.id:
                # misclusters may exist but never across version pairs
                # with known different years recorded on both entries
                year_a = workbench.dataset.gs.publications.require(a).get("year")
                year_b = workbench.dataset.gs.publications.require(b).get("year")
                if year_a is not None and year_b is not None:
                    assert abs(year_a - year_b) <= 1


class TestExtensionExperiment:
    def test_improves_over_base(self, workbench):
        result = run_self_mapping_extension(workbench)
        assert result.data["expanded"]["f1"] >= result.data["base"]["f1"]

    def test_render(self, workbench):
        result = run_self_mapping_extension(workbench)
        assert "duplicate clusters" in result.render()
