"""Tests for the figure-checking helpers and figure data integrity."""

import pytest

from repro.core.mapping import Mapping
from repro.eval.experiments.figures import (
    FIGURE1_SAME,
    FIGURE4_EXPECTED,
    FIGURE6_EXPECTED,
    FIGURE9_EXPECTED,
    _rows_match,
)


class TestRowsMatch:
    def test_exact_match(self):
        mapping = Mapping.from_correspondences("A", "B", [("a", "b", 0.8)])
        assert _rows_match(mapping, [("a", "b", 0.8)]) is True

    def test_rounding_tolerance(self):
        mapping = Mapping.from_correspondences("A", "B",
                                               [("a", "b", 2 / 3)])
        assert _rows_match(mapping, [("a", "b", 0.67)]) is True

    def test_value_mismatch(self):
        mapping = Mapping.from_correspondences("A", "B", [("a", "b", 0.8)])
        assert _rows_match(mapping, [("a", "b", 0.9)]) is False

    def test_missing_row(self):
        mapping = Mapping.from_correspondences("A", "B", [("a", "b", 0.8)])
        assert _rows_match(mapping, [("a", "b", 0.8),
                                     ("c", "d", 0.5)]) is False

    def test_extra_row(self):
        mapping = Mapping.from_correspondences(
            "A", "B", [("a", "b", 0.8), ("c", "d", 0.5)])
        assert _rows_match(mapping, [("a", "b", 0.8)]) is False

    def test_digit_precision_parameter(self):
        mapping = Mapping.from_correspondences("A", "B",
                                               [("a", "b", 0.812)])
        assert _rows_match(mapping, [("a", "b", 0.81)], digits=2) is True
        assert _rows_match(mapping, [("a", "b", 0.81)], digits=3) is False


class TestFigureConstants:
    """The embedded paper values must stay internally consistent."""

    def test_figure1_has_five_correspondences(self):
        assert len(FIGURE1_SAME) == 5
        sims = [sim for _, _, sim in FIGURE1_SAME]
        assert sims.count(1.0) == 3 and sims.count(0.6) == 2

    def test_figure4_prefer_is_superset_of_map1(self):
        prefer = {(a, b) for a, b, _ in FIGURE4_EXPECTED["prefer"]}
        assert {("a1", "b1"), ("a2", "b2")} <= prefer

    def test_figure6_relative_values(self):
        values = {(a, b): s for a, b, s in FIGURE6_EXPECTED}
        assert values[("v1", "v'1")] == pytest.approx(0.8)
        # multi-path support outranks single-path for v1
        assert values[("v1", "v'1")] > values[("v1", "v'2")]

    def test_figure9_uses_figure1_mapping(self):
        # Figure 9 composes through exactly the Figure 1 correspondences
        dblp_pubs = {domain for domain, _, _ in FIGURE1_SAME}
        assert "conf/VLDB/ChirkovaHS01" in dblp_pubs
        venues = {b for _, b, _ in FIGURE9_EXPECTED}
        assert venues == {"V-645927", "V-641268"}
