"""Tests for mapping diagnostics."""

import pytest

from repro.core.mapping import Mapping
from repro.eval.diagnostics import (
    agreement,
    cardinality_profile,
    describe,
    similarity_histogram,
)


@pytest.fixture
def mapping():
    return Mapping.from_correspondences("A", "B", [
        ("a1", "b1", 1.0),               # clean 1:1
        ("a2", "b2", 0.9), ("a2", "b3", 0.8),   # 1:2 (GS duplicates)
        ("a3", "b4", 0.3),
    ])


class TestCardinality:
    def test_counts(self, mapping):
        profile = cardinality_profile(mapping)
        assert profile.correspondences == 4
        assert profile.domain_objects == 3
        assert profile.range_objects == 4
        assert profile.max_out_degree == 2
        assert profile.max_in_degree == 1

    def test_unique_sides(self, mapping):
        profile = cardinality_profile(mapping)
        assert profile.unique_domain == 2  # a1, a3
        assert profile.unique_range == 4

    def test_one_to_one_ratio(self, mapping):
        profile = cardinality_profile(mapping)
        # a1/b1 and a3/b4 are 1:1 on both sides
        assert profile.one_to_one_ratio == pytest.approx(0.5)

    def test_empty_mapping(self):
        profile = cardinality_profile(Mapping("A", "B"))
        assert profile.correspondences == 0
        assert profile.one_to_one_ratio == 1.0

    def test_duplicate_heavy_mapping_flagged(self, workbench):
        """DBLP-GS gold has 1:n structure by construction (dup entries)."""
        gold = workbench.gold("publications", "DBLP", "GS")
        profile = cardinality_profile(gold)
        assert profile.max_out_degree > 1
        assert profile.one_to_one_ratio < 1.0


class TestHistogram:
    def test_bin_assignment(self, mapping):
        histogram = similarity_histogram(mapping, bins=10)
        counts = {low: count for low, _, count in histogram}
        assert counts[0.9] == 2  # 0.9 and 1.0 share the top bin
        assert counts[0.8] == 1
        assert counts[0.3] == 1

    def test_total_preserved(self, mapping):
        histogram = similarity_histogram(mapping, bins=7)
        assert sum(count for _, _, count in histogram) == len(mapping)

    def test_single_bin(self, mapping):
        histogram = similarity_histogram(mapping, bins=1)
        assert histogram == [(0.0, 1.0, 4)]

    def test_invalid_bins(self, mapping):
        with pytest.raises(ValueError):
            similarity_histogram(mapping, bins=0)


class TestAgreement:
    def test_partition(self):
        left = Mapping.from_correspondences("A", "B", [
            ("a1", "b1", 1.0), ("a2", "b2", 0.9)])
        right = Mapping.from_correspondences("A", "B", [
            ("a1", "b1", 0.95), ("a3", "b3", 0.7)])
        report = agreement(left, right)
        assert report.both == 1
        assert report.only_left == 1 and report.only_right == 1
        assert report.jaccard == pytest.approx(1 / 3)

    def test_similarity_conflicts(self):
        left = Mapping.from_correspondences("A", "B", [("a", "b", 1.0)])
        right = Mapping.from_correspondences("A", "B", [("a", "b", 0.5)])
        report = agreement(left, right, similarity_tolerance=0.1)
        assert report.similarity_conflicts == 1
        relaxed = agreement(left, right, similarity_tolerance=0.6)
        assert relaxed.similarity_conflicts == 0

    def test_examples_bounded(self):
        left = Mapping.from_correspondences("A", "B", [
            (f"a{i}", f"b{i}", 1.0) for i in range(10)])
        right = Mapping("A", "B")
        report = agreement(left, right, max_examples=3)
        assert len(report.examples_only_left) == 3

    def test_incompatible_sources(self):
        with pytest.raises(ValueError):
            agreement(Mapping("A", "B"), Mapping("A", "C"))

    def test_merge_rationale_on_dataset(self, workbench):
        """Complementary disagreement is why merging helps (§4.1.1)."""
        from repro.core.operators.selection import ThresholdSelection
        threshold = ThresholdSelection(0.8)
        title = threshold.apply(workbench.fuzzy_title("DBLP", "ACM"))
        authors = threshold.apply(
            workbench.fuzzy_pub_authors("DBLP", "ACM"))
        report = agreement(title, authors)
        assert report.only_left > 0 and report.only_right > 0


class TestDescribe:
    def test_summary_fields(self, mapping):
        summary = describe(mapping)
        assert summary["correspondences"] == 4
        assert summary["min_similarity"] == 0.3
        assert summary["max_similarity"] == 1.0
        assert 0 < summary["mean_similarity"] < 1

    def test_empty(self):
        summary = describe(Mapping("A", "B"))
        assert summary["mean_similarity"] is None
