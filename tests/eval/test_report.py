"""Tests for table rendering."""

import pytest

from repro.eval.report import Table, format_percent, render_table


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.919) == "91.9%"

    def test_digits(self):
        assert format_percent(0.5, digits=0) == "50%"

    def test_none(self):
        assert format_percent(None) == "-"


class TestTable:
    def test_render_contains_everything(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("beta", 22)
        table.add_note("a footnote")
        text = table.render()
        assert "Demo" in text
        assert "alpha" in text and "22" in text
        assert "a footnote" in text

    def test_column_alignment(self):
        table = Table("T", ["a", "b"])
        table.add_row("short", "x")
        table.add_row("a much longer cell", "y")
        lines = render_table(table).splitlines()
        header, rows = lines[2], lines[4:]
        pipe_positions = {line.index("|") for line in [header] + rows}
        assert len(pipe_positions) == 1  # all rows align

    def test_wrong_cell_count_rejected(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only one")

    def test_empty_table_renders(self):
        table = Table("Empty", ["col"])
        assert "Empty" in table.render()
