"""Tests for evaluation metrics."""

import pytest

from repro.core.mapping import Mapping
from repro.eval.metrics import (
    evaluate,
    evaluate_pairs,
    f_measure,
    precision_recall_f1,
)


class TestFMeasure:
    def test_harmonic_mean(self):
        assert f_measure(1.0, 1.0) == 1.0
        assert f_measure(0.5, 1.0) == pytest.approx(2 / 3)

    def test_zero_case(self):
        assert f_measure(0.0, 0.0) == 0.0


class TestPrecisionRecall:
    def test_perfect(self):
        gold = {("a", "b"), ("c", "d")}
        assert precision_recall_f1(gold, gold) == (1.0, 1.0, 1.0)

    def test_half_precision(self):
        predicted = {("a", "b"), ("x", "y")}
        gold = {("a", "b"), ("c", "d")}
        precision, recall, f1 = precision_recall_f1(predicted, gold)
        assert precision == 0.5 and recall == 0.5 and f1 == 0.5

    def test_empty_prediction(self):
        assert precision_recall_f1(set(), {("a", "b")}) == (0.0, 0.0, 0.0)

    def test_empty_gold(self):
        precision, recall, f1 = precision_recall_f1({("a", "b")}, set())
        assert recall == 0.0


class TestEvaluate:
    def test_counts(self):
        predicted = Mapping.from_correspondences("A", "B", [
            ("a1", "b1", 1.0), ("a2", "bX", 0.9)])
        gold = Mapping.from_correspondences("A", "B", [
            ("a1", "b1", 1.0), ("a3", "b3", 1.0)])
        quality = evaluate(predicted, gold)
        assert quality.true_positives == 1
        assert quality.predicted == 2 and quality.gold == 2
        assert quality.precision == 0.5 and quality.recall == 0.5

    def test_similarities_ignored(self):
        predicted = Mapping.from_correspondences("A", "B", [("a", "b", 0.1)])
        gold = Mapping.from_correspondences("A", "B", [("a", "b", 1.0)])
        assert evaluate(predicted, gold).f1 == 1.0

    def test_restrict_filters_both_sides(self):
        predicted = Mapping.from_correspondences("A", "B", [
            ("conf1", "x", 1.0), ("jour1", "y", 1.0)])
        gold = Mapping.from_correspondences("A", "B", [
            ("conf1", "x", 1.0), ("jour1", "z", 1.0)])
        conference_only = evaluate(predicted, gold,
                                   restrict=lambda p: p[0].startswith("conf"))
        assert conference_only.f1 == 1.0
        assert conference_only.gold == 1

    def test_as_row(self):
        predicted = Mapping.from_correspondences("A", "B", [("a", "b", 1.0)])
        row = evaluate(predicted, predicted).as_row()
        assert row["f1"] == 1.0 and row["tp"] == 1

    def test_evaluate_pairs_direct(self):
        quality = evaluate_pairs({("a", "b")}, {("a", "b"), ("c", "d")})
        assert quality.recall == 0.5
