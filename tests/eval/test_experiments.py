"""Tests for the experiment drivers on the tiny dataset.

These assert the paper's *qualitative* claims (who wins, in which
direction) rather than absolute numbers — the tiny scale is too small
for tight bands, and EXPERIMENTS.md records the quantitative story at
benchmark scale.
"""

import pytest

from repro.eval.experiments import (
    run_figure1,
    run_figure4,
    run_figure6,
    run_figure9,
    run_table1,
    run_table10,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
    run_table9,
)


class TestTable1:
    def test_counts_present(self, workbench):
        result = run_table1(workbench)
        assert result.data["DBLP"]["publications"] > 0
        assert result.data["GS"]["publications"] >= \
            result.data["DBLP"]["publications"] * 0.8
        assert "DBLP" in result.render()


class TestTable2:
    def test_matcher_ordering(self, workbench):
        result = run_table2(workbench)
        title_f = result.data["title"]["f1"]
        author_f = result.data["author"]["f1"]
        year_f = result.data["year"]["f1"]
        assert title_f > year_f
        assert author_f > year_f
        assert year_f < 0.2  # year alone is useless

    def test_merge_beats_best_single(self, workbench):
        result = run_table2(workbench)
        best_single = max(result.data[key]["f1"]
                          for key in ("title", "author", "year"))
        assert result.data["merge"]["f1"] >= best_single - 0.02

    def test_year_recall_total(self, workbench):
        result = run_table2(workbench)
        assert result.data["year"]["recall"] == pytest.approx(1.0, abs=0.01)


class TestTable3:
    def test_link_mapping_recall_starved(self, workbench):
        result = run_table3(workbench)
        assert result.data["GS-ACM"]["direct"]["recall"] < 0.45

    def test_hub_compose_repairs_gs_acm(self, workbench):
        result = run_table3(workbench)
        assert result.data["GS-ACM"]["compose"]["f1"] > \
            result.data["GS-ACM"]["direct"]["f1"] + 0.2

    def test_composing_through_links_hurts(self, workbench):
        result = run_table3(workbench)
        for pair in ("DBLP-GS", "DBLP-ACM"):
            assert result.data[pair]["compose"]["f1"] < \
                result.data[pair]["direct"]["f1"]

    def test_merge_retains_best(self, workbench):
        result = run_table3(workbench)
        for pair in ("DBLP-GS", "DBLP-ACM", "GS-ACM"):
            best = max(result.data[pair]["direct"]["f1"],
                       result.data[pair]["compose"]["f1"])
            assert result.data[pair]["merge"]["f1"] >= best - 0.1


class TestTable4:
    def test_best1_overall_strong(self, workbench):
        result = run_table4(workbench)
        assert result.data["overall|best1"]["f1"] > 0.85

    def test_threshold_precision_perfect_for_conferences(self, workbench):
        result = run_table4(workbench)
        assert result.data["conferences|80%"]["precision"] == pytest.approx(
            1.0, abs=0.05)

    def test_permissive_selection_helps_recall(self, workbench):
        result = run_table4(workbench)
        assert result.data["overall|50%"]["recall"] >= \
            result.data["overall|80%"]["recall"]


class TestTable5:
    def test_neighborhood_alone_high_recall_low_precision(self, workbench):
        result = run_table5(workbench)
        neighborhood = result.data["overall|neighborhood"]
        assert neighborhood["recall"] > 0.9
        assert neighborhood["precision"] < 0.4

    def test_merge_beats_attribute(self, workbench):
        result = run_table5(workbench)
        assert result.data["overall|merge"]["f1"] > \
            result.data["overall|attribute"]["f1"]

    def test_merge_precision_near_perfect(self, workbench):
        result = run_table5(workbench)
        assert result.data["overall|merge"]["precision"] > 0.9


class TestTable6:
    def test_neighborhood_weak_alone(self, workbench):
        result = run_table6(workbench)
        assert result.data["neighborhood"]["f1"] < \
            result.data["attribute"]["f1"]

    def test_neighborhood_recall_near_total(self, workbench):
        result = run_table6(workbench)
        assert result.data["neighborhood"]["recall"] > 0.9

    def test_merge_beats_attribute(self, workbench):
        result = run_table6(workbench)
        assert result.data["merge"]["f1"] >= \
            result.data["attribute"]["f1"] - 0.02
        assert result.data["merge"]["recall"] > \
            result.data["attribute"]["recall"]


@pytest.mark.parametrize("runner", [run_table7, run_table8],
                         ids=["table7", "table8"])
class TestGsTables:
    def test_merge_recall_driven(self, workbench, runner):
        result = runner(workbench)
        assert result.data["merge"]["recall"] > \
            result.data["attribute"]["recall"]
        assert result.data["merge"]["f1"] > result.data["attribute"]["f1"]

    def test_neighborhood_low_precision(self, workbench, runner):
        result = runner(workbench)
        assert result.data["neighborhood"]["precision"] < 0.5


class TestTable9:
    def test_duplicates_recovered(self, workbench):
        result = run_table9(workbench)
        assert result.data["recall_at_k"] >= 0.4

    def test_candidates_carry_evidence(self, workbench):
        result = run_table9(workbench)
        for candidate in result.data["candidates"]:
            assert 0 <= candidate["merged"] <= 1
            assert candidate["shared_co_authors"] >= 0
            assert candidate["author_a"] != candidate["author_b"]

    def test_render_mentions_paper_reference(self, workbench):
        assert "Trigoni" in run_table9(workbench).render()


class TestTable10:
    def test_summary_aggregates(self, workbench):
        result = run_table10(workbench)
        assert result.data["DBLP-ACM|venues"] > 0.8
        assert result.data["DBLP-ACM|publications"] > 0.8
        assert result.data["DBLP-GS|publications"] > 0.6


class TestFigures:
    @pytest.mark.parametrize("runner", [
        run_figure1, run_figure4, run_figure6, run_figure9,
    ], ids=["fig1", "fig4", "fig6", "fig9"])
    def test_exact_paper_values(self, runner):
        result = runner()
        assert result.data["matches_paper"] is True, result.data["checks"]
