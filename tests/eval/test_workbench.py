"""Tests for the experiment workbench (shared pipeline cache)."""

import pytest

from repro.core.mapping import Mapping
from repro.eval.experiments import Workbench
from repro.eval.experiments.common import ensure_workbench


class TestCaching:
    def test_fuzzy_title_cached(self, workbench):
        first = workbench.fuzzy_title("DBLP", "ACM")
        second = workbench.fuzzy_title("DBLP", "ACM")
        assert first is second

    def test_threshold_variants_distinct(self, workbench):
        loose = workbench.pub_same("DBLP", "ACM", threshold=0.5)
        tight = workbench.pub_same("DBLP", "ACM", threshold=0.9)
        assert len(loose) >= len(tight)

    def test_venue_same_selection_variants(self, workbench):
        best1 = workbench.venue_same(selection="best1")
        threshold = workbench.venue_same(selection="0.5")
        assert best1 is workbench.venue_same(selection="best1")
        assert best1.to_rows() != [] and threshold is not best1


class TestResolution:
    def test_bundle_lookup(self, workbench):
        assert workbench.bundle("DBLP").name == "DBLP"
        with pytest.raises(KeyError):
            workbench.bundle("IEEE")

    def test_gold_resolution(self, workbench):
        gold = workbench.gold("publications", "DBLP", "ACM")
        assert isinstance(gold, Mapping)
        assert gold.domain == "DBLP.Publication"

    def test_score_matches_manual_evaluate(self, workbench):
        from repro.eval import evaluate
        mapping = workbench.pub_same("DBLP", "ACM")
        direct = evaluate(mapping, workbench.gold("publications",
                                                  "DBLP", "ACM"))
        via_workbench = workbench.score(mapping, "publications",
                                        "DBLP", "ACM")
        assert direct == via_workbench

    def test_venue_kinds(self, workbench):
        kinds = workbench.venue_kind_of_dblp_venue()
        assert set(kinds.values()) <= {"conference", "journal"}
        pub_kinds = workbench.venue_kind_of_pub("DBLP")
        assert set(pub_kinds.values()) <= {"conference", "journal"}
        assert len(pub_kinds) == len(workbench.bundle("DBLP").publications)


class TestEnsureWorkbench:
    def test_idempotent_on_workbench(self, workbench):
        assert ensure_workbench(workbench) is workbench

    def test_wraps_dataset(self, dataset):
        workbench = ensure_workbench(dataset)
        assert isinstance(workbench, Workbench)
        assert workbench.dataset is dataset


class TestGsAuthorSame:
    def test_person_name_mapping_quality(self, workbench):
        mapping = workbench.gs_author_same("DBLP")
        gold = workbench.gold("authors", "DBLP", "GS")
        quality = workbench.score(mapping, "authors", "DBLP", "GS")
        assert quality.f1 > 0.8
        assert gold  # sanity: gold non-empty
