"""Metrics registry: instrument semantics and text exposition."""

import math

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestCounter:
    def test_monotone_increment(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("requests_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_set_total_clamps_monotone(self):
        counter = MetricsRegistry().counter("requests_total")
        counter.set_total(10)
        counter.set_total(4)  # a restored source must not move back
        assert counter.value == 10
        counter.set_total(17)
        assert counter.value == 17

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        assert registry.counter("a_total", labels={"shard": 0}) \
            is not registry.counter("a_total", labels={"shard": 1})

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")


class TestHistogram:
    def test_bucket_math_is_cumulative(self):
        hist = MetricsRegistry().histogram(
            "latency_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        lines = hist.samples()
        assert 'latency_seconds_bucket{le="0.01"} 1' in lines
        assert 'latency_seconds_bucket{le="0.1"} 3' in lines
        assert 'latency_seconds_bucket{le="1"} 4' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 5' in lines
        assert "latency_seconds_count 5" in lines
        assert any(line.startswith("latency_seconds_sum ")
                   for line in lines)
        assert hist.sum == pytest.approx(5.605)

    def test_units_are_seconds_on_the_default_ladder(self):
        # the default ladder spans 500 microseconds to 10 seconds —
        # observations are seconds, never milliseconds
        assert DEFAULT_LATENCY_BUCKETS[0] == 0.0005
        assert DEFAULT_LATENCY_BUCKETS[-1] == 10.0
        hist = MetricsRegistry().histogram("latency_seconds")
        hist.observe(0.002)  # 2ms
        counts_at = dict(zip(hist.buckets, range(len(hist.buckets))))
        assert 0.0025 in counts_at  # lands in the 2.5ms bucket
        assert 'latency_seconds_bucket{le="0.0025"} 1' in hist.samples()
        assert 'latency_seconds_bucket{le="0.001"} 0' in hist.samples()

    def test_percentile_interpolates_within_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for _ in range(10):
            hist.observe(1.5)  # all in the (1, 2] bucket
        # rank 5 of 10 → halfway through the second bucket
        assert hist.percentile(0.50) == pytest.approx(1.5)
        assert hist.percentile(0.99) == pytest.approx(1.99)

    def test_percentile_clamps_to_last_finite_bound(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(100.0)
        assert hist.percentile(0.99) == 1.0

    def test_empty_percentile_is_zero(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.percentile(0.5) == 0.0
        assert hist.summary() == {"count": 0.0, "sum": 0.0,
                                  "p50": 0.0, "p99": 0.0}

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())

    def test_size_ladder_is_powers_of_two(self):
        assert DEFAULT_SIZE_BUCKETS == (1.0, 2.0, 4.0, 8.0, 16.0,
                                        32.0, 64.0, 128.0, 256.0)


class TestExposition:
    def test_render_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests served.").inc(2)
        registry.gauge("cache_entries").set(7)
        registry.histogram("latency_seconds",
                           buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# HELP requests_total Requests served." in lines
        assert "# TYPE requests_total counter" in lines
        assert "requests_total 2" in lines
        assert "# TYPE cache_entries gauge" in lines
        assert "cache_entries 7" in lines
        assert "# TYPE latency_seconds histogram" in lines
        assert 'latency_seconds_bucket{le="0.1"} 1' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 1' in lines
        # every sample line parses as "name{labels} value"
        for line in lines:
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            float(value)

    def test_labels_sorted_and_escaped(self):
        registry = MetricsRegistry()
        registry.counter("ops_total",
                         labels={"b": 'x"y', "a": 1}).inc()
        assert 'ops_total{a="1",b="x\\"y"} 1' in registry.render()

    def test_collectors_run_at_scrape_time(self):
        registry = MetricsRegistry()
        source = {"count": 0}
        registry.register_collector(
            lambda: registry.counter("pulled_total").set_total(
                source["count"]))
        source["count"] = 5
        assert "pulled_total 5" in registry.render()
        source["count"] = 9
        assert "pulled_total 9" in registry.render()

    def test_summary_mirrors_render(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(3)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        summary = registry.summary()
        assert summary["a_total"] == 3
        assert summary["h"]["count"] == 1.0

    def test_infinity_formats_as_prometheus_inf(self):
        from repro.obs.registry import _format_value
        assert _format_value(math.inf) == "+Inf"
        assert _format_value(3.0) == "3"
        assert _format_value(0.25) == "0.25"


def test_percentile_helper_nearest_rank():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 0.5) == 3.0
    assert percentile(values, 1.0) == 5.0
    assert percentile([], 0.5) == 0.0
