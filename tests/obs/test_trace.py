"""Tracing: deterministic sampling, span nesting, wire contexts."""

import json
import pickle

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import TraceContext, Tracer


class TestSampling:
    def test_rate_one_samples_every_request(self):
        tracer = Tracer(sample_rate=1.0)
        contexts = [tracer.begin(f"r{i}") for i in range(10)]
        assert all(context is not None for context in contexts)
        assert tracer.sampled == tracer.requests == 10

    def test_rate_zero_samples_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        assert [tracer.begin(f"r{i}") for i in range(10)] == [None] * 10
        assert tracer.requests == 10 and tracer.sampled == 0

    def test_fractional_rate_is_deterministic(self):
        # the accumulator admits exactly one request in four at 0.25,
        # with no randomness: the pattern repeats identically
        tracer = Tracer(sample_rate=0.25)
        pattern = [tracer.begin(f"r{i}") is not None for i in range(8)]
        assert pattern == [False, False, False, True] * 2
        assert tracer.sampled == 2

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(sample_rate=-0.1)

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(sample_rate=1.0, ring_size=3)
        for i in range(5):
            tracer.finish(tracer.begin(f"r{i}"))
        recent = tracer.recent()
        assert [entry["trace_id"] for entry in recent] == \
            ["r2", "r3", "r4"]
        assert tracer.summary()["sampled"] == 5


class TestSpans:
    def test_nested_spans_record_parents(self):
        context = TraceContext("t1")
        with context.span("outer"):
            with context.span("inner"):
                pass
        by_name = {span["name"]: span for span in context.spans}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["parent_id"] == \
            by_name["outer"]["span_id"]
        assert by_name["outer"]["duration"] >= \
            by_name["inner"]["duration"] >= 0.0

    def test_ambient_span_noop_without_activation(self):
        with obs_trace.span("orphan") as record:
            assert record is None

    def test_activate_routes_ambient_spans(self):
        context = TraceContext("t2")
        with obs_trace.activate(context):
            assert obs_trace.current_trace() is context
            with obs_trace.span("work", shard=3) as record:
                assert record["trace_id"] == "t2"
        assert obs_trace.current_trace() is None
        assert [span["name"] for span in context.spans] == ["work"]
        assert context.spans[0]["shard"] == 3

    def test_spans_are_pickle_and_json_safe(self):
        context = TraceContext("t3")
        with context.span("op"):
            pass
        span = context.spans[0]
        assert pickle.loads(pickle.dumps(span)) == span
        assert json.loads(json.dumps(span)) == span

    def test_wire_context_carries_active_parent(self):
        context = TraceContext("t4")
        assert context.wire_context() == {"id": "t4", "parent": None}
        with context.span("round"):
            wire = context.wire_context()
            assert wire["id"] == "t4"
            assert wire["parent"] == context.active_span_id

    def test_shard_span_builds_from_wire_context(self):
        wire = {"id": "t5", "parent": "s2"}
        span = obs_trace.shard_span(wire, "shard.match", 1, 100.0, 0.25)
        assert span["trace_id"] == "t5"
        assert span["parent_id"] == "s2"
        assert span["span_id"] == "s2.shard.match.1"
        assert span["shard"] == 1
        assert span["duration"] == 0.25
        assert obs_trace.shard_span(None, "shard.match", 1, 0.0, 0.0) \
            is None

    def test_to_dict_duration_is_root_span_duration(self):
        context = TraceContext("t6")
        with context.span("root"):
            with context.span("child"):
                pass
        root = next(span for span in context.spans
                    if span["parent_id"] is None)
        assert context.to_dict()["duration"] == root["duration"]
