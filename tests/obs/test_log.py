"""Structured logging: JSON lines, injectable streams, no raising."""

import io
import json

from repro.obs.log import get_logger


def test_one_json_object_per_line_keys_sorted():
    stream = io.StringIO()
    logger = get_logger("repro.test", stream=stream)
    logger.info("http_access", path="/v1/match", status=200)
    logger.warning("slow_query", elapsed_ms=72.5)
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["event"] == "http_access"
    assert first["level"] == "info"
    assert first["logger"] == "repro.test"
    assert first["path"] == "/v1/match"
    assert first["status"] == 200
    assert isinstance(first["ts"], float)
    assert list(first) == sorted(first)
    second = json.loads(lines[1])
    assert second["level"] == "warning"
    assert second["elapsed_ms"] == 72.5


def test_unserializable_fields_stringify():
    stream = io.StringIO()
    logger = get_logger("repro.test", stream=stream)
    logger.error("boom", error=ValueError("bad"))
    record = json.loads(stream.getvalue())
    assert record["error"] == "bad"
    assert record["level"] == "error"


def test_logging_never_raises():
    class Broken:
        def write(self, _):
            raise OSError("gone")

        def flush(self):
            raise OSError("gone")

    logger = get_logger("repro.test", stream=Broken())
    logger.info("event")  # must not raise into the caller


def test_unknown_level_degrades_to_info():
    stream = io.StringIO()
    logger = get_logger("repro.test", stream=stream)
    logger.log("event", level="shouting")
    assert json.loads(stream.getvalue())["level"] == "info"


def test_stream_swap_redirects_later_events():
    logger = get_logger("repro.test", stream=io.StringIO())
    replacement = io.StringIO()
    logger.stream = replacement
    logger.info("after")
    assert json.loads(replacement.getvalue())["event"] == "after"
