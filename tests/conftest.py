"""Shared fixtures: a tiny deterministic dataset and its workbench.

The tiny scale keeps any single test under a second while still
exercising every pipeline (three sources, duplicates, noise, gold).
Session scope matters: building the dataset once amortizes it across
the whole suite.
"""

from __future__ import annotations

import pytest

from repro.datagen import build_dataset
from repro.eval.experiments import Workbench


@pytest.fixture(scope="session")
def dataset():
    return build_dataset("tiny", seed=7)


@pytest.fixture(scope="session")
def workbench(dataset):
    return Workbench(dataset)


@pytest.fixture(scope="session")
def dblp(dataset):
    return dataset.dblp


@pytest.fixture(scope="session")
def acm(dataset):
    return dataset.acm


@pytest.fixture(scope="session")
def gs(dataset):
    return dataset.gs
