"""Tests for the incremental indexed reference store."""

import pytest

from repro.core.operators.functions import WeightedFunction
from repro.engine.request import AttributeSpec
from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.serve.index import IncrementalIndex
from repro.sim.ngram import TrigramSimilarity
from repro.sim.tfidf import TfIdfCosineSimilarity

TITLES = [
    "Adaptive Query Processing for Streams",
    "Schema Matching with Cupid",
    "Data Cleaning in Warehouses",
    "Adaptive Stream Joins over Windows",
    "Query Optimization in Federated Systems",
    "Duplicate Detection by Learned Models",
    "Warehouse Loading under Constraints",
    "Matching Product Offers across Shops",
]


def _source(n=len(TITLES), name="DBLP"):
    source = LogicalSource(PhysicalSource(name), ObjectType("Publication"))
    for i in range(n):
        source.add_record(f"p{i}", title=TITLES[i % len(TITLES)] + f" v{i}",
                          venue=f"venue {i % 3}", year=2000 + (i % 10))
    return source


def _queries(values):
    return [ObjectInstance(f"q{i}", {"title": value})
            for i, value in enumerate(values)]


def _all_pairs(index, records):
    return [(i, id) for i in range(len(records)) for id in index.ids()]


class TestMutation:
    def test_add_get_len(self):
        index = IncrementalIndex(_source(), "title")
        assert len(index) == len(TITLES)
        index.add_record("x1", title="Entity Resolution Surveys")
        assert len(index) == len(TITLES) + 1
        assert index.get("x1").get("title") == "Entity Resolution Surveys"
        assert "x1" in index

    def test_duplicate_add_rejected(self):
        index = IncrementalIndex(_source(), "title")
        with pytest.raises(ValueError):
            index.add_record("p0", title="whatever")

    def test_delete_and_readd(self):
        index = IncrementalIndex(_source(), "title")
        assert index.delete("p0")
        assert not index.delete("p0")
        assert "p0" not in index
        assert len(index) == len(TITLES) - 1
        index.add_record("p0", title="A Fresh Record")
        assert index.get("p0").get("title") == "A Fresh Record"

    def test_update_replaces(self):
        index = IncrementalIndex(_source(), "title")
        index.update(ObjectInstance("p1", {"title": "Renamed Title"}))
        assert index.get("p1").get("title") == "Renamed Title"
        assert len(index) == len(TITLES)
        with pytest.raises(KeyError):
            index.update(ObjectInstance("nope", {"title": "x"}))

    def test_version_bumps(self):
        index = IncrementalIndex(_source(), "title")
        version = index.version
        index.add_record("x1", title="a b")
        index.update(ObjectInstance("x1", {"title": "a c"}))
        index.delete("x1")
        assert index.version == version + 3

    def test_ids_order_is_deterministic(self):
        index = IncrementalIndex(_source(), "title")
        index.delete("p2")
        index.add_record("x1", title="one")
        index.add_record("x2", title="two")
        ids = index.ids()
        assert ids == [id for id in ids]  # stable
        assert ids[-2:] == ["x1", "x2"]
        assert "p2" not in ids

    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalIndex(_source(), "title", missing="maybe")
        with pytest.raises(ValueError):
            IncrementalIndex(_source(), "title", compact_min=0)
        with pytest.raises(ValueError):
            IncrementalIndex(_source(), "title", specs=[])
        with pytest.raises(ValueError):
            IncrementalIndex(_source(), specs=[
                AttributeSpec("title", "title", TrigramSimilarity()),
                AttributeSpec("venue", "venue", TrigramSimilarity()),
            ])


class TestCompaction:
    def test_threshold_triggers_compaction(self):
        index = IncrementalIndex(_source(), "title",
                                 compact_min=4, compact_ratio=0.25)
        for i in range(4):
            index.add_record(f"x{i}", title=f"fresh record {i}")
        assert index.compactions == 1
        stats = index.stats()
        assert stats["buffer"] == 0 and stats["tombstones"] == 0
        assert stats["base"] == len(TITLES) + 4

    def test_forced_compaction_preserves_results(self):
        index = IncrementalIndex(_source(), "title", compact_min=1000)
        index.add_record("x0", title="Adaptive Query Answering")
        index.delete("p1")
        records = _queries(["adaptive query processing", "schema matching"])
        pairs = _all_pairs(index, records)
        before = sorted(index.score_pairs(records, pairs, threshold=0.2))
        index.compact()
        after = sorted(index.score_pairs(records, pairs, threshold=0.2))
        assert before == after
        assert index.stats()["buffer"] == 0

    def test_compaction_listener_fires(self):
        index = IncrementalIndex(_source(), "title", compact_min=1000)
        fired = []
        index.on_compact(lambda: fired.append(True))
        index.compact()
        assert fired == [True]


class TestCandidates:
    def test_rare_tokens_rank_higher(self):
        source = LogicalSource(PhysicalSource("S"), ObjectType("P"))
        for i in range(20):
            source.add_record(f"c{i}", title=f"common words only {i}")
        source.add_record("rare", title="common zebra")
        index = IncrementalIndex(source, "title")
        candidates = index.candidate_ids("zebra common", max_candidates=5)
        assert candidates[0] == "rare"

    def test_max_candidates_bounds(self):
        index = IncrementalIndex(_source(), "title")
        assert len(index.candidate_ids("adaptive query", 2)) == 2

    def test_none_means_every_live_id(self):
        index = IncrementalIndex(_source(), "title")
        index.delete("p0")
        assert index.candidate_ids("anything", None) == index.ids()

    def test_postings_follow_mutations(self):
        index = IncrementalIndex(_source(), "title", compact_min=1000)
        index.update(ObjectInstance("p0", {"title": "zebra crossings"}))
        candidates = index.candidate_ids("zebra", 10)
        assert candidates == ["p0"]
        index.delete("p0")
        assert index.candidate_ids("zebra", 10) == []


class TestScoringEquivalence:
    """Bound kernels must agree with the scalar batch path bit-for-bit."""

    @pytest.mark.parametrize("similarity", ["trigram", "tfidf"],
                             ids=["ngram-bit", "sparse-tfidf"])
    def test_kernel_equals_scalar_route(self, similarity):
        kernel_index = IncrementalIndex(_source(), "title", similarity)
        scalar_index = IncrementalIndex(_source(), "title", similarity,
                                        build_kernels=False)
        assert kernel_index.stats()["vectorized_columns"] == 1
        assert scalar_index.stats()["vectorized_columns"] == 0
        records = _queries([
            "Adaptive Query Processing for Streams v0",   # exact hit
            "adaptive query processng for streams",        # noisy
            "an entirely unrelated sentence about zebras",  # unseen tokens
            "schema matching",
        ])
        pairs = _all_pairs(kernel_index, records)
        kernel = sorted(kernel_index.score_pairs(records, pairs, threshold=0.0))
        scalar = sorted(scalar_index.score_pairs(records, pairs, threshold=0.0))
        assert kernel == scalar
        assert kernel  # non-trivial comparison

    def test_mixed_base_and_buffer_rows(self):
        index = IncrementalIndex(_source(), "title", compact_min=1000)
        index.add_record("x0", title="adaptive query processing engines")
        index.update(ObjectInstance("p1", {"title": "schema matching redux"}))
        fresh = IncrementalIndex(index.snapshot(), "title")
        records = _queries(["adaptive query processing", "schema matching"])
        pairs = _all_pairs(index, records)
        assert sorted(index.score_pairs(records, pairs, threshold=0.1)) \
            == sorted(fresh.score_pairs(records, pairs, threshold=0.1))

    def test_multi_attribute_kernel_equals_scalar(self):
        specs = [
            AttributeSpec("title", "title", TrigramSimilarity()),
            AttributeSpec("venue", "venue", TfIdfCosineSimilarity()),
        ]
        combiner = WeightedFunction([2.0, 1.0])
        kernel_index = IncrementalIndex(_source(), specs=specs,
                                        combiner=combiner)
        scalar_specs = [
            AttributeSpec("title", "title", TrigramSimilarity()),
            AttributeSpec("venue", "venue", TfIdfCosineSimilarity()),
        ]
        scalar_index = IncrementalIndex(_source(), specs=scalar_specs,
                                        combiner=WeightedFunction([2.0, 1.0]),
                                        build_kernels=False)
        records = [
            ObjectInstance("q0", {"title": "adaptive query processing",
                                  "venue": "venue 1"}),
            ObjectInstance("q1", {"title": "schema matching with cupid",
                                  "venue": None}),
            ObjectInstance("q2", {"venue": "venue 2"}),  # missing title
        ]
        pairs = _all_pairs(kernel_index, records)
        assert sorted(kernel_index.score_pairs(records, pairs, threshold=0.0)) \
            == sorted(scalar_index.score_pairs(records, pairs, threshold=0.0))

    def test_missing_zero_policy_at_threshold_zero(self):
        source = _source(4)
        source.add_record("hole", title=None)
        for build_kernels in (True, False):
            index = IncrementalIndex(source, "title", missing="zero",
                                     build_kernels=build_kernels)
            records = _queries(["adaptive query"])
            pairs = _all_pairs(index, records)
            triples = index.score_pairs(records, pairs, threshold=0.0)
            assert (0, "hole", 0.0) in triples
            # positive thresholds filter the zero scores out again
            assert all(ref != "hole"
                       for _, ref, _ in index.score_pairs(
                           records, pairs, threshold=0.1))
