"""Property tests: the incremental index is indistinguishable from a
rebuild.

A random sequence of add / update / delete / query operations against
an :class:`IncrementalIndex` must answer every query exactly like an
index freshly built from the current live records — same candidates,
same scores, bit for bit.  (For corpus-aware similarities the
guarantee holds after :meth:`compact`, which refreshes the frozen
document frequencies; the trigram run checks every step.)
"""

import random

import pytest

from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.serve.index import IncrementalIndex

WORDS = ["adaptive", "stream", "schema", "query", "index", "cache",
         "graph", "join", "view", "cube", "match", "entity", "fusion",
         "cleaning", "warehouse", "duplicate"]


def _title(rng):
    return " ".join(rng.choice(WORDS)
                    for _ in range(rng.randint(2, 6))) \
        + f" {rng.randint(0, 40)}"


def _seed_source(rng, n=40):
    source = LogicalSource(PhysicalSource("REF"), ObjectType("Publication"))
    for i in range(n):
        source.add_record(f"p{i}", title=_title(rng))
    return source


def _match(index, value, threshold=0.2, max_candidates=10):
    record = ObjectInstance("probe", {"title": value})
    pairs = [(0, id) for id in index.candidate_ids(value, max_candidates)]
    triples = index.score_pairs([record], pairs, threshold=threshold)
    return sorted(((id, score) for _, id, score in triples),
                  key=lambda item: (-item[1], item[0]))


def _mutate(index, rng, counter):
    op = rng.random()
    live = index.ids()
    if op < 0.5 or not live:
        id = f"n{next(counter)}"
        index.add_record(id, title=_title(rng))
    elif op < 0.75:
        index.update(ObjectInstance(rng.choice(live),
                                    {"title": _title(rng)}))
    else:
        index.delete(rng.choice(live))


@pytest.mark.parametrize("seed", [7, 21, 99])
def test_incremental_equals_rebuilt_trigram(seed):
    rng = random.Random(seed)
    counter = iter(range(10**6))
    index = IncrementalIndex(_seed_source(rng), "title",
                             compact_min=16, compact_ratio=0.2)
    for step in range(60):
        _mutate(index, rng, counter)
        if step % 5 != 0:
            continue
        rebuilt = IncrementalIndex(index.snapshot(), "title")
        assert index.ids() == rebuilt.ids()
        for _ in range(3):
            value = _title(rng)
            assert index.candidate_ids(value, 10) \
                == rebuilt.candidate_ids(value, 10)
            assert _match(index, value) == _match(rebuilt, value)
        # a live record's own title must match itself exactly
        probe = index.get(rng.choice(index.ids())).get("title")
        own = _match(index, probe, threshold=0.99)
        assert own and own[0][1] == pytest.approx(1.0)
        assert own == _match(rebuilt, probe, threshold=0.99)


@pytest.mark.parametrize("seed", [13, 42])
def test_incremental_equals_rebuilt_tfidf_after_compaction(seed):
    rng = random.Random(seed)
    counter = iter(range(10**6))
    index = IncrementalIndex(_seed_source(rng, 30), "title", "tfidf",
                             compact_min=1000)
    for _ in range(25):
        _mutate(index, rng, counter)
    # between compactions document frequencies are frozen by design;
    # compact() refreshes them, after which the index must be
    # bit-identical to one built from scratch
    index.compact()
    rebuilt = IncrementalIndex(index.snapshot(), "title", "tfidf")
    assert index.ids() == rebuilt.ids()
    for _ in range(8):
        value = _title(rng)
        assert _match(index, value, threshold=0.0) \
            == _match(rebuilt, value, threshold=0.0)


def test_scalar_route_equals_kernel_route_under_mutations():
    rng = random.Random(5)
    kernel = IncrementalIndex(_seed_source(random.Random(5)), "title",
                              compact_min=12)
    scalar = IncrementalIndex(_seed_source(random.Random(5)), "title",
                              compact_min=12, build_kernels=False)
    kernel_counter = iter(range(10**6))
    scalar_counter = iter(range(10**6))
    for step in range(40):
        _mutate(kernel, random.Random(5000 + step), kernel_counter)
        _mutate(scalar, random.Random(5000 + step), scalar_counter)
        value = _title(rng)
        assert _match(kernel, value, threshold=0.0) \
            == _match(scalar, value, threshold=0.0)
