"""HTTP endpoint round-trip tests for the v1 serving API.

All traffic goes through :class:`repro.serve.Client`; raw
``http.client`` connections are used only where the client would get
in the way (legacy-redirect and envelope-shape assertions).
"""

import http.client
import json
import threading

import pytest

from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.serve import (Client, ConflictError, InvalidRequest, MatchService,
                         ServeConfig, ServeError, SnapshotUnavailable)
from repro.serve.http import build_server


@pytest.fixture
def server():
    source = LogicalSource(PhysicalSource("DBLP"), ObjectType("Publication"))
    source.add_record("p1", title="Adaptive Query Processing for Streams")
    source.add_record("p2", title="Schema Matching with Cupid")
    source.add_record("p3", title="Data Cleaning in Warehouses")
    service = MatchService(
        source, config=ServeConfig(attribute="title", threshold=0.6))
    server = build_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@pytest.fixture
def client(server):
    host, port = server.server_address[:2]
    return Client(f"http://{host}:{port}", timeout=5)


def _raw_request(server, method, path, body=None):
    """One request without redirect-following; returns (status, headers,
    parsed JSON body)."""
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=5)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        connection.request(method, path, body=payload,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        raw = response.read()
        parsed = json.loads(raw) if raw else None
        return response.status, dict(response.getheaders()), parsed
    finally:
        connection.close()


def _record(id, title):
    return ObjectInstance(id, {"title": title})


class TestEndpoints:
    def test_healthz(self, client):
        assert client.healthz() == {"status": "ok", "records": 3}

    def test_match_round_trip(self, client):
        payload = client.match(
            [_record("q1", "adaptive query processng for streams")])
        assert payload["domain"] == "query.Results"
        assert payload["range"] == "DBLP.Publication"
        (reference_id, score), = payload["matches"]["q1"]
        assert reference_id == "p1" and score > 0.6
        assert payload["correspondences"] == [["q1", "p1", score]]

    def test_match_record_convenience(self, client):
        matches = client.match_record(
            _record("q1", "schema matching with cupid"))
        assert matches and matches[0][0] == "p2"

    def test_match_batch_with_source(self, client):
        payload = client.match(
            [_record("a", "Schema Matching with Cupid"),
             _record("b", "unrelated zebra talk")],
            source="GS.Publication")
        assert payload["domain"] == "GS.Publication"
        assert payload["matches"]["a"][0][0] == "p2"
        assert payload["matches"]["b"] == []

    def test_ingest_then_match_then_delete(self, client):
        assert client.ingest(
            [_record("p9", "Streaming Entity Resolution")]) \
            == {"added": 1, "updated": 0}

        matches = client.match_record(
            _record("q", "streaming entity resolution"))
        assert matches[0][0] == "p9"

        assert client.delete(["p9", "ghost"]) \
            == {"deleted": ["p9"], "missing": ["ghost"]}

        assert client.match_record(
            _record("q2", "streaming entity resolution")) == []

    def test_upsert_counts_updates(self, client):
        assert client.ingest([_record("p1", "Renamed")]) \
            == {"added": 0, "updated": 1}

    def test_stats(self, client):
        client.match_record(_record("q", "schema matching"))
        payload = client.stats()
        assert payload["records"] == 3
        assert payload["queries"] >= 1
        assert payload["index"]["vectorized_columns"] == 1

    def test_snapshot_without_data_dir_is_409(self, client):
        with pytest.raises(SnapshotUnavailable):
            client.snapshot()


class TestLegacyRedirects:
    @pytest.mark.parametrize("method,path", [
        ("GET", "/healthz"), ("GET", "/stats"),
        ("POST", "/match"), ("POST", "/ingest"), ("POST", "/delete"),
    ])
    def test_unversioned_paths_moved_permanently(self, server, method, path):
        status, headers, payload = _raw_request(server, method, path, {})
        assert status == 301
        assert headers["Location"] == f"/v1{path}"
        assert payload["error"]["code"] == "moved_permanently"

    def test_redirect_target_answers(self, server):
        _, headers, _ = _raw_request(server, "GET", "/healthz")
        status, _, payload = _raw_request(server, "GET", headers["Location"])
        assert status == 200 and payload["records"] == 3


class TestErrorEnvelope:
    def test_unknown_path(self, server):
        status, _, payload = _raw_request(server, "POST", "/v1/nope", {})
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        assert "unknown path" in payload["error"]["message"]

    def test_invalid_json(self, server):
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=5)
        try:
            connection.request("POST", "/v1/match", body=b"not json",
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert payload["error"]["code"] == "invalid_request"
        assert "invalid JSON" in payload["error"]["message"]

    def test_missing_records(self, server):
        status, _, payload = _raw_request(server, "POST", "/v1/match", {})
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        assert "records" in payload["error"]["message"]

    def test_bad_record_shape(self, server):
        status, _, payload = _raw_request(
            server, "POST", "/v1/ingest",
            {"records": [{"attributes": {}}]})
        assert status == 400
        assert "id" in payload["error"]["message"]

    def test_delete_needs_ids(self, server):
        status, _, payload = _raw_request(server, "POST", "/v1/delete", {})
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"

    def test_client_raises_typed_errors(self, client):
        with pytest.raises(InvalidRequest):
            client.delete([])

    def test_client_envelope_code_mapping(self, client):
        envelope = json.dumps(
            {"error": {"code": "conflict", "message": "dup"}}).encode()
        with pytest.raises(ConflictError):
            client._raise_envelope(409, envelope)

    def test_client_maps_unknown_codes_to_serve_error(self, client):
        with pytest.raises(ServeError) as excinfo:
            client._request("POST", "nope", {})
        assert excinfo.value.code == "not_found"
        assert excinfo.value.http_status == 404


class TestClusteredService:
    """The full stack over a partitioned backend: HTTP -> service ->
    cluster router -> shards, including /v1/snapshot and a warm
    restart from the written image."""

    def _serve(self, service):
        server = build_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        return server, thread, Client(f"http://{host}:{port}", timeout=5)

    def _stop(self, server, thread, service):
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.close()

    def test_snapshot_then_restore_answers_identically(self, tmp_path):
        source = LogicalSource(PhysicalSource("DBLP"),
                               ObjectType("Publication"))
        for i in range(12):
            source.add_record(f"p{i}", title=f"stream processing paper {i}")
        config = ServeConfig(attribute="title", threshold=0.3, shards=2,
                             shard_processes=False,
                             data_dir=str(tmp_path))
        service = MatchService(source, config=config)
        server, thread, client = self._serve(service)
        probe = _record("q", "stream processing paper 3")
        try:
            client.ingest([_record("extra", "entity fusion survey")])
            manifest = client.snapshot()
            assert manifest["seq"] == 13
            before_matches = client.match_record(probe)
            before_index = client.stats()["index"]
            assert before_index["shards"] == 2
        finally:
            self._stop(server, thread, service)

        restored = MatchService(config=config)  # no reference: warm restore
        server, thread, client = self._serve(restored)
        try:
            assert client.healthz()["records"] == 13
            assert client.match_record(probe) == before_matches
            assert client.stats()["index"] == before_index
        finally:
            self._stop(server, thread, restored)


class TestConcurrentClients:
    def test_parallel_match_requests(self, client):
        results = {}
        errors = []

        def worker(i):
            try:
                results[i] = client.match_record(
                    _record(f"q{i}", f"schema matching with cupid {i}"))
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert len(results) == 12
        for matches in results.values():
            assert matches and matches[0][0] == "p2"
