"""HTTP endpoint round-trip tests for the serving subsystem."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.serve import MatchService
from repro.serve.http import build_server


@pytest.fixture
def server():
    source = LogicalSource(PhysicalSource("DBLP"), ObjectType("Publication"))
    source.add_record("p1", title="Adaptive Query Processing for Streams")
    source.add_record("p2", title="Schema Matching with Cupid")
    source.add_record("p3", title="Data Cleaning in Warehouses")
    service = MatchService(source, "title", threshold=0.6)
    server = build_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _url(server, path):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=5) as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        _url(server, path), data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, json.loads(response.read())


def _post_raw(server, path, body: bytes):
    request = urllib.request.Request(
        _url(server, path), data=body,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = _get(server, "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "records": 3}

    def test_match_round_trip(self, server):
        status, payload = _post(server, "/match", {
            "record": {"id": "q1", "attributes": {
                "title": "adaptive query processng for streams"}},
        })
        assert status == 200
        assert payload["domain"] == "query.Results"
        assert payload["range"] == "DBLP.Publication"
        (reference_id, score), = payload["matches"]["q1"]
        assert reference_id == "p1" and score > 0.6
        assert payload["correspondences"] == [["q1", "p1", score]]

    def test_match_batch_with_source(self, server):
        status, payload = _post(server, "/match", {
            "records": [
                {"id": "a", "attributes": {"title": "Schema Matching with Cupid"}},
                {"id": "b", "attributes": {"title": "unrelated zebra talk"}},
            ],
            "source": "GS.Publication",
        })
        assert status == 200
        assert payload["domain"] == "GS.Publication"
        assert payload["matches"]["a"][0][0] == "p2"
        assert payload["matches"]["b"] == []

    def test_ingest_then_match_then_delete(self, server):
        status, payload = _post(server, "/ingest", {
            "records": [{"id": "p9", "attributes": {
                "title": "Streaming Entity Resolution"}}],
        })
        assert status == 200
        assert payload == {"added": 1, "updated": 0}

        status, payload = _post(server, "/match", {
            "record": {"id": "q", "attributes": {
                "title": "streaming entity resolution"}},
        })
        assert payload["matches"]["q"][0][0] == "p9"

        status, payload = _post(server, "/delete", {"ids": ["p9", "ghost"]})
        assert status == 200
        assert payload == {"deleted": ["p9"], "missing": ["ghost"]}

        status, payload = _post(server, "/match", {
            "record": {"id": "q2", "attributes": {
                "title": "streaming entity resolution"}},
        })
        assert payload["matches"]["q2"] == []

    def test_upsert_counts_updates(self, server):
        status, payload = _post(server, "/ingest", {
            "records": [{"id": "p1", "attributes": {"title": "Renamed"}}],
        })
        assert status == 200
        assert payload == {"added": 0, "updated": 1}

    def test_stats(self, server):
        _post(server, "/match", {
            "record": {"id": "q", "attributes": {"title": "schema matching"}}})
        status, payload = _get(server, "/stats")
        assert status == 200
        assert payload["records"] == 3
        assert payload["queries"] >= 1
        assert payload["index"]["vectorized_columns"] == 1


class TestErrors:
    def test_unknown_path(self, server):
        status, payload = _post_raw(server, "/nope", b"{}")
        assert status == 404
        assert "unknown path" in payload["error"]

    def test_invalid_json(self, server):
        status, payload = _post_raw(server, "/match", b"not json")
        assert status == 400
        assert "invalid JSON" in payload["error"]

    def test_missing_records(self, server):
        status, payload = _post_raw(server, "/match", b"{}")
        assert status == 400
        assert "records" in payload["error"]

    def test_bad_record_shape(self, server):
        status, payload = _post_raw(
            server, "/ingest", json.dumps(
                {"records": [{"attributes": {}}]}).encode())
        assert status == 400
        assert "id" in payload["error"]

    def test_delete_needs_ids(self, server):
        status, payload = _post_raw(server, "/delete", b"{}")
        assert status == 400


class TestConcurrentClients:
    def test_parallel_match_requests(self, server):
        results = {}
        errors = []

        def client(i):
            try:
                _, payload = _post(server, "/match", {
                    "record": {"id": f"q{i}", "attributes": {
                        "title": f"schema matching with cupid {i}"}},
                })
                results[i] = payload["matches"][f"q{i}"]
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert len(results) == 12
        for matches in results.values():
            assert matches and matches[0][0] == "p2"
