"""Observability is a pure observer: identical results, rich signals.

Three contracts from docs/observability.md are pinned here:

1. **Bit-identity** — a service with ``metrics=True`` and
   ``trace_sample_rate=1.0`` answers byte-for-byte what the same
   service answers with observability off, for the single in-heap
   index and for the sharded cluster (threads and processes).
2. **Trace propagation** — a trace begun at the boundary collects
   spans from the micro-batcher, the cluster rounds and the shard
   workers on the far side of the FrameChannel.
3. **Exposition** — ``/v1/metrics`` serves parseable Prometheus text
   covering the service, index, cluster and WAL counters, and every
   response carries a correlatable ``X-Request-Id``.
"""

import http.client
import io
import json
import random
import threading
import time

import pytest

from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.obs import trace as obs_trace
from repro.serve import MatchService, ServeConfig
from repro.serve.cluster import _fork_available
from repro.serve.http import build_server

WORDS = ["adaptive", "stream", "schema", "query", "index", "cache",
         "graph", "join", "view", "cube", "match", "entity", "fusion"]


def _title(rng):
    return " ".join(rng.choice(WORDS) for _ in range(4))


def _reference(n=24, seed=11):
    rng = random.Random(seed)
    source = LogicalSource(PhysicalSource("DBLP"), ObjectType("Publication"))
    for i in range(n):
        source.add_record(f"p{i}", title=f"{_title(rng)} {i}")
    return source


def _queries(seed=3, count=5):
    rng = random.Random(seed)
    return [ObjectInstance(f"q{i}", {"title": _title(rng)})
            for i in range(count)]


def _service(observed, **overrides):
    config = ServeConfig(attribute="title", threshold=0.2,
                         metrics=observed,
                         trace_sample_rate=1.0 if observed else 0.0,
                         **overrides)
    return MatchService(_reference(), config=config)


def _transcript(service):
    """One mutation-heavy conversation; returns every answer."""
    answers = [service.match_record(record) for record in _queries()]
    answers.append(service.match_batch(_queries(seed=5)).to_rows())
    service.ingest([ObjectInstance("n1", {"title": "entity fusion view"}),
                    ObjectInstance("n2", {"title": "graph join cache"})])
    answers.append(service.delete("p3"))
    answers.append(service.match_batch(_queries(seed=7)).to_rows())
    answers.append([service.match_record(record)
                    for record in _queries(seed=9)])
    return answers


class TestBitIdentity:
    def _assert_equivalent(self, **topology):
        plain = _service(False, **topology)
        observed = _service(True, **topology)
        try:
            assert _transcript(observed) == _transcript(plain)
            # the observed run really did record something
            assert "repro_service_queries_total" in observed.metrics.render()
        finally:
            plain.close()
            observed.close()

    def test_single_index(self):
        self._assert_equivalent()

    def test_thread_cluster(self):
        self._assert_equivalent(shards=2, shard_processes=False)

    @pytest.mark.skipif(not _fork_available(),
                        reason="fork start method unavailable")
    def test_process_cluster(self):
        self._assert_equivalent(shards=2, shard_processes=True)


class TestTracePropagation:
    def test_spans_cross_the_frame_channel(self):
        service = _service(True, shards=2, shard_processes=False)
        try:
            context = service.tracer.begin("t-cluster")
            assert context is not None
            with obs_trace.activate(context):
                service.match_record(_queries(count=1)[0])
            service.tracer.finish(context)
            names = [span["name"] for span in context.spans]
            assert "service.batch" in names
            assert any(name.startswith("cluster.") for name in names)
            shard_spans = [span for span in context.spans
                           if span["name"].startswith("shard.")]
            assert {span["shard"] for span in shard_spans} == {0, 1}
            for span in shard_spans:
                assert span["trace_id"] == "t-cluster"
                assert span["parent_id"] is not None
                assert span["duration"] >= 0.0
            assert service.tracer.recent()[-1]["trace_id"] == "t-cluster"
        finally:
            service.close()

    def test_untraced_requests_produce_no_spans(self):
        service = _service(True, shards=2, shard_processes=False)
        try:
            service.config.trace_sample_rate = 0.0
            service.match_record(_queries(count=1)[0])
            assert obs_trace.current_trace() is None
        finally:
            service.close()


class TestMetricsContent:
    def test_cluster_rounds_and_wal_are_exposed(self, tmp_path):
        service = _service(True, shards=2, shard_processes=False,
                           data_dir=str(tmp_path))
        try:
            _transcript(service)
            service.snapshot()
            text = service.metrics.render()
            assert 'repro_cluster_round_seconds_bucket{' in text
            assert 'round="candidates"' in text
            assert 'shard="1"' in text
            assert 'repro_index_pruning_queries_total{shard="0"}' in text
            assert 'repro_wal_syncs_total{shard="0"}' in text
            assert "repro_service_cache_hits_total" in text
            assert "repro_service_batch_size_bucket" in text
        finally:
            service.close()

    def test_single_index_counters_track_sources(self):
        service = _service(True)
        try:
            _transcript(service)
            summary = service.metrics.summary()
            assert summary["repro_service_queries_total"] \
                == service.queries
            assert summary["repro_index_match_calls_total"] \
                == service.index.timing_counters()["match_calls"]
            assert summary["repro_index_pruning_queries_total"] \
                == service.index.pruning_counters()["queries"]
        finally:
            service.close()

    def test_stats_snapshot_stays_timing_free(self):
        # restore-equality depends on stats() never carrying clocks
        service = _service(True)
        try:
            _transcript(service)
            assert "match_seconds" not in service.stats()["index"]
            assert "trace" in service.stats()
        finally:
            service.close()


@pytest.fixture
def observed_server():
    service = _service(True)
    service.config.slow_query_ms = 1e-9   # everything is "slow"
    service.logger.stream = io.StringIO()
    server = build_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.close()


def _raw_request(server, method, path, body=None, headers=()):
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=5)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        connection.request(method, path, body=payload,
                           headers={"Content-Type": "application/json",
                                    **dict(headers)})
        response = connection.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        parsed = (json.loads(raw)
                  if content_type.startswith("application/json") and raw
                  else raw.decode())
        return response.status, dict(response.getheaders()), parsed
    finally:
        connection.close()


class TestHttpExposition:
    def test_metrics_round_trip(self, observed_server):
        server, _ = observed_server
        _raw_request(server, "POST", "/v1/match", body={
            "records": [{"id": "q1",
                         "attributes": {"title": "schema match query"}}]})
        # request metrics commit just after the response bytes leave,
        # so a back-to-back scrape can race them: poll briefly
        deadline = time.monotonic() + 5.0
        while True:
            status, headers, text = _raw_request(server, "GET",
                                                 "/v1/metrics")
            if ("repro_http_requests_total" in text
                    or time.monotonic() > deadline):
                break
        assert status == 200
        assert headers["Content-Type"] \
            == "text/plain; version=0.0.4; charset=utf-8"
        assert "# TYPE repro_service_queries_total counter" in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert 'repro_http_requests_total{method="POST",path="/v1/match"} 1' \
            in text
        for line in text.splitlines():   # every sample line parses
            if line.startswith("#") or not line:
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            if value != "+Inf":
                float(value)

    def test_metrics_404_when_disabled(self):
        service = _service(False)
        server = build_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, _, parsed = _raw_request(server, "GET", "/v1/metrics")
            assert status == 404
            assert parsed["error"]["code"] == "not_found"
            assert parsed["error"]["request_id"].startswith("req-")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.close()

    def test_request_id_echoed_and_minted(self, observed_server):
        server, _ = observed_server
        _, headers, _ = _raw_request(server, "GET", "/v1/healthz",
                                     headers=[("X-Request-Id", "mine-42")])
        assert headers["X-Request-Id"] == "mine-42"
        _, headers, _ = _raw_request(server, "GET", "/v1/healthz")
        assert headers["X-Request-Id"].startswith("req-")

    def test_error_envelope_carries_request_id(self, observed_server):
        server, _ = observed_server
        status, headers, parsed = _raw_request(
            server, "POST", "/v1/match", body={"records": "nope"},
            headers=[("X-Request-Id", "bad-1")])
        assert status == 400
        assert headers["X-Request-Id"] == "bad-1"
        assert parsed["error"]["request_id"] == "bad-1"

    def test_stats_exposes_trace_summary(self, observed_server):
        server, _ = observed_server
        _raw_request(server, "POST", "/v1/match", body={
            "records": [{"id": "q1",
                         "attributes": {"title": "graph join cache"}}]},
            headers=[("X-Request-Id", "traced-1")])
        # finished traces land in the ring just after the response
        # bytes leave; poll the same way the scrape test does
        deadline = time.monotonic() + 5.0
        while True:
            _, _, stats = _raw_request(server, "GET", "/v1/stats")
            trace = stats["trace"]
            traced = {entry["trace_id"] for entry in trace["recent"]}
            if "traced-1" in traced or time.monotonic() > deadline:
                break
        assert trace["sample_rate"] == 1.0
        assert trace["requests"] >= 1
        assert trace["sampled"] >= 1
        assert "traced-1" in traced

    def test_access_and_slow_query_logs(self, observed_server):
        server, service = observed_server
        _raw_request(server, "POST", "/v1/match", body={
            "records": [{"id": "q1",
                         "attributes": {"title": "entity fusion view"}}]},
            headers=[("X-Request-Id", "logged-1")])
        events = [json.loads(line)
                  for line in service.logger.stream.getvalue().splitlines()]
        slow = [event for event in events if event["event"] == "slow_query"]
        assert slow and slow[0]["level"] == "warning"
        assert slow[0]["trace_id"] == "logged-1"
        access = [event for event in events
                  if event["event"] == "http_access"]
        assert access and access[0]["request_id"] == "logged-1"
        assert "POST /v1/match" in access[0]["line"]
