"""Tests for the standing match service: equivalence, reuse, batching."""

import threading

import pytest

from repro.core.operators.functions import AvgFunction
from repro.engine import BatchMatchEngine, EngineConfig
from repro.engine.request import AttributeSpec, MatchRequest
from repro.model.entity import ObjectInstance
from repro.model.repository import MappingRepository
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.serve import MatchService, ServeConfig
from repro.sim.ngram import TrigramSimilarity
from repro.sim.tfidf import TfIdfCosineSimilarity

ENGINE = BatchMatchEngine(EngineConfig(workers=1))


def _reference(n=24, name="DBLP"):
    words = ["adaptive", "stream", "schema", "query", "index", "cache",
             "graph", "join", "view", "cube", "match", "entity"]
    source = LogicalSource(PhysicalSource(name), ObjectType("Publication"))
    for i in range(n):
        title = " ".join(words[(i * 5 + j) % len(words)] for j in range(4))
        source.add_record(f"p{i}", title=f"{title} {i}",
                          venue=f"venue {i % 3}")
    return source


def _service(reference, repository=None, **config_kwargs):
    """A MatchService built the config way (the non-deprecated path)."""
    return MatchService(reference, config=ServeConfig(**config_kwargs),
                        repository=repository)


def _query_source(values, name="query"):
    source = LogicalSource(PhysicalSource(name), ObjectType("Results"))
    for i, value in enumerate(values):
        source.add_record(f"q{i}", title=value)
    return source


QUERY_TITLES = [
    "adaptive stream schema query",
    "stream schema query index",
    "cache graph join view 5",
    "entity matching surveys",
    "cube match entity adaptive 11",
]


class TestOfflineEquivalence:
    """Frozen reference + exhaustive candidates == the offline engine."""

    def test_trigram_bit_identical_to_engine(self):
        reference = _reference()
        service = _service(reference, attribute="title",
                           similarity="trigram",
                           threshold=0.3, max_candidates=None)
        queries = _query_source(QUERY_TITLES)
        served = service.match_batch(list(queries))
        request = MatchRequest(
            domain=queries, range=service.index.snapshot(),
            specs=[AttributeSpec("title", "title", TrigramSimilarity())],
            threshold=0.3)
        offline = ENGINE.execute(request)
        assert served.to_rows() == offline.to_rows()
        assert served.to_rows()

    def test_equivalence_survives_mutations(self):
        service = _service(_reference(), attribute="title",
                           similarity="trigram",
                           threshold=0.2, max_candidates=None,
                           compact_min=6)
        service.ingest([
            ObjectInstance(f"x{i}", {"title": f"stream query engine {i}"})
            for i in range(8)
        ])
        service.delete("p3")
        service.update(ObjectInstance("p4", {"title": "renamed entity row"}))
        queries = _query_source(QUERY_TITLES + ["stream query engine 3"])
        served = service.match_batch(list(queries))
        request = MatchRequest(
            domain=queries, range=service.index.snapshot(),
            specs=[AttributeSpec("title", "title", TrigramSimilarity())],
            threshold=0.2)
        assert served.to_rows() == ENGINE.execute(request).to_rows()

    def test_tfidf_bit_identical_with_frozen_statistics(self):
        """With document frequencies pinned to the service's reference
        corpus, the sparse serving kernel reproduces the engine's CSR
        kernel bit-for-bit."""
        sim = TfIdfCosineSimilarity()
        service = _service(_reference(), attribute="title", similarity=sim,
                           threshold=0.1, max_candidates=None)
        queries = _query_source(QUERY_TITLES)
        served = service.match_batch(list(queries))
        # freeze the service's reference-corpus IDF for the engine run
        # (the engine would otherwise re-prepare over both corpora)
        sim.prepare = lambda values: None
        request = MatchRequest(
            domain=queries, range=service.index.snapshot(),
            specs=[AttributeSpec("title", "title", sim)],
            threshold=0.1)
        offline = ENGINE.execute(request)
        assert served.to_rows() == offline.to_rows()
        assert served.to_rows()

    def test_multi_attribute_equivalence(self):
        specs = [AttributeSpec("title", "title", TrigramSimilarity()),
                 AttributeSpec("venue", "venue", TrigramSimilarity())]
        service = _service(_reference(),
                           specs=specs, combiner=AvgFunction(),
                           threshold=0.2, max_candidates=None)
        queries = LogicalSource(PhysicalSource("query"), ObjectType("R"))
        queries.add_record("q0", title="adaptive stream schema query 0",
                           venue="venue 0")
        queries.add_record("q1", title="cache graph join view", venue=None)
        served = service.match_batch(list(queries))
        request = MatchRequest(
            domain=queries, range=service.index.snapshot(),
            specs=[AttributeSpec("title", "title", TrigramSimilarity()),
                   AttributeSpec("venue", "venue", TrigramSimilarity())],
            combiner=AvgFunction(), threshold=0.2)
        assert served.to_rows() == ENGINE.execute(request).to_rows()
        assert served.to_rows()


class TestReuseCache:
    def test_repeated_query_hits_cache(self):
        service = _service(_reference(), threshold=0.3)
        record = ObjectInstance("q", {"title": "adaptive stream schema"})
        first = service.match_record(record)
        second = service.match_record(
            ObjectInstance("other-id", {"title": "adaptive stream schema"}))
        assert first == second
        assert service.cache_stats() == {"hits": 1, "misses": 1, "size": 1}

    def test_mutation_invalidates_affected_entries(self):
        service = _service(_reference(), threshold=0.3)
        record = ObjectInstance("q", {"title": "adaptive stream schema"})
        before = service.match_record(record)
        service.add(ObjectInstance("new", {"title": "adaptive stream schema"}))
        after = service.match_record(record)
        assert service.cache_stats()["hits"] == 0  # entry was dropped
        assert ("new", pytest.approx(1.0)) in [
            (id, score) for id, score in after]
        assert before != after

    def test_unrelated_mutation_keeps_entries(self):
        service = _service(_reference(), threshold=0.3)
        record = ObjectInstance("q", {"title": "adaptive stream schema"})
        service.match_record(record)
        service.add(ObjectInstance("new", {"title": "zebra crossings"}))
        service.match_record(record)
        assert service.cache_stats()["hits"] == 1

    def test_delete_invalidates_stale_results(self):
        service = _service(_reference(), threshold=0.3)
        record = ObjectInstance("q", {"title": "adaptive stream schema"})
        before = service.match_record(record)
        assert before
        top_id = before[0][0]
        service.delete(top_id)
        after = service.match_record(record)
        assert all(id != top_id for id, _ in after)

    def test_exhaustive_mode_clears_on_mutation(self):
        service = _service(_reference(), threshold=0.3,
                           max_candidates=None)
        record = ObjectInstance("q", {"title": "adaptive stream schema"})
        service.match_record(record)
        service.add(ObjectInstance("new", {"title": "zebra"}))
        service.match_record(record)
        assert service.cache_stats()["hits"] == 0

    def test_compaction_clears_cache(self):
        service = _service(_reference(), threshold=0.3,
                           compact_min=1, compact_ratio=0.01)
        record = ObjectInstance("q", {"title": "adaptive stream schema"})
        service.match_record(record)
        # compact_min=1, tiny ratio: the next mutation compacts
        service.add(ObjectInstance("new", {"title": "zebra"}))
        assert service.index.compactions >= 1
        assert service.cache_stats()["size"] == 0

    def test_missing_value_matches_nothing(self):
        service = _service(_reference())
        assert service.match_record(ObjectInstance("q", {})) == []


class TestMicroBatching:
    def test_concurrent_requests_are_batched(self):
        service = _service(_reference(64), threshold=0.2, cache_size=0)
        records = [
            ObjectInstance(f"q{i}", {"title": QUERY_TITLES[i % len(QUERY_TITLES)]
                                     + f" tail {i}"})
            for i in range(32)
        ]
        serial_expected = {
            record.id: _service(_reference(64),
                                threshold=0.2).match_record(record)
            for record in records[:4]
        }
        results = {}
        errors = []

        def worker(record):
            try:
                results[record.id] = service.match_record(record)
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(record,))
                   for record in records]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == len(records)
        for id, expected in serial_expected.items():
            assert results[id] == expected
        stats = service.stats()
        assert stats["queries"] == len(records)
        assert stats["batched_records"] == len(records)
        assert 1 <= stats["batches"] <= len(records)

    def test_concurrent_queries_and_mutations(self):
        service = _service(_reference(48), threshold=0.2, compact_min=8)
        errors = []

        def query_worker(i):
            try:
                for j in range(10):
                    service.match_record(ObjectInstance(
                        f"q{i}-{j}", {"title": f"adaptive stream {i} {j}"}))
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        def mutate_worker(i):
            try:
                for j in range(10):
                    id = f"m{i}-{j}"
                    service.add(ObjectInstance(id, {"title": f"fresh {i} {j}"}))
                    if j % 3 == 0:
                        service.delete(id)
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=query_worker, args=(i,))
                   for i in range(4)]
        threads += [threading.Thread(target=mutate_worker, args=(i,))
                    for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # 48 seed + 20 adds - 8 deletes
        assert len(service.index) == 48 + 20 - 8


class TestBatchFailurePropagation:
    def test_followers_wake_on_persist_failure(self):
        """A failing batch must raise in *every* waiter — a follower
        whose request was drained from the queue but never signalled
        would spin in match_record forever."""

        class BrokenRepository:
            def append(self, name, correspondences):
                raise RuntimeError("disk full")

        service = _service(_reference(), threshold=0.2, cache_size=0)
        service.repository = BrokenRepository()
        service.mapping_name = "broken"
        outcomes = {}

        def worker(i):
            record = ObjectInstance(f"q{i}", {"title": f"adaptive stream {i}"})
            try:
                outcomes[i] = ("ok", service.match_record(record))
            except RuntimeError as error:
                outcomes[i] = ("error", str(error))

        threads = [threading.Thread(target=worker, args=(i,), daemon=True)
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not any(thread.is_alive() for thread in threads), \
            "a waiter hung after the batch failed"
        assert len(outcomes) == 6
        assert all(kind == "error" and "disk full" in detail
                   for kind, detail in outcomes.values())


class TestRepositoryPersistence:
    def test_scored_batches_are_appended(self):
        repository = MappingRepository(":memory:")
        service = _service(_reference(), threshold=0.3,
                           repository=repository,
                           mapping_name="served")
        queries = _query_source(QUERY_TITLES)
        mapping = service.match_batch(list(queries))
        stored = repository.load("served")
        assert stored.to_rows() == mapping.to_rows()
        assert stored.domain == "query.Results"
        assert stored.range == service.index.name

    def test_repeated_queries_do_not_duplicate_rows(self):
        repository = MappingRepository(":memory:")
        service = _service(_reference(), threshold=0.3,
                           repository=repository,
                           mapping_name="served")
        queries = list(_query_source(QUERY_TITLES))
        first = service.match_batch(queries)
        persisted = service.persisted
        service.match_batch(queries)  # cache hits: nothing rescored
        assert service.persisted == persisted
        assert repository.load("served").to_rows() == first.to_rows()

    def test_repository_requires_mapping_name(self):
        with pytest.raises(ValueError):
            _service(_reference(),
                     repository=MappingRepository(":memory:"))


class TestLegacyKeywordArguments:
    """The pre-config keyword surface still works, but warns."""

    def test_legacy_kwargs_warn_and_behave_like_config(self):
        reference = _reference()
        with pytest.warns(DeprecationWarning):
            legacy = MatchService(reference, "title", threshold=0.3)
        config_style = _service(_reference(), threshold=0.3)
        record = ObjectInstance("q", {"title": "adaptive stream schema"})
        assert legacy.match_record(record) \
            == config_style.match_record(record)
        assert legacy.config.threshold == 0.3

    def test_config_plus_legacy_kwargs_is_rejected(self):
        with pytest.raises(ValueError):
            MatchService(_reference(), "title",
                         config=ServeConfig(attribute="title"))


class TestValidation:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            _service(_reference(), threshold=1.5)
        with pytest.raises(ValueError):
            _service(_reference(), max_candidates=0)
        with pytest.raises(ValueError):
            _service(_reference(), cache_size=-1)
        with pytest.raises(ValueError):
            MatchService()

    def test_stats_shape(self):
        service = _service(_reference())
        stats = service.stats()
        assert {"records", "queries", "batches", "cache", "index"} \
            <= set(stats)
