"""Impact-ordered candidate pruning: exhaustive equivalence harness.

The pruned top-k path (`IncrementalIndex(pruning="always")`) must be
**bit-identical** — same ids, same float scores, same order — to the
exhaustive ``bincount`` ranking (``pruning="never"``) on every query,
across randomized add/update/delete/compaction interleavings, every
threshold, every ``max_candidates``, and all three index shapes
(trigram, TF-IDF, multi-attribute).  The same holds one level up: an
N-shard :class:`ClusterIndex` with pruning equals a 1-shard cluster
equals the single index, including under divergent per-shard
compaction points and process-mode workers.

The hub-token stress test regression-guards the *sublinearity* claim
without timing: with one token in 90% of the reference, the pruned
path must touch a bounded fraction of the posting mass (counters
``postings_touched`` / ``postings_skipped``) while answering
identically.
"""

import itertools
import random

import pytest

from repro.core.operators.functions import get_combination
from repro.engine.request import AttributeSpec
from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.serve import ClusterIndex, IncrementalIndex
from repro.serve.cluster import _fork_available
from repro.sim.ngram import TrigramSimilarity
from repro.sim.tfidf import TfIdfCosineSimilarity

numpy = pytest.importorskip("numpy")

WORDS = ["adaptive", "stream", "schema", "query", "index", "cache",
         "graph", "join", "view", "cube", "match", "entity", "fusion",
         "cleaning", "warehouse", "duplicate", "lineage", "canopy"]


def _title(rng, hub_probability=0.0):
    tokens = [rng.choice(WORDS) for _ in range(rng.randint(2, 5))]
    if hub_probability and rng.random() < hub_probability:
        tokens.insert(0, "ubiquitous")
    return " ".join(tokens) + f" {rng.randint(0, 60)}"


def _reference(rng, n=60, hub_probability=0.0):
    source = LogicalSource(PhysicalSource("REF"), ObjectType("Publication"))
    for i in range(n):
        source.add_record(f"p{i}", title=_title(rng, hub_probability))
    return source


def _queries(rng, count=8, hub_probability=0.0):
    return [ObjectInstance(f"q{i}", {"title": _title(rng, hub_probability)})
            for i in range(count)]


def _twins(reference, **kwargs):
    """The same index twice, pruned and exhaustive."""
    rebuilt = LogicalSource(reference.physical, reference.object_type)
    for instance in reference:
        rebuilt.add(instance)
    return (IncrementalIndex(reference, pruning="always", **kwargs),
            IncrementalIndex(rebuilt, pruning="never", **kwargs))


def _assert_identical(pruned, exhaustive, queries, *, threshold,
                      max_candidates):
    expected = exhaustive.match_records(queries, threshold=threshold,
                                        max_candidates=max_candidates)
    actual = pruned.match_records(queries, threshold=threshold,
                                  max_candidates=max_candidates)
    assert actual == expected  # bit-identical: ids, floats, order


def _mutate(indexes, rng, counter):
    """Apply one random mutation to every index identically."""
    live = indexes[0].ids()
    op = rng.random()
    if op < 0.5 or not live:
        record = ObjectInstance(f"n{next(counter)}", {"title": _title(rng)})
        for index in indexes:
            index.add(record)
    elif op < 0.75:
        record = ObjectInstance(rng.choice(live), {"title": _title(rng)})
        for index in indexes:
            index.update(record)
    else:
        id = rng.choice(live)
        for index in indexes:
            index.delete(id)


class TestSingleIndexEquivalence:
    @pytest.mark.parametrize("seed", [7, 21, 99])
    def test_trigram_over_mutation_interleavings(self, seed):
        rng = random.Random(seed)
        pruned, exhaustive = _twins(_reference(rng), attribute="title",
                                    similarity=TrigramSimilarity(),
                                    compact_min=8)
        counter = itertools.count()
        for step in range(30):
            _mutate((pruned, exhaustive), rng, counter)
            _assert_identical(pruned, exhaustive, _queries(rng, 4),
                              threshold=rng.choice([0.0, 0.3, 0.6, 0.9]),
                              max_candidates=rng.choice([1, 3, 10, 50]))
        assert pruned.compactions == exhaustive.compactions
        assert pruned.compactions > 0  # interleavings crossed compaction

    @pytest.mark.parametrize("seed", [5, 42])
    def test_tfidf_over_mutation_interleavings(self, seed):
        rng = random.Random(seed)
        pruned, exhaustive = _twins(_reference(rng), attribute="title",
                                    similarity=TfIdfCosineSimilarity(),
                                    compact_min=8)
        counter = itertools.count()
        for step in range(20):
            _mutate((pruned, exhaustive), rng, counter)
            _assert_identical(pruned, exhaustive, _queries(rng, 4),
                              threshold=rng.choice([0.0, 0.3, 0.6]),
                              max_candidates=rng.choice([1, 5, 25]))

    @pytest.mark.parametrize("combiner", ["avg", "min", "max", "weighted"])
    def test_multi_attribute_over_mutations(self, combiner):
        rng = random.Random(13)
        specs = [AttributeSpec("title", "title", TrigramSimilarity()),
                 AttributeSpec("venue", "venue", TrigramSimilarity())]
        combination = (get_combination(combiner, weights=[0.7, 0.3])
                       if combiner == "weighted"
                       else get_combination(combiner))
        source = LogicalSource(PhysicalSource("REF"),
                               ObjectType("Publication"))
        for i in range(50):
            source.add_record(f"p{i}", title=_title(rng),
                              venue=_title(rng) if i % 6 else None)
        pruned, exhaustive = _twins(source, specs=specs,
                                    combiner=combination, compact_min=8)
        counter = itertools.count()
        queries = [ObjectInstance(f"q{i}", {"title": _title(rng),
                                            "venue": _title(rng)})
                   for i in range(5)]
        for step in range(12):
            _mutate((pruned, exhaustive), rng, counter)
            _assert_identical(pruned, exhaustive, queries,
                              threshold=rng.choice([0.0, 0.4, 0.7]),
                              max_candidates=rng.choice([2, 10, 50]))

    def test_exhaustive_mode_unaffected(self):
        rng = random.Random(3)
        pruned, exhaustive = _twins(_reference(rng), attribute="title",
                                    similarity=TrigramSimilarity())
        _assert_identical(pruned, exhaustive, _queries(rng),
                          threshold=0.2, max_candidates=None)
        # max_candidates=None never enters the pruned path
        assert pruned.pruning_counters()["pruned_queries"] == 0


class TestPruningGate:
    def test_invalid_mode_rejected(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            IncrementalIndex(_reference(rng), "title",
                             TrigramSimilarity(), pruning="sometimes")

    def test_auto_skips_low_skew(self):
        # tiny uniform reference: posting mass below PRUNE_MIN_MASS
        rng = random.Random(2)
        index = IncrementalIndex(_reference(rng, n=10), "title",
                                 TrigramSimilarity(), pruning="auto")
        index.match_records(_queries(rng, 3), threshold=0.2,
                            max_candidates=5)
        counters = index.pruning_counters()
        assert counters["queries"] > 0
        assert counters["pruned_queries"] == 0

    def test_auto_engages_on_hub_skew(self):
        rng = random.Random(4)
        index = IncrementalIndex(_reference(rng, n=400,
                                            hub_probability=0.95),
                                 "title", TrigramSimilarity(),
                                 pruning="auto")
        index.match_records(_queries(rng, 10, hub_probability=1.0),
                            threshold=0.2, max_candidates=10)
        assert index.pruning_counters()["pruned_queries"] > 0

    def test_never_mode_never_prunes(self):
        rng = random.Random(4)
        index = IncrementalIndex(_reference(rng, n=400,
                                            hub_probability=0.95),
                                 "title", TrigramSimilarity(),
                                 pruning="never")
        index.match_records(_queries(rng, 10, hub_probability=1.0),
                            threshold=0.2, max_candidates=10)
        counters = index.pruning_counters()
        assert counters["pruned_queries"] == 0
        assert counters["postings_skipped"] == 0


class TestHubTokenStress:
    def test_bounded_posting_mass_with_identical_results(self):
        rng = random.Random(17)
        source = _reference(rng, n=600, hub_probability=0.9)
        pruned, exhaustive = _twins(source, attribute="title",
                                    similarity=TrigramSimilarity())
        queries = _queries(rng, 20, hub_probability=1.0)
        for threshold, k in [(0.0, 5), (0.2, 10), (0.5, 3)]:
            _assert_identical(pruned, exhaustive, queries,
                              threshold=threshold, max_candidates=k)
        touched = pruned.pruning_counters()
        mass = touched["postings_touched"] + touched["postings_skipped"]
        assert touched["pruned_queries"] > 0
        # the sublinearity regression guard: the hub token's postings
        # must be largely skipped, not scanned
        assert touched["postings_touched"] < 0.6 * mass
        baseline = exhaustive.pruning_counters()
        assert baseline["postings_touched"] == \
            baseline["postings_touched"] + baseline["postings_skipped"]


SPECS = [AttributeSpec("title", "title", TrigramSimilarity())]


class TestClusterEquivalence:
    def _build(self, seed, *, processes=False, pruning="always"):
        rng = random.Random(seed)
        titles = [_title(rng, 0.5) for _ in range(80)]

        def source():
            out = LogicalSource(PhysicalSource("REF"),
                                ObjectType("Publication"))
            for i, title in enumerate(titles):
                out.add_record(f"p{i}", title=title)
            return out

        single = IncrementalIndex(source(), specs=SPECS, compact_min=8,
                                  pruning=pruning)
        one = ClusterIndex.build(source(), specs=SPECS, shards=1,
                                 processes=False, compact_min=8,
                                 pruning=pruning)
        many = ClusterIndex.build(source(), specs=SPECS, shards=3,
                                  processes=processes, compact_min=8,
                                  pruning=pruning)
        return rng, single, one, many

    @pytest.mark.parametrize("pruning", ["always", "auto", "never"])
    def test_shard_counts_agree_bit_identically(self, pruning):
        rng, single, one, many = self._build(23, pruning=pruning)
        counter = itertools.count()
        try:
            for step in range(15):
                _mutate((single, one, many), rng, counter)
                queries = _queries(rng, 4, hub_probability=0.5)
                for k in (1, 5, 50, None):
                    expected = single.match_records(queries, threshold=0.2,
                                                    max_candidates=k)
                    assert one.match_records(
                        queries, threshold=0.2,
                        max_candidates=k) == expected
                    assert many.match_records(
                        queries, threshold=0.2,
                        max_candidates=k) == expected
            # per-shard compaction points diverged from the single
            # index's during the interleaving; identity held throughout
            shard_compactions = [stats["compactions"] for stats in
                                 many.stats()["shard_stats"]]
            assert len(set(shard_compactions)) > 1
        finally:
            one.close()
            many.close()

    @pytest.mark.skipif(not _fork_available(),
                        reason="fork start method unavailable")
    def test_process_mode_workers(self):
        rng, single, one, many = self._build(31, processes=True)
        counter = itertools.count()
        try:
            for step in range(8):
                _mutate((single, one, many), rng, counter)
                queries = _queries(rng, 3, hub_probability=0.5)
                expected = single.match_records(queries, threshold=0.2,
                                                max_candidates=10)
                assert many.match_records(queries, threshold=0.2,
                                          max_candidates=10) == expected
        finally:
            one.close()
            many.close()

    def test_cluster_aggregates_pruning_counters(self):
        rng, single, one, many = self._build(5)
        try:
            queries = _queries(rng, 6, hub_probability=0.5)
            many.match_records(queries, threshold=0.2, max_candidates=10)
            totals = many.stats()["pruning"]
            assert totals["queries"] > 0
            per_shard = [stats["pruning"]["queries"]
                         for stats in many.stats()["shard_stats"]]
            assert totals["queries"] == sum(per_shard)
        finally:
            one.close()
            many.close()
