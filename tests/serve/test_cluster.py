"""Partitioned serving tier: scatter-gather equivalence + snapshot/restore.

The contract under test is *bit-identity*: a cluster of N shards must
return exactly the results of the single in-heap
:class:`~repro.serve.index.IncrementalIndex` — same ids, same float
scores, same order — on a frozen reference and across arbitrary
mutation interleavings (shards compact on their own schedules, so
this exercises the compaction-independent ordering contract).
"""

import random

import pytest

from repro.engine.request import AttributeSpec
from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource, ObjectType, PhysicalSource
from repro.serve import ClusterIndex, IncrementalIndex, SnapshotUnavailable
from repro.serve.cluster import _fork_available
from repro.sim.ngram import TrigramSimilarity

WORDS = ["adaptive", "stream", "schema", "query", "index", "cache",
         "graph", "join", "view", "cube", "match", "entity", "fusion",
         "warehouse", "cleaning", "lineage"]


def _title(rng):
    return " ".join(rng.choice(WORDS) for _ in range(4))


def _reference(n=40, seed=11):
    rng = random.Random(seed)
    source = LogicalSource(PhysicalSource("DBLP"), ObjectType("Publication"))
    for i in range(n):
        source.add_record(f"p{i}", title=f"{_title(rng)} {i}")
    return source


def _queries(rng, count=6):
    return [ObjectInstance(f"q{i}", {"title": _title(rng)})
            for i in range(count)]


SPECS = [AttributeSpec("title", "title", TrigramSimilarity())]


def _single(reference, **kwargs):
    return IncrementalIndex(reference, specs=SPECS, **kwargs)


def _cluster(reference, shards, **kwargs):
    kwargs.setdefault("processes", False)
    return ClusterIndex.build(reference, specs=SPECS, shards=shards,
                              **kwargs)


def _assert_matches_equal(single, cluster, records, *,
                          threshold=0.2, max_candidates=50):
    expected = single.match_records(records, threshold=threshold,
                                    max_candidates=max_candidates)
    actual = cluster.match_records(records, threshold=threshold,
                                   max_candidates=max_candidates)
    assert actual == expected  # bit-identical: ids, floats, order


class TestFrozenReferenceEquivalence:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_pruned_matches_single_index(self, shards):
        reference = _reference()
        single = _single(_reference())
        cluster = _cluster(reference, shards)
        try:
            assert cluster.ids() == single.ids()
            assert len(cluster) == len(single)
            _assert_matches_equal(single, cluster,
                                  _queries(random.Random(3)))
        finally:
            cluster.close()

    @pytest.mark.parametrize("shards", [1, 3])
    def test_exhaustive_matches_single_index(self, shards):
        single = _single(_reference())
        cluster = _cluster(_reference(), shards)
        try:
            _assert_matches_equal(single, cluster,
                                  _queries(random.Random(4)),
                                  max_candidates=None)
        finally:
            cluster.close()

    def test_more_shards_than_records(self):
        single = _single(_reference(3))
        cluster = _cluster(_reference(3), 5)
        try:
            assert cluster.ids() == single.ids()
            _assert_matches_equal(single, cluster,
                                  _queries(random.Random(5)))
        finally:
            cluster.close()


class TestMutationInterleavings:
    def test_random_interleaving_stays_bit_identical(self):
        """~200 random add/update/delete steps; every few steps the
        cluster must answer exactly like the single index (small
        ``compact_min`` keeps shard compactions firing at different
        times than the single index's)."""
        rng = random.Random(2024)
        single = _single(_reference(), compact_min=8)
        cluster = _cluster(_reference(), 3, compact_min=8)
        next_id = 1000
        try:
            for step in range(200):
                op = rng.random()
                live = single.ids()
                if op < 0.45 or not live:
                    instance = ObjectInstance(
                        f"n{next_id}", {"title": _title(rng)})
                    next_id += 1
                    single.add(instance)
                    cluster.add(instance)
                elif op < 0.75:
                    instance = ObjectInstance(
                        rng.choice(live), {"title": _title(rng)})
                    single.update(instance)
                    cluster.update(instance)
                else:
                    id = rng.choice(live)
                    assert single.delete(id) == cluster.delete(id)
                if step % 4 == 0:
                    assert cluster.ids() == single.ids()
                    _assert_matches_equal(single, cluster,
                                          _queries(rng, 3))
            assert len(cluster) == len(single)
            stats = cluster.stats()
            assert stats["records"] == len(single)
            assert stats["shards"] == 3
        finally:
            cluster.close()

    def test_router_mutation_errors_match_single_index(self):
        single = _single(_reference(8))
        cluster = _cluster(_reference(8), 2)
        try:
            duplicate = ObjectInstance("p1", {"title": "dup"})
            with pytest.raises(ValueError):
                single.add(duplicate)
            with pytest.raises(ValueError):
                cluster.add(duplicate)
            ghost = ObjectInstance("ghost", {"title": "x"})
            with pytest.raises(KeyError):
                single.update(ghost)
            with pytest.raises(KeyError):
                cluster.update(ghost)
            assert cluster.delete("ghost") is False
            assert "p1" in cluster and "ghost" not in cluster
            assert cluster.get("p1").attributes["title"] \
                == single.get("p1").attributes["title"]
        finally:
            cluster.close()


@pytest.mark.skipif(not _fork_available(),
                    reason="fork start method unavailable")
class TestProcessShards:
    def test_worker_processes_match_single_index(self):
        rng = random.Random(7)
        single = _single(_reference(), compact_min=8)
        cluster = ClusterIndex.build(_reference(), specs=SPECS, shards=2,
                                     processes=True, compact_min=8)
        try:
            _assert_matches_equal(single, cluster, _queries(rng))
            for i in range(12):
                instance = ObjectInstance(f"w{i}", {"title": _title(rng)})
                single.add(instance)
                cluster.add(instance)
            single.delete("p5")
            cluster.delete("p5")
            assert cluster.ids() == single.ids()
            _assert_matches_equal(single, cluster, _queries(rng))
        finally:
            cluster.close()


class TestSnapshotRestore:
    def _mutate(self, index, rng, rounds=30):
        for i in range(rounds):
            index.add(ObjectInstance(f"s{i}", {"title": _title(rng)}))
        index.update(ObjectInstance("s3", {"title": "renamed row"}))
        index.delete("s7")

    def test_checkpoint_close_restore_round_trip(self, tmp_path):
        rng = random.Random(42)
        cluster = _cluster(_reference(), 2, data_dir=str(tmp_path),
                           compact_min=8)
        self._mutate(cluster, rng)
        manifest = cluster.checkpoint()
        assert manifest["seq"] == cluster._seq
        queries = _queries(random.Random(9))
        before = {
            "ids": cluster.ids(),
            "stats": cluster.stats(),
            "matches": cluster.match_records(queries, threshold=0.2),
        }
        cluster.close()

        restored = ClusterIndex.restore(str(tmp_path), processes=False)
        try:
            assert restored.ids() == before["ids"]
            assert restored.stats() == before["stats"]
            assert restored.match_records(queries, threshold=0.2) \
                == before["matches"]
        finally:
            restored.close()

    def test_post_checkpoint_mutations_are_not_in_the_image(self, tmp_path):
        cluster = _cluster(_reference(12), 2, data_dir=str(tmp_path))
        cluster.checkpoint()
        cluster.add(ObjectInstance("lost", {"title": "after the image"}))
        cluster.close()
        restored = ClusterIndex.restore(str(tmp_path), processes=False)
        try:
            assert "lost" not in restored
            assert len(restored) == 12
        finally:
            restored.close()

    def test_restored_cluster_keeps_bit_identity(self, tmp_path):
        """Mutations *after* a restore still track the single index —
        the restart replays the exact state trajectory (same gseqs,
        same compaction points), not just the same record set."""
        rng = random.Random(13)
        single = _single(_reference(), compact_min=8)
        cluster = _cluster(_reference(), 2, data_dir=str(tmp_path),
                           compact_min=8)
        for i in range(20):
            instance = ObjectInstance(f"r{i}", {"title": _title(rng)})
            single.add(instance)
            cluster.add(instance)
        cluster.checkpoint()
        cluster.close()

        restored = ClusterIndex.restore(str(tmp_path), processes=False)
        try:
            for i in range(20, 32):
                instance = ObjectInstance(f"r{i}", {"title": _title(rng)})
                single.add(instance)
                restored.add(instance)
            single.delete("r4")
            restored.delete("r4")
            assert restored.ids() == single.ids()
            _assert_matches_equal(single, restored, _queries(rng))
        finally:
            restored.close()

    @pytest.mark.skipif(not _fork_available(),
                        reason="fork start method unavailable")
    def test_restore_into_worker_processes(self, tmp_path):
        rng = random.Random(21)
        cluster = ClusterIndex.build(_reference(), specs=SPECS, shards=2,
                                     processes=True,
                                     data_dir=str(tmp_path))
        self._mutate(cluster, rng, rounds=10)
        cluster.checkpoint()
        queries = _queries(random.Random(22))
        before = cluster.match_records(queries, threshold=0.2)
        cluster.close()
        restored = ClusterIndex.restore(str(tmp_path), processes=True)
        try:
            assert restored.match_records(queries, threshold=0.2) == before
        finally:
            restored.close()

    def test_checkpoint_without_data_dir_raises(self):
        cluster = _cluster(_reference(6), 2)
        try:
            with pytest.raises(SnapshotUnavailable):
                cluster.checkpoint()
        finally:
            cluster.close()

    def test_restore_requires_a_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ClusterIndex.restore(str(tmp_path / "nowhere"))
