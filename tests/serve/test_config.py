"""ServeConfig validation/merging and the typed error vocabulary."""

import pytest

from repro.engine.request import AttributeSpec
from repro.serve import (ConflictError, InvalidRequest, ServeConfig,
                         ServeError, ShardUnavailable, SnapshotUnavailable)
from repro.serve.errors import error_code_for
from repro.sim.ngram import TrigramSimilarity


class TestValidation:
    def test_defaults_validate(self):
        config = ServeConfig().validate()
        assert config.attribute == "title"
        assert config.shards == 0
        assert not config.clustered
        assert config.pruning == "auto"

    @pytest.mark.parametrize("pruning", ["auto", "always", "never"])
    def test_pruning_modes_validate(self, pruning):
        assert ServeConfig(pruning=pruning).validate().pruning == pruning

    @pytest.mark.parametrize("kwargs", [
        {"threshold": 1.5},
        {"threshold": -0.1},
        {"max_candidates": 0},
        {"cache_size": -1},
        {"missing": "explode"},
        {"compact_ratio": 0.0},
        {"compact_min": 0},
        {"shards": -1},
        {"specs": []},
        {"pruning": "sometimes"},
        {"pruning": ""},
        {"attribute": ""},
        {"host": ""},
        {"port": -1},
        {"port": 65536},
    ])
    def test_bad_values_raise_invalid_request(self, kwargs):
        with pytest.raises(InvalidRequest):
            ServeConfig(**kwargs).validate()

    def test_port_zero_means_ephemeral_and_validates(self):
        assert ServeConfig(port=0).validate().port == 0

    def test_invalid_request_is_a_value_error(self):
        with pytest.raises(ValueError):
            ServeConfig(threshold=2.0).validate()

    def test_multiple_specs_need_combiner(self):
        specs = [AttributeSpec("title", "title", TrigramSimilarity()),
                 AttributeSpec("venue", "venue", TrigramSimilarity())]
        with pytest.raises(InvalidRequest):
            ServeConfig(specs=specs).validate()

    def test_data_dir_implies_one_shard(self, tmp_path):
        config = ServeConfig(data_dir=str(tmp_path)).validate()
        assert config.shards == 1
        assert config.clustered
        assert config._implied_shard

    def test_explicit_shards_kept_with_data_dir(self, tmp_path):
        config = ServeConfig(shards=3, data_dir=str(tmp_path)).validate()
        assert config.shards == 3
        assert not config._implied_shard


class TestMerged:
    def test_merged_overrides_non_none(self):
        config = ServeConfig(threshold=0.5).merged(
            threshold=0.9, max_candidates=None)
        assert config.threshold == 0.9
        assert config.max_candidates == 50  # None means "keep"

    def test_merged_rejects_unknown_fields(self):
        with pytest.raises(InvalidRequest):
            ServeConfig().merged(throughput=9000)

    def test_merged_returns_self_when_empty(self):
        config = ServeConfig()
        assert config.merged(threshold=None) is config


class TestErrorVocabulary:
    def test_hierarchy(self):
        assert issubclass(InvalidRequest, (ServeError, ValueError))
        assert issubclass(ConflictError, ServeError)
        assert issubclass(ShardUnavailable, ServeError)
        assert issubclass(SnapshotUnavailable, ServeError)

    def test_shard_unavailable_names_the_shard(self):
        error = ShardUnavailable(2, "pipe closed")
        assert error.shard == 2
        assert "shard 2" in str(error)

    def test_to_payload_is_the_envelope(self):
        assert InvalidRequest("bad body").to_payload() == {
            "error": {"code": "invalid_request", "message": "bad body"}}

    @pytest.mark.parametrize("error,expected", [
        (InvalidRequest("x"), (400, "invalid_request")),
        (ConflictError("x"), (409, "conflict")),
        (ShardUnavailable(0, "x"), (503, "shard_unavailable")),
        (SnapshotUnavailable("x"), (409, "snapshot_unavailable")),
        (ValueError("duplicate id"), (409, "conflict")),
        (KeyError("missing"), (409, "conflict")),
        (RuntimeError("boom"), (500, "serve_error")),
    ])
    def test_error_code_for(self, error, expected):
        assert error_code_for(error) == expected
