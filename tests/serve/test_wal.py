"""Write-ahead-log frame format: round-trips, torn tails, truncation."""

import struct

from repro.serve.wal import WriteAheadLog


def _wal(tmp_path):
    return WriteAheadLog(str(tmp_path / "shard.wal"))


ENTRIES = [
    {"op": "add", "id": "a", "gseq": 0, "attributes": {"title": "x"}},
    {"op": "update", "id": "a", "gseq": 1, "attributes": {"title": "y"}},
    {"op": "delete", "id": "a"},
]


class TestRoundTrip:
    def test_append_sync_replay(self, tmp_path):
        wal = _wal(tmp_path)
        for entry in ENTRIES:
            wal.append(entry)
        wal.sync()
        wal.close()
        assert WriteAheadLog(wal.path).replay() == ENTRIES

    def test_replay_limit(self, tmp_path):
        wal = _wal(tmp_path)
        for entry in ENTRIES:
            wal.append(entry)
        wal.sync()
        assert wal.replay(2) == ENTRIES[:2]
        assert wal.entry_count() == 3

    def test_missing_file_is_empty(self, tmp_path):
        wal = _wal(tmp_path)
        assert wal.replay() == []
        assert wal.entry_count() == 0

    def test_reset_truncates(self, tmp_path):
        wal = _wal(tmp_path)
        for entry in ENTRIES:
            wal.append(entry)
        wal.sync()
        wal.reset()
        assert wal.entry_count() == 0
        wal.append(ENTRIES[0])
        wal.sync()
        assert wal.replay() == [ENTRIES[0]]


class TestTornTail:
    def _written(self, tmp_path):
        wal = _wal(tmp_path)
        for entry in ENTRIES:
            wal.append(entry)
        wal.sync()
        wal.close()
        return wal.path

    def test_truncated_payload_ends_replay(self, tmp_path):
        path = self._written(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(handle.seek(0, 2) - 3)
        assert WriteAheadLog(path).replay() == ENTRIES[:2]

    def test_truncated_header_ends_replay(self, tmp_path):
        path = self._written(tmp_path)
        with open(path, "ab") as handle:
            handle.write(struct.pack(">I", 99))  # half a header
        assert WriteAheadLog(path).replay() == ENTRIES

    def test_corrupt_checksum_ends_replay(self, tmp_path):
        path = self._written(tmp_path)
        with open(path, "r+b") as handle:
            handle.seek(-2, 2)
            handle.write(b"!!")  # flip bytes inside the last payload
        assert WriteAheadLog(path).replay() == ENTRIES[:2]


class TestTruncateTo:
    def test_drops_frames_past_count(self, tmp_path):
        wal = _wal(tmp_path)
        for entry in ENTRIES:
            wal.append(entry)
        wal.sync()
        wal.truncate_to(1)
        assert wal.replay() == ENTRIES[:1]

    def test_truncate_to_zero_without_file(self, tmp_path):
        _wal(tmp_path).truncate_to(0)  # no file, no error
