"""Error-hierarchy contracts: envelope payloads and pickle safety.

Every serving error can cross the shard ``FrameChannel`` inside an
``("error", exc)`` frame, so the whole hierarchy must survive a pickle
round trip.  ``ShardUnavailable`` is the regression case: its
two-argument ``__init__`` broke the default ``Exception.__reduce__``
(which replays ``self.args``) until it grew an explicit ``__reduce__``.
"""

import pickle

import pytest

from repro.serve.errors import (
    ConflictError,
    InvalidRequest,
    ServeError,
    ShardUnavailable,
    SnapshotUnavailable,
    error_code_for,
)


def test_shard_unavailable_pickle_round_trip():
    error = ShardUnavailable(3, "worker timed out")
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, ShardUnavailable)
    assert clone.shard == 3
    assert clone.message == "worker timed out"
    assert str(clone) == "shard 3: worker timed out"
    assert clone.to_payload() == error.to_payload()


@pytest.mark.parametrize("error", [
    ServeError("boom"),
    InvalidRequest("bad record"),
    ConflictError("duplicate id"),
    ShardUnavailable(7, "channel closed"),
    SnapshotUnavailable("no data dir"),
])
def test_every_serve_error_pickles(error):
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is type(error)
    assert str(clone) == str(error)
    assert error_code_for(clone) == error_code_for(error)


def test_invalid_request_still_a_value_error():
    with pytest.raises(ValueError):
        raise InvalidRequest("legacy catch path")
