"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only
enables legacy ``pip install -e . --no-use-pep517`` editable installs
on machines that cannot build PEP 660 wheels (e.g. offline boxes
missing the ``wheel`` distribution).
"""

from setuptools import setup

setup()
