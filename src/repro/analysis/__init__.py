"""repro.analysis — invariant-aware static analysis for this codebase.

The engine and serving tiers rest on invariants no generic linter can
see: bit-identical scoring depends on deterministic iteration and
float-summation order, the serve tier depends on ``_lock`` discipline
and pickle-safe shard payloads, and snapshot correctness depends on
fsync-before-rename ordering.  This package encodes those hard-won
rules as AST checkers (Peukert et al.'s rule-based construction
argument applied to the system's own contracts: check the rules
mechanically instead of rediscovering each violation in a flaky bench).

Five checker families ship today:

=====  ==============================================================
code   contract
=====  ==============================================================
DET    determinism: no iteration over unordered collections, no
       unsorted ``os.listdir``, no float accumulation over sets, no
       dict sorts whose key ignores the dict key (insertion-order
       tie-breaks must be explicit)
LCK    lock discipline: methods marked ``@requires_lock("_lock")``
       (see :mod:`repro.concurrency`) may only be called with the
       lock held
PKL    cross-process safety: classes holding unpicklable state (or
       exceptions with custom constructor signatures) must define
       ``__reduce__``/``__getstate__`` before they can cross the
       shard ``FrameChannel``
DUR    durability ordering: ``os.replace`` must be dominated by an
       ``fsync`` in the same function; no bare ``os.rename``
API    HTTP handlers raise only ``repro.serve.errors`` types
=====  ==============================================================

Run ``repro lint`` (or ``python -m repro.analysis``); findings print
as ``file:line CODE message``.  Suppress a finding inline with
``# repro: allow-<rule> -- <reason>`` (the reason is mandatory) or
baseline it with a reason in ``lint-baseline.json``.  See
``docs/static-analysis.md`` for the full rule catalog and how to add
a checker.
"""

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleContext,
    all_checkers,
    parse_module,
)
from repro.analysis.runner import AnalysisReport, load_baseline, run_paths

__all__ = [
    "AnalysisReport",
    "Checker",
    "Finding",
    "ModuleContext",
    "all_checkers",
    "load_baseline",
    "parse_module",
    "run_paths",
]
