"""DUR — durability ordering around atomic renames.

The snapshot/restore path (``repro.serve.partition``) relies on the
classic atomic-publish sequence: write a temp file, ``fsync`` it,
``os.replace`` it into place, then ``fsync`` the directory.  A rename
without a preceding fsync can surface a zero-length or stale manifest
after a crash, silently un-publishing a snapshot.

Rules:

=======  ============================================================
DUR001   ``os.replace`` in a function with no ``fsync`` (``os.fsync``
         or a ``*fsync*``-named helper such as ``_fsync_dir``) call
         earlier in the same function
DUR002   bare ``os.rename`` — use ``os.replace`` (atomic, overwrites)
         plus the fsync protocol
=======  ============================================================

Suppress with ``# repro: allow-durability -- <reason>`` for renames of
genuinely disposable files (temp scratch, caches).  ``benchmarks/``
and ``tests/`` are in scope too — helper code that publishes files
teaches the same habits as the serve tree.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleContext,
    call_name,
    tail_name,
    walk_functions,
)


def _is_fsync_call(node: ast.Call) -> bool:
    tail = tail_name(node.func)
    return tail is not None and "fsync" in tail


class DurabilityChecker(Checker):
    """DUR001/DUR002 over the persistence-bearing serve modules."""

    CODE = "DUR"
    SCOPES = ("repro/serve/", "benchmarks/", "tests/")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for function, _classes in walk_functions(context.tree):
            yield from self._check_function(context, function)

    def _check_function(self, context: ModuleContext,
                        function: ast.AST) -> Iterator[Finding]:
        calls: List[ast.Call] = [node for node in ast.walk(function)
                                 if isinstance(node, ast.Call)]
        fsync_lines = sorted(node.lineno for node in calls
                             if _is_fsync_call(node))
        for node in calls:
            name = call_name(node.func)
            if name == "os.rename":
                yield Finding(
                    context.path, node.lineno, "DUR002",
                    "os.rename is not part of the durability protocol; "
                    "use os.replace after fsync-ing the source")
            elif name == "os.replace":
                if not any(line < node.lineno for line in fsync_lines):
                    yield Finding(
                        context.path, node.lineno, "DUR001",
                        "os.replace without a preceding fsync in the "
                        "same function; fsync the temp file (and "
                        "_fsync_dir the parent) before publishing")
