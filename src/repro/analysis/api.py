"""API — HTTP handlers raise only ``repro.serve.errors`` types.

The HTTP front-end maps service exceptions onto status codes via the
``repro.serve.errors`` hierarchy; a handler that raises a bare
``ValueError`` escapes that mapping and turns into an opaque 500 (or a
dropped connection mid-response).  This checker pins the contract:
inside ``repro/serve/http.py``, every ``raise`` must name a type
imported from ``repro.serve.errors``.

Rules:

=======  ============================================================
API001   ``raise`` of a type not imported from ``repro.serve.errors``
         inside an HTTP handler module
=======  ============================================================

Bare ``raise`` (re-raise) and re-raising a caught exception variable
are always allowed.  Suppress with ``# repro: allow-api-error`` for
deliberate protocol-level aborts.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.core import Checker, Finding, ModuleContext

_ERRORS_MODULE = "repro.serve.errors"


def _imported_error_names(tree: ast.Module) -> Set[str]:
    """Names bound by ``from repro.serve.errors import ...``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == _ERRORS_MODULE:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _caught_names(tree: ast.Module) -> Set[str]:
    """Names bound by ``except ... as name`` anywhere in the module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names


class ApiErrorChecker(Checker):
    """API001 over the HTTP handler module."""

    CODE = "API"
    SCOPES = ("repro/serve/http",)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        allowed = _imported_error_names(context.tree)
        caught = _caught_names(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            raised = node.exc
            if isinstance(raised, ast.Call):
                raised = raised.func
            if isinstance(raised, ast.Name):
                if raised.id in allowed or raised.id in caught:
                    continue
                name = raised.id
            elif isinstance(raised, ast.Attribute):
                name = raised.attr
                if name in allowed:
                    continue
            else:
                continue
            yield Finding(
                context.path, node.lineno, "API001",
                f"handler raises {name}, which is not a "
                f"{_ERRORS_MODULE} type; the HTTP status mapping will "
                "treat it as an opaque 500")
