"""PKL — pickle safety for types that cross process boundaries.

The cluster backend moves payloads over ``FrameChannel`` with plain
``pickle``; shard workers also ship raised exceptions back as
``("error", exc)`` frames.  Two recurring failure shapes are encoded
here:

=======  ============================================================
PKL001   a class stores a known-unpicklable object on ``self``
         (``MappingProxyType``, ``threading`` primitives, sockets,
         open file handles) without defining ``__reduce__`` /
         ``__reduce_ex__`` / ``__getstate__``
PKL002   an exception subclass takes extra required ``__init__``
         parameters but passes a different number of arguments to
         ``super().__init__`` and defines no ``__reduce__`` — the
         default ``Exception.__reduce__`` replays ``self.args`` into
         ``__init__`` and unpickling raises ``TypeError``
=======  ============================================================

PKL002 is exactly the ``ObjectInstance.__reduce__`` bug shape from
PR 6, generalised.  Suppress with ``# repro: allow-unpicklable`` (with
a reason) for types that are provably process-local.

The scope covers ``benchmarks/`` and ``tests/`` as well as the serve
and engine trees: harness classes ride the same shard channels when a
benchmark or test spins up the cluster tier.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.core import Checker, Finding, ModuleContext, call_name

#: dotted / bare call names whose results never pickle
_UNPICKLABLE_CALLS: Set[str] = {
    "MappingProxyType", "types.MappingProxyType",
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Event", "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.local", "threading.Barrier",
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "socket.socket",
    "open", "io.open",
}

_REDUCE_HOOKS = {"__reduce__", "__reduce_ex__", "__getstate__"}

_EXCEPTION_BASE_HINTS = {"Exception", "BaseException", "ValueError",
                         "RuntimeError", "KeyError", "OSError", "IOError",
                         "TypeError", "LookupError", "ArithmeticError"}


def _defines_reduce_hook(class_node: ast.ClassDef) -> bool:
    return any(isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
               and statement.name in _REDUCE_HOOKS
               for statement in class_node.body)


def _looks_like_exception(class_node: ast.ClassDef) -> bool:
    for base in class_node.bases:
        name = call_name(base)
        if name is None:
            continue
        tail = name.rsplit(".", 1)[-1]
        if tail in _EXCEPTION_BASE_HINTS or tail.endswith("Error") \
                or tail.endswith("Exception"):
            return True
    return False


def _required_positional_count(init: ast.FunctionDef) -> int:
    """Required positional parameters of ``__init__``, excluding self."""
    positional = init.args.posonlyargs + init.args.args
    required = len(positional) - len(init.args.defaults)
    return max(0, required - 1)


def _super_init_arg_count(init: ast.FunctionDef) -> Optional[int]:
    """Positional-arg count of the ``super().__init__`` call, if clean.

    Returns ``None`` when there is no such call or when starred
    arguments make the count indeterminate.
    """
    for node in ast.walk(init):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "__init__"
                and isinstance(func.value, ast.Call)
                and call_name(func.value.func) == "super"):
            continue
        if any(isinstance(argument, ast.Starred) for argument in node.args):
            return None
        return len(node.args)
    return None


class PickleSafetyChecker(Checker):
    """PKL001/PKL002 over the serve tier and the shared model types."""

    CODE = "PKL"
    SCOPES = ("repro/serve/", "repro/model/", "repro/engine/",
              "benchmarks/", "tests/")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(context, node)

    def _check_class(self, context: ModuleContext,
                     class_node: ast.ClassDef) -> Iterator[Finding]:
        has_hook = _defines_reduce_hook(class_node)
        if not has_hook:
            yield from self._check_unpicklable_attrs(context, class_node)
            if _looks_like_exception(class_node):
                yield from self._check_exception_init(context, class_node)

    def _check_unpicklable_attrs(self, context: ModuleContext,
                                 class_node: ast.ClassDef
                                 ) -> Iterator[Finding]:
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(method):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None or not isinstance(value, ast.Call):
                    continue
                name = call_name(value.func)
                if name not in _UNPICKLABLE_CALLS:
                    continue
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        yield Finding(
                            context.path, node.lineno, "PKL001",
                            f"{class_node.name}.{target.attr} holds "
                            f"{name}() which cannot pickle; define "
                            "__reduce__/__getstate__ or keep the type "
                            "out of shard payloads")

    def _check_exception_init(self, context: ModuleContext,
                              class_node: ast.ClassDef) -> Iterator[Finding]:
        init = next((statement for statement in class_node.body
                     if isinstance(statement, ast.FunctionDef)
                     and statement.name == "__init__"), None)
        if init is None:
            return
        required = _required_positional_count(init)
        if required == 0:
            return
        super_args = _super_init_arg_count(init)
        if super_args is None or super_args == required:
            return
        yield Finding(
            context.path, init.lineno, "PKL002",
            f"exception {class_node.name}.__init__ takes {required} "
            f"required argument(s) but super().__init__ receives "
            f"{super_args}; Exception.__reduce__ replays self.args and "
            "unpickling will raise TypeError — define __reduce__")
