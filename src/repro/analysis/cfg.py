"""CFG — config dataclass contracts: validation, CLI, and docs.

``ServeConfig`` and ``EngineConfig`` are the two knob surfaces users
actually touch; every field carries three obligations that previously
rotted independently: the validator must look at it, the ``repro`` CLI
must be able to set it (or the field is deliberately programmatic), and
the docs knob table must list it.  This family checks all three against
the project graph:

=======  ============================================================
CFG001   a non-``bool`` public field never referenced by the
         contract's validator (``validate()`` / ``__post_init__``) —
         ``bool`` fields are exempt, every value is valid
CFG002   a public field with no matching ``--flag`` (or ``dest=``) in
         the ``repro`` CLI module
CFG003   a public field missing from the contract's docs knob table
         (a markdown ``|`` row naming the field in backticks)
=======  ============================================================

Fields that legitimately skip an obligation carry an inline exemption
on their definition line — ``# repro: allow-cfg002 -- <why>`` for a
single rule, ``# repro: allow-config -- <why>`` for the family.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Set, Tuple

from repro.analysis.core import Finding, ProjectChecker
from repro.analysis.graph import ProjectGraph

_BACKTICKED = re.compile(r"`([A-Za-z0-9_.]+)`")


@dataclass(frozen=True)
class ConfigContract:
    """One dataclass whose fields carry the three obligations."""

    qualname: str
    validators: Tuple[str, ...]
    cli_module: str
    docs: str


DEFAULT_CONTRACTS: Tuple[ConfigContract, ...] = (
    ConfigContract(qualname="repro.serve.config.ServeConfig",
                   validators=("validate",),
                   cli_module="repro.__main__",
                   docs="docs/serving.md"),
    ConfigContract(qualname="repro.engine.engine.EngineConfig",
                   validators=("__post_init__",),
                   cli_module="repro.__main__",
                   docs="docs/engine.md"),
)


def _documented_names(text: str) -> Set[str]:
    """Backticked identifiers in markdown table rows (``| ... |``)."""
    names: Set[str] = set()
    for line in text.splitlines():
        if line.lstrip().startswith("|"):
            for match in _BACKTICKED.finditer(line):
                # `ServeConfig.attribute` documents `attribute` too
                names.add(match.group(1).rsplit(".", 1)[-1])
    return names


class ConfigContractChecker(ProjectChecker):
    """CFG001–003 over the declared config contracts."""

    CODE = "CFG"
    SCOPES = ("repro/serve/", "repro/engine/")

    def __init__(self, contracts: Tuple[ConfigContract, ...] =
                 DEFAULT_CONTRACTS) -> None:
        self.contracts = contracts

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for contract in self.contracts:
            yield from self._check_contract(graph, contract)

    def _check_contract(self, graph: ProjectGraph,
                        contract: ConfigContract) -> Iterator[Finding]:
        hit = graph.class_named(contract.qualname)
        if hit is None:
            return
        cls, file = hit
        if not self.file_in_scope(file.path):
            return
        short = contract.qualname.rsplit(".", 1)[-1]

        validated: Set[str] = set()
        for function in graph.methods_of(cls, file):
            if function.name in contract.validators:
                validated.update(function.attr_refs)

        cli_file = graph.module_named(contract.cli_module)
        flags: Set[str] = set()
        dests: Set[str] = set()
        if cli_file is not None:
            for flag in cli_file.cli_flags:
                flags.update(flag.flags)
                if flag.dest:
                    dests.add(flag.dest)

        docs_text = graph.read_text(contract.docs)
        documented = _documented_names(docs_text) \
            if docs_text is not None else set()

        for field in cls.fields:
            if field.is_private:
                continue
            if not field.is_bool and field.name not in validated:
                yield Finding(
                    file.path, field.line, "CFG001",
                    f"{short}.{field.name} is never referenced by "
                    f"{'/'.join(contract.validators)}(); validate it "
                    "or exempt with allow-cfg001")
            expected_flag = "--" + field.name.replace("_", "-")
            if cli_file is not None and expected_flag not in flags \
                    and field.name not in dests:
                yield Finding(
                    file.path, field.line, "CFG002",
                    f"{short}.{field.name} is unreachable from the "
                    f"repro CLI: no {expected_flag} flag in "
                    f"{contract.cli_module}")
            if docs_text is None:
                yield Finding(
                    file.path, field.line, "CFG003",
                    f"{short}.{field.name} has no docs knob table: "
                    f"{contract.docs} is missing")
            elif field.name not in documented:
                yield Finding(
                    file.path, field.line, "CFG003",
                    f"{short}.{field.name} is missing from the "
                    f"{contract.docs} knob table")
