"""DET — determinism contracts on scoring, kernel and serve paths.

Bit-identical scoring across the serial / parallel / sharded / cluster
paths (PRs 3-6) depends on deterministic iteration order and float
summation order.  Python sets hash-order their elements (salted per
process for strings), so any set iteration on a scored path is a
process-dependent ordering; ``os.listdir`` order is filesystem-
dependent; and a dict sort whose key ignores the dict key silently
tie-breaks by insertion history.

Rules:

=======  ============================================================
DET001   ``for``/comprehension iterates directly over a set
         expression (literal, comprehension, ``set()``/``frozenset()``
         call, or a local variable only ever assigned sets)
DET002   ``os.listdir``/``os.scandir`` result used without
         ``sorted(...)`` around the call
DET003   ``sum()``/``math.fsum()`` over a set expression — float
         accumulation order follows hash order
DET004   ``sorted()`` over ``dict.items()`` with a key that ignores
         the dict key, or over ``dict.values()`` with any projecting
         key — equal sort keys fall back to insertion order; make the
         tie-break explicit
=======  ============================================================

Suppress with ``# repro: allow-unordered -- <reason>`` when the
iteration feeds an order-independent consumer (membership tests,
commutative reductions over exact types, cache eviction).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.analysis.core import Checker, Finding, ModuleContext, call_name

_SET_CALLS = {"set", "frozenset"}
_LISTDIR_CALLS = {"os.listdir", "os.scandir", "listdir", "scandir"}
_SUM_CALLS = {"sum", "math.fsum", "fsum"}

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                      ast.Module]


def _is_set_expression(node: ast.expr) -> bool:
    """Whether ``node`` syntactically produces a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node.func)
        return name in _SET_CALLS
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # set algebra: ``a | b`` etc. counts only when a side is a set
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _is_listdir_call(node: ast.expr) -> bool:
    return isinstance(node, ast.Call) \
        and call_name(node.func) in _LISTDIR_CALLS


def _is_sorted_wrapped(node: ast.expr, parents: Dict[int, ast.AST]) -> bool:
    """Whether ``node`` is an (arbitrarily nested) argument of sorted()."""
    current: Optional[ast.AST] = parents.get(id(node))
    while current is not None:
        if isinstance(current, ast.Call):
            name = call_name(current.func)
            if name in ("sorted", "len", "list.sort"):
                return True
        current = parents.get(id(current))
    return False


class _SetLocals(ast.NodeVisitor):
    """Track function-local names whose every assignment is a set."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()
        self.other_names: Set[str] = set()

    def _record(self, target: ast.expr, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            (self.set_names if is_set else self.other_names).add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record(element, False)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(target, _is_set_expression(node.value))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record(node.target, _is_set_expression(node.value))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target, False)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._record(node.target, False)
        self.generic_visit(node)

    # nested functions own their locals; do not descend
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _lambda_item_indices(key: ast.expr) -> Optional[Set[object]]:
    """Constant subscript indices a key lambda applies to its argument.

    Returns ``None`` when the key is not a single-argument lambda or
    when the argument is used other than via constant subscripts (in
    which case no claim about ignored components can be made).
    """
    if not isinstance(key, ast.Lambda) or len(key.args.args) != 1 \
            or key.args.vararg or key.args.kwarg or key.args.kwonlyargs:
        return None
    argument = key.args.args[0].arg
    indices: Set[object] = set()
    bare_use = False
    for node in ast.walk(key.body):
        if isinstance(node, ast.Subscript) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == argument \
                and isinstance(node.slice, ast.Constant):
            indices.add(node.slice.value)
    for node in ast.walk(key.body):
        if isinstance(node, ast.Name) and node.id == argument:
            parent_is_subscript = False
            # a Name used as a Subscript value was already counted
            for candidate in ast.walk(key.body):
                if isinstance(candidate, ast.Subscript) \
                        and candidate.value is node \
                        and isinstance(candidate.slice, ast.Constant):
                    parent_is_subscript = True
                    break
            if not parent_is_subscript:
                bare_use = True
    if bare_use:
        return None
    return indices


class DeterminismChecker(Checker):
    """DET001-DET004 over the scored / serving / kernel modules."""

    CODE = "DET"
    SCOPES = ("repro/engine/", "repro/serve/", "repro/sim/",
              "repro/fusion/", "repro/blocking/")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(context.tree):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        set_locals = self._function_set_locals(context.tree)
        for node in ast.walk(context.tree):
            yield from self._check_iteration(context, node, set_locals,
                                             parents)
            if isinstance(node, ast.Call):
                yield from self._check_listdir(context, node, parents)
                yield from self._check_sum(context, node, set_locals,
                                           parents)
                yield from self._check_sorted_projection(context, node)

    # -- local set-variable tracking -----------------------------------

    def _function_set_locals(self, tree: ast.Module) -> Dict[int, Set[str]]:
        """Map ``id(function node)`` -> names only ever assigned sets."""
        scopes: Dict[int, Set[str]] = {}
        nodes: List[ast.AST] = [tree]
        nodes.extend(node for node in ast.walk(tree)
                     if isinstance(node, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)))
        for scope in nodes:
            tracker = _SetLocals()
            bodies = scope.body if isinstance(scope, ast.Module) \
                else scope.body
            for statement in bodies:
                tracker.visit(statement)
            scopes[id(scope)] = tracker.set_names - tracker.other_names
        return scopes

    def _enclosing_scope(self, node: ast.AST,
                         parents: Dict[int, ast.AST]) -> Optional[ast.AST]:
        current = parents.get(id(node))
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Module)):
                return current
            current = parents.get(id(current))
        return None

    def _iterable_is_set(self, iterable: ast.expr, node: ast.AST,
                         set_locals: Dict[int, Set[str]],
                         parents: Dict[int, ast.AST]) -> bool:
        if _is_set_expression(iterable):
            return True
        if isinstance(iterable, ast.Name):
            scope = self._enclosing_scope(node, parents)
            if scope is not None \
                    and iterable.id in set_locals.get(id(scope), set()):
                return True
        return False

    # -- rules ---------------------------------------------------------

    def _check_iteration(self, context: ModuleContext, node: ast.AST,
                         set_locals: Dict[int, Set[str]],
                         parents: Dict[int, ast.AST]) -> Iterator[Finding]:
        iterables: List[ast.expr] = []
        if isinstance(node, ast.For):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iterables.extend(generator.iter for generator in node.generators)
        for iterable in iterables:
            if self._iterable_is_set(iterable, node, set_locals, parents) \
                    and not _is_sorted_wrapped(iterable, parents):
                yield Finding(
                    context.path, iterable.lineno, "DET001",
                    "iteration over a set is hash-ordered (process-"
                    "dependent for strings); iterate sorted(...) or a "
                    "deterministic sequence instead")

    def _check_listdir(self, context: ModuleContext, node: ast.Call,
                       parents: Dict[int, ast.AST]) -> Iterator[Finding]:
        if not _is_listdir_call(node):
            return
        if _is_sorted_wrapped(node, parents):
            return
        name = call_name(node.func)
        yield Finding(
            context.path, node.lineno, "DET002",
            f"{name}() order is filesystem-dependent; wrap the call in "
            "sorted(...)")

    def _check_sum(self, context: ModuleContext, node: ast.Call,
                   set_locals: Dict[int, Set[str]],
                   parents: Dict[int, ast.AST]) -> Iterator[Finding]:
        if call_name(node.func) not in _SUM_CALLS or not node.args:
            return
        argument = node.args[0]
        if self._iterable_is_set(argument, node, set_locals, parents):
            yield Finding(
                context.path, node.lineno, "DET003",
                "float accumulation over a set follows hash order; sum "
                "over a sorted or otherwise deterministic sequence")

    def _check_sorted_projection(self, context: ModuleContext,
                                 node: ast.Call) -> Iterator[Finding]:
        if call_name(node.func) != "sorted" or not node.args:
            return
        iterable = node.args[0]
        if not isinstance(iterable, ast.Call):
            return
        method = iterable.func
        if not isinstance(method, ast.Attribute) or iterable.args:
            return
        key = next((keyword.value for keyword in node.keywords
                    if keyword.arg == "key"), None)
        if key is None:
            return
        if method.attr == "items":
            indices = _lambda_item_indices(key)
            if indices is not None and indices and 0 not in indices:
                yield Finding(
                    context.path, node.lineno, "DET004",
                    "sort key over dict items() ignores the dict key; "
                    "equal values tie-break by insertion order — add "
                    "the key component to the sort key")
        elif method.attr == "values":
            yield Finding(
                context.path, node.lineno, "DET004",
                "sorting dict values() with a projecting key tie-breaks "
                "by insertion order; sort items() with an explicit "
                "tie-break")
