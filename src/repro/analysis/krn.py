"""KRN — structural surface of kernels in the ``build_kernel`` registry.

``vectorized.build_kernel`` is the kernel registry: every class it
(transitively) instantiates is handed to ``build_multi_kernel``, the
per-spec threshold prefilter and ``IndexedScorer``, which assume the
vectorized-kernel surface — ``score_rows(domain_rows, range_rows)``,
``score_bound_rows`` (the prefilter's admissible bound) and the
``orientation_symmetric`` flag the deterministic merge relies on.  A
kernel missing one of these degrades silently (getattr fallbacks) or
crashes at serve time; this family fails lint instead:

=======  ============================================================
KRN001   a class reachable from the registry entry point lacks a
         required method or attribute of the kernel surface
=======  ============================================================

Registry membership is computed from the call graph: classes
instantiated inside the entry point, or inside project functions the
entry point calls (bounded depth), are kernels.  Suppress with
``# repro: allow-kernel -- <reason>`` on the class line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Set, Tuple

from repro.analysis.core import Finding, ProjectChecker
from repro.analysis.graph import (
    ClassSummary,
    FileSummary,
    FunctionSummary,
    ProjectGraph,
)


@dataclass(frozen=True)
class KernelContract:
    """One registry entry point and the surface its kernels owe."""

    entry_point: str = "repro.engine.vectorized.build_kernel"
    required_methods: Tuple[str, ...] = ("score_rows",
                                         "score_bound_rows")
    required_attrs: Tuple[str, ...] = ("orientation_symmetric",)
    #: how deep to follow project calls out of the entry point when
    #: collecting instantiated classes
    max_depth: int = 3


class KernelSurfaceChecker(ProjectChecker):
    """KRN001 over every kernel the registry can build."""

    CODE = "KRN"
    SCOPES = ("repro/engine/",)

    def __init__(self, contracts: Tuple[KernelContract, ...] = (
            KernelContract(),)) -> None:
        self.contracts = contracts

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for contract in self.contracts:
            yield from self._check_contract(graph, contract)

    def _check_contract(self, graph: ProjectGraph,
                        contract: KernelContract) -> Iterator[Finding]:
        entry = graph.function_named(contract.entry_point)
        if entry is None:
            return
        kernels = self._registry(graph, contract, entry)
        for cls, file in kernels:
            if not self.file_in_scope(file.path):
                continue
            members = self._members(graph, cls, file)
            for method in contract.required_methods:
                if method not in members:
                    yield Finding(
                        file.path, cls.line, "KRN001",
                        f"kernel {cls.name} (registered via "
                        f"{contract.entry_point.rsplit('.', 1)[-1]}) "
                        f"does not define {method}(); the composed "
                        "multi-kernel and the prefilter require it")
            for attr in contract.required_attrs:
                if attr not in members:
                    yield Finding(
                        file.path, cls.line, "KRN001",
                        f"kernel {cls.name} does not set {attr}; the "
                        "deterministic merge needs it declared "
                        "(class attribute or set in __init__)")

    def _registry(self, graph: ProjectGraph, contract: KernelContract,
                  entry: Tuple[FunctionSummary, FileSummary]
                  ) -> List[Tuple[ClassSummary, FileSummary]]:
        """Classes instantiated from the entry point, call-graph deep."""
        kernels: List[Tuple[ClassSummary, FileSummary]] = []
        seen_classes: Set[str] = set()
        visited: Set[str] = set()
        frontier: List[Tuple[FunctionSummary, FileSummary, int]] = [
            (entry[0], entry[1], 0)]
        while frontier:
            function, file, depth = frontier.pop(0)
            if function.qualname in visited:
                continue
            visited.add(function.qualname)
            for symbol in graph.callees(function, file):
                if symbol.kind == "class":
                    if symbol.qualname not in seen_classes:
                        seen_classes.add(symbol.qualname)
                        assert isinstance(symbol.node, ClassSummary)
                        kernels.append((symbol.node, symbol.file))
                elif symbol.kind == "function" \
                        and depth < contract.max_depth:
                    assert isinstance(symbol.node, FunctionSummary)
                    frontier.append((symbol.node, symbol.file,
                                     depth + 1))
        kernels.sort(key=lambda item: (item[1].path, item[0].line))
        return kernels

    def _members(self, graph: ProjectGraph, cls: ClassSummary,
                 file: FileSummary) -> Set[str]:
        members: Set[str] = set(cls.methods)
        members.update(cls.class_attrs)
        members.update(cls.instance_attrs)
        members.update(f.name for f in cls.fields)
        # single level of project-local inheritance
        for base in cls.bases:
            if not base:
                continue
            symbol = graph.resolve(base, file)
            if symbol is not None and symbol.kind == "class" \
                    and isinstance(symbol.node, ClassSummary):
                base_cls = symbol.node
                members.update(base_cls.methods)
                members.update(base_cls.class_attrs)
                members.update(base_cls.instance_attrs)
                members.update(f.name for f in base_cls.fields)
        return members
