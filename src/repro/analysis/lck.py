"""LCK — lock discipline on annotated serve-tier internals.

:mod:`repro.concurrency` provides ``@requires_lock("_lock")``, a
marker (plus a cheap runtime assert) that a method must only run with
the named instance lock held.  This checker closes the static half of
the contract: within a class, a call ``self.method(...)`` to an
annotated method is flagged unless the caller provably holds the lock
— i.e. the call sits inside ``with self.<lock>:`` or the calling
method itself carries ``@requires_lock`` for the same lock.

Rules:

=======  ============================================================
LCK001   call to a ``@requires_lock`` method from a context where the
         named lock is not statically held
=======  ============================================================

The analysis is intra-class and syntactic: timed ``.acquire()`` loops
or cross-object calls are invisible to it and need an inline
``# repro: allow-unlocked -- <reason>`` explaining how the lock is
actually held.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.core import Checker, Finding, ModuleContext, tail_name

_DECORATOR_NAME = "requires_lock"


def _required_lock(node: ast.AST) -> Optional[str]:
    """Lock name from a ``@requires_lock("...")`` decorator, if any."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call) \
                and tail_name(decorator.func) == _DECORATOR_NAME \
                and decorator.args \
                and isinstance(decorator.args[0], ast.Constant) \
                and isinstance(decorator.args[0].value, str):
            return decorator.args[0].value
    return None


def _is_self_attribute(node: ast.expr, attribute: str) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == attribute \
        and isinstance(node.value, ast.Name) and node.value.id == "self"


class LockDisciplineChecker(Checker):
    """LCK001 over classes that annotate methods with ``requires_lock``."""

    CODE = "LCK"
    SCOPES = ("repro/serve/", "repro/engine/")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(context, node)

    def _check_class(self, context: ModuleContext,
                     class_node: ast.ClassDef) -> Iterator[Finding]:
        annotated: Dict[str, str] = {}
        methods: List[ast.AST] = []
        for statement in class_node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(statement)
                lock = _required_lock(statement)
                if lock is not None:
                    annotated[statement.name] = lock
        if not annotated:
            return
        for method in methods:
            caller_lock = _required_lock(method)
            yield from self._check_method(context, method, annotated,
                                          caller_lock)

    def _check_method(self, context: ModuleContext, method: ast.AST,
                      annotated: Dict[str, str],
                      caller_lock: Optional[str]) -> Iterator[Finding]:
        parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(method):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if not isinstance(target, ast.Attribute) \
                    or not isinstance(target.value, ast.Name) \
                    or target.value.id != "self":
                continue
            lock = annotated.get(target.attr)
            if lock is None:
                continue
            if caller_lock == lock:
                continue
            if self._held_via_with(node, parents, lock):
                continue
            yield Finding(
                context.path, node.lineno, "LCK001",
                f"self.{target.attr}() requires self.{lock} held "
                f"(@requires_lock); wrap the call in 'with self.{lock}:' "
                "or annotate the caller")

    def _held_via_with(self, node: ast.AST, parents: Dict[int, ast.AST],
                       lock: str) -> bool:
        current: Optional[ast.AST] = parents.get(id(node))
        while current is not None:
            if isinstance(current, (ast.With, ast.AsyncWith)):
                for item in current.items:
                    expr: ast.expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        expr = expr.func
                    if _is_self_attribute(expr, lock):
                        return True
                    if isinstance(expr, ast.Attribute) \
                            and expr.attr in ("acquire", "acquire_lock") \
                            and _is_self_attribute(expr.value, lock):
                        return True
            current = parents.get(id(current))
        return False


def method_lock_requirements(
        class_node: ast.ClassDef) -> List[Tuple[str, str]]:
    """``(method, lock)`` pairs for a class — exposed for tests/tools."""
    pairs: List[Tuple[str, str]] = []
    for statement in class_node.body:
        lock = _required_lock(statement)
        if lock is not None and isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pairs.append((statement.name, lock))
    return pairs
