"""LCK — lock discipline on annotated serve-tier internals.

:mod:`repro.concurrency` provides ``@requires_lock("_lock")``, a
marker (plus a cheap runtime assert) that a method must only run with
the named instance lock held.  This checker closes the static half of
the contract: within a class, a call ``self.method(...)`` to an
annotated method is flagged unless the caller provably holds the lock
— i.e. the call sits inside ``with self.<lock>:`` or the calling
method itself carries ``@requires_lock`` for the same lock.

Rules:

=======  ============================================================
LCK001   (legacy, unregistered) call to a ``@requires_lock`` method
         from a context where the named lock is not syntactically
         held — subsumed by LCK002
LCK002   interprocedural version: held-lock context is propagated
         through the intra-class call graph (private helpers inherit
         the *intersection* of their call sites' held sets;
         ``__init__`` is construction-exempt; ``.acquire()`` /
         ``.release()`` pairs open spans like ``with`` blocks), so a
         call to a ``@requires_lock`` method is flagged only when no
         caller path provably holds the lock
LCK003   lock-acquisition-order cycle across classes: nested lock
         spans (directly, or through calls resolved via the project
         call graph and inferred attribute types) define a directed
         order graph; any cycle is a potential deadlock
=======  ============================================================

LCK002/003 run on the project graph (:class:`ProjectChecker`); what
remains invisible (cross-object calls through untyped attributes,
locks passed as arguments) needs an inline
``# repro: allow-unlocked -- <reason>`` explaining how the lock is
actually held.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleContext,
    ProjectChecker,
    tail_name,
)
from repro.analysis.graph import (
    ClassSummary,
    FileSummary,
    FunctionSummary,
    ProjectGraph,
    iter_lock_holders,
)

_DECORATOR_NAME = "requires_lock"


def _required_lock(node: ast.AST) -> Optional[str]:
    """Lock name from a ``@requires_lock("...")`` decorator, if any."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call) \
                and tail_name(decorator.func) == _DECORATOR_NAME \
                and decorator.args \
                and isinstance(decorator.args[0], ast.Constant) \
                and isinstance(decorator.args[0].value, str):
            return decorator.args[0].value
    return None


def _is_self_attribute(node: ast.expr, attribute: str) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == attribute \
        and isinstance(node.value, ast.Name) and node.value.id == "self"


class LockDisciplineChecker(Checker):
    """LCK001 over classes that annotate methods with ``requires_lock``."""

    CODE = "LCK"
    SCOPES = ("repro/serve/", "repro/engine/")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(context, node)

    def _check_class(self, context: ModuleContext,
                     class_node: ast.ClassDef) -> Iterator[Finding]:
        annotated: Dict[str, str] = {}
        methods: List[ast.AST] = []
        for statement in class_node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(statement)
                lock = _required_lock(statement)
                if lock is not None:
                    annotated[statement.name] = lock
        if not annotated:
            return
        for method in methods:
            caller_lock = _required_lock(method)
            yield from self._check_method(context, method, annotated,
                                          caller_lock)

    def _check_method(self, context: ModuleContext, method: ast.AST,
                      annotated: Dict[str, str],
                      caller_lock: Optional[str]) -> Iterator[Finding]:
        parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(method):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if not isinstance(target, ast.Attribute) \
                    or not isinstance(target.value, ast.Name) \
                    or target.value.id != "self":
                continue
            lock = annotated.get(target.attr)
            if lock is None:
                continue
            if caller_lock == lock:
                continue
            if self._held_via_with(node, parents, lock):
                continue
            yield Finding(
                context.path, node.lineno, "LCK001",
                f"self.{target.attr}() requires self.{lock} held "
                f"(@requires_lock); wrap the call in 'with self.{lock}:' "
                "or annotate the caller")

    def _held_via_with(self, node: ast.AST, parents: Dict[int, ast.AST],
                       lock: str) -> bool:
        current: Optional[ast.AST] = parents.get(id(node))
        while current is not None:
            if isinstance(current, (ast.With, ast.AsyncWith)):
                for item in current.items:
                    expr: ast.expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        expr = expr.func
                    if _is_self_attribute(expr, lock):
                        return True
                    if isinstance(expr, ast.Attribute) \
                            and expr.attr in ("acquire", "acquire_lock") \
                            and _is_self_attribute(expr.value, lock):
                        return True
            current = parents.get(id(current))
        return False


class InterproceduralLockChecker(ProjectChecker):
    """LCK002: call-graph propagation of held-lock context."""

    CODE = "LCK"
    SCOPES = ("repro/serve/", "repro/engine/", "repro/model/")

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for file in graph.ordered_files():
            if not self.file_in_scope(file.path):
                continue
            for cls in file.classes:
                yield from self._check_class(graph, file, cls)

    # -- one class ------------------------------------------------------

    def _check_class(self, graph: ProjectGraph, file: FileSummary,
                     cls: ClassSummary) -> Iterator[Finding]:
        methods = graph.methods_of(cls, file)
        annotated: Dict[str, str] = {
            method.name: method.required_lock for method in methods
            if method.required_lock is not None}
        if not annotated:
            return
        all_locks: Set[str] = set(annotated.values())
        for method in methods:
            all_locks.update(span.lock for span in method.lock_spans)
        entry = self._entry_sets(methods, annotated, all_locks)
        for method in methods:
            for call in method.calls:
                target = self._self_call_target(call.dotted)
                if target is None:
                    continue
                lock = annotated.get(target)
                if lock is None:
                    continue
                held = entry[method.name] | set(
                    iter_lock_holders(method.lock_spans, call.line))
                if lock in held:
                    continue
                yield Finding(
                    file.path, call.line, "LCK002",
                    f"self.{target}() requires self.{lock} held "
                    f"(@requires_lock) but no caller path provably "
                    f"holds it; wrap the call in 'with self.{lock}:' "
                    "or annotate the caller")

    def _entry_sets(self, methods: List[FunctionSummary],
                    annotated: Dict[str, str], all_locks: Set[str]
                    ) -> Dict[str, Set[str]]:
        """Held-lock set at entry of each method (fixpoint).

        Annotated methods hold their contract lock; ``__init__`` and
        ``__del__`` run construction-exempt (every lock); private
        helpers hold the *intersection* over their intra-class call
        sites (an uncalled helper holds nothing); public methods hold
        nothing — any thread may enter them.
        """
        entry: Dict[str, Set[str]] = {}
        refinable: Set[str] = set()
        for method in methods:
            if method.name in annotated:
                entry[method.name] = {annotated[method.name]}
            elif method.name in ("__init__", "__del__"):
                entry[method.name] = set(all_locks)
            elif method.name.startswith("_") \
                    and not method.name.startswith("__"):
                entry[method.name] = set(all_locks)
                refinable.add(method.name)
            else:
                entry[method.name] = set()
        for _ in range(len(methods) + 1):
            changed = False
            for name in sorted(refinable):
                sites: List[Set[str]] = []
                for caller in methods:
                    for call in caller.calls:
                        if self._self_call_target(call.dotted) == name:
                            sites.append(
                                entry[caller.name]
                                | set(iter_lock_holders(
                                    caller.lock_spans, call.line)))
                refined: Set[str] = set.intersection(*sites) \
                    if sites else set()
                if refined != entry[name]:
                    entry[name] = refined
                    changed = True
            if not changed:
                break
        return entry

    @staticmethod
    def _self_call_target(dotted: Optional[str]) -> Optional[str]:
        if dotted is None or not dotted.startswith("self."):
            return None
        parts = dotted.split(".")
        return parts[1] if len(parts) == 2 else None


class LockOrderChecker(ProjectChecker):
    """LCK003: lock-acquisition-order cycles across classes."""

    CODE = "LCK"
    SCOPES = ("repro/serve/", "repro/engine/", "repro/model/")
    #: how deep to chase acquisitions through project calls
    MAX_DEPTH = 4

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
        labels: Dict[str, str] = {}
        for file in graph.ordered_files():
            if not self.file_in_scope(file.path):
                continue
            for cls in file.classes:
                for method in graph.methods_of(cls, file):
                    self._collect_edges(graph, file, cls, method,
                                        edges, labels)
        adjacency: Dict[str, Set[str]] = {}
        for source, target in edges:
            adjacency.setdefault(source, set()).add(target)
        for cycle in self._cycles(adjacency):
            closed = list(cycle) + [cycle[0]]
            site = None
            for index in range(len(closed) - 1):
                site = edges.get((closed[index], closed[index + 1]))
                if site is not None:
                    break
            if site is None:  # pragma: no cover - defensive
                continue
            path = " -> ".join(labels.get(node, node)
                               for node in closed)
            yield Finding(
                site[0], site[1], "LCK003",
                f"lock acquisition order cycle: {path}; two threads "
                "taking these locks in opposite orders can deadlock")

    # -- edge collection -----------------------------------------------

    def _node(self, file: FileSummary, cls: ClassSummary,
              lock: str, labels: Dict[str, str]) -> str:
        node = f"{file.module}.{cls.qualname}.{lock}"
        labels[node] = f"{cls.name}.{lock}"
        return node

    def _collect_edges(self, graph: ProjectGraph, file: FileSummary,
                       cls: ClassSummary, method: FunctionSummary,
                       edges: Dict[Tuple[str, str], Tuple[str, int]],
                       labels: Dict[str, str]) -> None:
        for span in method.lock_spans:
            outer = self._node(file, cls, span.lock, labels)
            for inner in method.lock_spans:
                if inner is span or not span.covers(inner.start) \
                        or inner.start == span.start \
                        or inner.lock == span.lock:
                    continue
                node = self._node(file, cls, inner.lock, labels)
                edges.setdefault((outer, node),
                                 (file.path, inner.start))
            for call in method.calls:
                if not span.covers(call.line):
                    continue
                for node, site in self._acquired_by_call(
                        graph, file, cls, call.dotted, labels,
                        set(), 0).items():
                    if node != outer:
                        edges.setdefault((outer, node), site)

    def _acquired_by_call(self, graph: ProjectGraph, file: FileSummary,
                          cls: ClassSummary, dotted: Optional[str],
                          labels: Dict[str, str], visited: Set[str],
                          depth: int
                          ) -> Dict[str, Tuple[str, int]]:
        """Lock nodes (transitively) acquired by one resolved call."""
        if dotted is None or depth > self.MAX_DEPTH:
            return {}
        target: Optional[Tuple[ClassSummary, FileSummary,
                               FunctionSummary]] = None
        if dotted.startswith("self."):
            parts = dotted.split(".")
            if len(parts) == 2 and parts[1] in cls.methods:
                for method in graph.methods_of(cls, file):
                    if method.name == parts[1]:
                        target = (cls, file, method)
                        break
            elif len(parts) == 3:
                symbol = graph.resolve_attr_call(cls, file, dotted)
                if symbol is not None and symbol.kind == "function" \
                        and isinstance(symbol.node, FunctionSummary) \
                        and symbol.node.classname is not None:
                    owner = graph.class_named(symbol.qualname.rsplit(
                        ".", 1)[0])
                    if owner is not None:
                        target = (owner[0], symbol.file, symbol.node)
        if target is None:
            return {}
        t_cls, t_file, t_method = target
        if t_method.qualname in visited:
            return {}
        visited = visited | {t_method.qualname}
        acquired: Dict[str, Tuple[str, int]] = {}
        for span in t_method.lock_spans:
            node = self._node(t_file, t_cls, span.lock, labels)
            acquired.setdefault(node, (t_file.path, span.start))
        for call in t_method.calls:
            for node, site in self._acquired_by_call(
                    graph, t_file, t_cls, call.dotted, labels,
                    visited, depth + 1).items():
                acquired.setdefault(node, site)
        return acquired

    # -- cycle detection ------------------------------------------------

    def _cycles(self, adjacency: Dict[str, Set[str]]) -> List[List[str]]:
        """Simple cycles, each reported once (min-node rotation)."""
        cycles: List[List[str]] = []
        seen: Set[Tuple[str, ...]] = set()

        def visit(start: str, node: str, path: List[str],
                  on_path: Set[str]) -> None:
            for neighbour in sorted(adjacency.get(node, ())):
                if neighbour == start:
                    rotation = min(range(len(path)),
                                   key=lambda i: path[i])
                    canonical = tuple(path[rotation:] + path[:rotation])
                    if canonical not in seen:
                        seen.add(canonical)
                        cycles.append(list(canonical))
                elif neighbour > start and neighbour not in on_path:
                    visit(start, neighbour, path + [neighbour],
                          on_path | {neighbour})

        for start in sorted(adjacency):
            visit(start, start, [start], {start})
        cycles.sort()
        return cycles


def method_lock_requirements(
        class_node: ast.ClassDef) -> List[Tuple[str, str]]:
    """``(method, lock)`` pairs for a class — exposed for tests/tools."""
    pairs: List[Tuple[str, str]] = []
    for statement in class_node.body:
        lock = _required_lock(statement)
        if lock is not None and isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pairs.append((statement.name, lock))
    return pairs
