"""Whole-program project model for cross-module contract checking.

The per-file checkers of PR 7 see one ``ast.Module`` at a time, which
is exactly as far as they can reason: a rule like "every ``op`` the
router sends must have a handler branch" or "every config field must
be documented" spans files.  This module builds the project model
those rules need, **once per run**:

* a :class:`FileSummary` per source file — imports, classes (fields,
  class/instance attributes, attribute types), functions (call sites,
  lock spans, RPC send/branch/read sites, CLI flag registrations);
* a :class:`ProjectGraph` over all summaries — module table, symbol
  table (``repro.engine.sparse.TfIdfKernel`` → class summary), name
  resolution through imports, and an approximate call graph
  (:meth:`ProjectGraph.callees`).

Summaries are deliberately *plain data* (JSON round-trippable via
``to_dict``/``from_dict``): the runner caches them per file keyed by
content hash (:class:`LintCache`), so a warm full-tree run re-parses
only edited files while the cross-module pass always sees the whole
project.

Everything here is approximate in the usual static-analysis ways —
dynamic dispatch, ``getattr`` and monkey-patching are invisible — but
the contracts the checkers pin (FrameChannel ops, dataclass knobs,
kernel registry surfaces, lock nesting) are all expressed through the
syntactic shapes captured below.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: bump to invalidate every cache entry when extraction or rule
#: semantics change (cache entries also key on the content hash)
ANALYSIS_VERSION = 1


# ----------------------------------------------------------------------
# summary data model (all JSON round-trippable)
# ----------------------------------------------------------------------

@dataclass
class CallSite:
    """One call expression: where, what, and the RPC-relevant args."""

    line: int
    #: dotted target (``self._index.add``, ``os.replace``) or ``None``
    #: when the chain crosses a subscript/call and cannot be named
    dotted: Optional[str]
    #: last attribute segment (``call`` for ``shard.call(...)``)
    tail: Optional[str]
    argc: int
    #: first positional argument when it is a string constant
    str_arg0: Optional[str] = None
    #: keys of the second positional argument when it is a dict
    #: literal with all-constant keys
    arg1_dict_keys: Optional[List[str]] = None
    #: name of the second positional argument when it is a bare name
    #: (resolved against local dict assignments by the RPC checker)
    arg1_name: Optional[str] = None


@dataclass
class LockSpan:
    """Lines over which ``self.<lock>`` is statically held."""

    lock: str
    start: int
    end: int
    #: ``"with"`` for ``with self.lock:``; ``"acquire"`` for a
    #: ``self.lock.acquire(...)`` call (span runs to the matching
    #: ``release()`` in the same function, else to the function end)
    via: str

    def covers(self, line: int) -> bool:
        return self.start <= line <= self.end


@dataclass
class OpBranch:
    """``if <name> == "<op>":`` — one protocol dispatch branch."""

    line: int
    end: int
    name: str
    op: str

    def covers(self, line: int) -> bool:
        return self.line <= line <= self.end


@dataclass
class KeyRead:
    """``<name>["key"]`` (required) or ``<name>.get("key")``."""

    line: int
    name: str
    key: str
    required: bool


@dataclass
class CliFlag:
    """One ``add_argument`` registration."""

    line: int
    flags: List[str]
    dest: Optional[str]


@dataclass
class FunctionSummary:
    """One function or method with everything the checkers consume."""

    name: str
    qualname: str
    classname: Optional[str]
    line: int
    end: int
    params: List[str]
    decorators: List[str]
    required_lock: Optional[str]
    calls: List[CallSite] = field(default_factory=list)
    lock_spans: List[LockSpan] = field(default_factory=list)
    op_branches: List[OpBranch] = field(default_factory=list)
    key_reads: List[KeyRead] = field(default_factory=list)
    #: local ``name = {...}`` dict-literal assignments (line, name, keys)
    dict_assigns: List[Tuple[int, str, List[str]]] = field(
        default_factory=list)
    #: attributes referenced on ``self`` (or an alias of ``self``)
    attr_refs: List[str] = field(default_factory=list)


@dataclass
class FieldDef:
    """One annotated class-body assignment (a dataclass field)."""

    name: str
    line: int
    annotation: str

    @property
    def is_bool(self) -> bool:
        return self.annotation == "bool"

    @property
    def is_private(self) -> bool:
        return self.name.startswith("_")


@dataclass
class ClassSummary:
    """One class: fields, attributes, methods, inferred attr types."""

    name: str
    qualname: str
    line: int
    bases: List[str]
    decorators: List[str]
    fields: List[FieldDef] = field(default_factory=list)
    #: plain class-body assignments: name -> line
    class_attrs: Dict[str, int] = field(default_factory=dict)
    #: attributes ever assigned on ``self`` inside a method
    instance_attrs: List[str] = field(default_factory=list)
    #: ``self.<attr> = ClassName(...)`` / ``self.<attr>: ClassName``
    #: inferred instance-attribute types (dotted, unresolved)
    attr_types: Dict[str, str] = field(default_factory=dict)
    methods: List[str] = field(default_factory=list)


@dataclass
class FileSummary:
    """Everything the project graph keeps for one source file."""

    path: str
    module: str
    imports: Dict[str, str] = field(default_factory=dict)
    classes: List[ClassSummary] = field(default_factory=list)
    functions: List[FunctionSummary] = field(default_factory=list)
    cli_flags: List[CliFlag] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FileSummary":
        def _functions(raw: List[dict]) -> List[FunctionSummary]:
            out = []
            for item in raw:
                out.append(FunctionSummary(
                    name=item["name"], qualname=item["qualname"],
                    classname=item["classname"], line=item["line"],
                    end=item["end"], params=list(item["params"]),
                    decorators=list(item["decorators"]),
                    required_lock=item["required_lock"],
                    calls=[CallSite(**c) for c in item["calls"]],
                    lock_spans=[LockSpan(**s)
                                for s in item["lock_spans"]],
                    op_branches=[OpBranch(**b)
                                 for b in item["op_branches"]],
                    key_reads=[KeyRead(**r) for r in item["key_reads"]],
                    dict_assigns=[(a[0], a[1], list(a[2]))
                                  for a in item["dict_assigns"]],
                    attr_refs=list(item["attr_refs"])))
            return out

        def _classes(raw: List[dict]) -> List[ClassSummary]:
            out = []
            for item in raw:
                out.append(ClassSummary(
                    name=item["name"], qualname=item["qualname"],
                    line=item["line"], bases=list(item["bases"]),
                    decorators=list(item["decorators"]),
                    fields=[FieldDef(**f) for f in item["fields"]],
                    class_attrs=dict(item["class_attrs"]),
                    instance_attrs=list(item["instance_attrs"]),
                    attr_types=dict(item["attr_types"]),
                    methods=list(item["methods"])))
            return out

        return cls(path=payload["path"], module=payload["module"],
                   imports=dict(payload["imports"]),
                   classes=_classes(payload["classes"]),
                   functions=_functions(payload["functions"]),
                   cli_flags=[CliFlag(line=f["line"],
                                      flags=list(f["flags"]),
                                      dest=f["dest"])
                              for f in payload["cli_flags"]])


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------

def module_name_for(display_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/serve/cluster.py`` → ``repro.serve.cluster``;
    package ``__init__.py`` files name the package itself.
    """
    normalized = display_path.replace("\\", "/")
    if normalized.startswith("src/"):
        normalized = normalized[len("src/"):]
    if normalized.endswith(".py"):
        normalized = normalized[:-3]
    parts = [part for part in normalized.split("/") if part]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _dotted_name(node: ast.expr) -> Optional[str]:
    """Dotted name of an expression, ``self``-rooted chains included."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _tail_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _decorator_names(node: ast.AST) -> List[str]:
    names = []
    for decorator in getattr(node, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        dotted = _dotted_name(target)
        if dotted is not None:
            names.append(dotted)
    return names


def _required_lock(node: ast.AST) -> Optional[str]:
    """Lock name from a ``@requires_lock("...")`` decorator, if any."""
    for decorator in getattr(node, "decorator_list", []):
        if isinstance(decorator, ast.Call) \
                and _tail_name(decorator.func) == "requires_lock" \
                and decorator.args \
                and isinstance(decorator.args[0], ast.Constant) \
                and isinstance(decorator.args[0].value, str):
            return decorator.args[0].value
    return None


def _is_self_attr(node: ast.expr, aliases: Set[str]) -> Optional[str]:
    """Attribute name when ``node`` is ``<alias>.<attr>``."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id in aliases:
        return node.attr
    return None


def _dict_literal_keys(node: ast.expr) -> Optional[List[str]]:
    """Keys of a dict literal when every key is a string constant.

    ``dict(mapping, extra=1)`` calls are opaque (``None``); a dict
    literal with a non-constant key is opaque too.
    """
    if not isinstance(node, ast.Dict):
        return None
    keys: List[str] = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
        else:
            return None
    return keys


def _summarize_function(node: ast.AST, qualname: str,
                        classname: Optional[str]) -> FunctionSummary:
    params = [arg.arg for arg in node.args.posonlyargs + node.args.args]
    summary = FunctionSummary(
        name=node.name, qualname=qualname, classname=classname,
        line=node.lineno, end=node.end_lineno or node.lineno,
        params=params, decorators=_decorator_names(node),
        required_lock=_required_lock(node))
    aliases: Set[str] = {"self"}
    # alias pass first: ``config = self`` style rebindings
    for child in ast.walk(node):
        if isinstance(child, ast.Assign) \
                and isinstance(child.value, ast.Name) \
                and child.value.id in aliases:
            for target in child.targets:
                if isinstance(target, ast.Name):
                    aliases.add(target.id)
    release_lines: Dict[str, List[int]] = {}
    for child in ast.walk(node):
        if isinstance(child, ast.Call) \
                and _tail_name(child.func) in ("release",) \
                and isinstance(child.func, ast.Attribute):
            lock = _is_self_attr(child.func.value, aliases)
            if lock is not None:
                release_lines.setdefault(lock, []).append(child.lineno)
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            dotted = _dotted_name(child.func)
            tail = _tail_name(child.func)
            str_arg0 = None
            if child.args and isinstance(child.args[0], ast.Constant) \
                    and isinstance(child.args[0].value, str):
                str_arg0 = child.args[0].value
            arg1_keys = arg1_name = None
            if len(child.args) >= 2:
                arg1_keys = _dict_literal_keys(child.args[1])
                if isinstance(child.args[1], ast.Name):
                    arg1_name = child.args[1].id
            summary.calls.append(CallSite(
                line=child.lineno, dotted=dotted, tail=tail,
                argc=len(child.args), str_arg0=str_arg0,
                arg1_dict_keys=arg1_keys, arg1_name=arg1_name))
            # ``self.<lock>.acquire(...)`` opens a span to the matching
            # release (or the function end)
            if tail in ("acquire", "acquire_lock") \
                    and isinstance(child.func, ast.Attribute):
                lock = _is_self_attr(child.func.value, aliases)
                if lock is not None:
                    after = [line for line
                             in release_lines.get(lock, [])
                             if line >= child.lineno]
                    summary.lock_spans.append(LockSpan(
                        lock=lock, start=child.lineno,
                        end=min(after) if after else summary.end,
                        via="acquire"))
            # ``object.__setattr__(self, "field", ...)`` counts as an
            # attribute reference (frozen-dataclass validators)
            if dotted == "object.__setattr__" and len(child.args) >= 2 \
                    and isinstance(child.args[0], ast.Name) \
                    and child.args[0].id in aliases \
                    and isinstance(child.args[1], ast.Constant) \
                    and isinstance(child.args[1].value, str):
                summary.attr_refs.append(child.args[1].value)
            # ``<name>.get("key")``
            if tail == "get" and isinstance(child.func, ast.Attribute) \
                    and isinstance(child.func.value, ast.Name) \
                    and str_arg0 is not None:
                summary.key_reads.append(KeyRead(
                    line=child.lineno, name=child.func.value.id,
                    key=str_arg0, required=False))
        elif isinstance(child, (ast.With, ast.AsyncWith)):
            for item in child.items:
                expr: ast.expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                    if isinstance(expr, ast.Attribute) \
                            and expr.attr in ("acquire", "acquire_lock"):
                        expr = expr.value
                lock = _is_self_attr(expr, aliases)
                if lock is not None:
                    summary.lock_spans.append(LockSpan(
                        lock=lock, start=child.lineno,
                        end=child.end_lineno or child.lineno,
                        via="with"))
        elif isinstance(child, ast.If):
            test = child.test
            if isinstance(test, ast.Compare) \
                    and isinstance(test.left, ast.Name) \
                    and len(test.ops) == 1 \
                    and isinstance(test.ops[0], ast.Eq) \
                    and isinstance(test.comparators[0], ast.Constant) \
                    and isinstance(test.comparators[0].value, str):
                summary.op_branches.append(OpBranch(
                    line=child.lineno,
                    end=child.end_lineno or child.lineno,
                    name=test.left.id, op=test.comparators[0].value))
        elif isinstance(child, ast.Subscript):
            if isinstance(child.value, ast.Name) \
                    and isinstance(child.slice, ast.Constant) \
                    and isinstance(child.slice.value, str) \
                    and isinstance(child.ctx, ast.Load):
                summary.key_reads.append(KeyRead(
                    line=child.lineno, name=child.value.id,
                    key=child.slice.value, required=True))
        elif isinstance(child, ast.Assign):
            keys = _dict_literal_keys(child.value)
            if keys is not None:
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        summary.dict_assigns.append(
                            (child.lineno, target.id, keys))
        elif isinstance(child, ast.Attribute):
            if isinstance(child.value, ast.Name) \
                    and child.value.id in aliases \
                    and isinstance(child.ctx, ast.Load):
                summary.attr_refs.append(child.attr)
    summary.attr_refs = sorted(set(summary.attr_refs))
    summary.lock_spans.sort(key=lambda span: (span.start, span.lock))
    return summary


def _summarize_class(node: ast.ClassDef, qualprefix: str,
                     functions: List[FunctionSummary]) -> ClassSummary:
    qualname = f"{qualprefix}{node.name}" if qualprefix else node.name
    summary = ClassSummary(
        name=node.name, qualname=qualname, line=node.lineno,
        bases=[_dotted_name(base) or "" for base in node.bases],
        decorators=_decorator_names(node))
    instance_attrs: Set[str] = set()
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) \
                and isinstance(statement.target, ast.Name):
            summary.fields.append(FieldDef(
                name=statement.target.id, line=statement.lineno,
                annotation=ast.unparse(statement.annotation)))
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    summary.class_attrs[target.id] = statement.lineno
        elif isinstance(statement,
                        (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.methods.append(statement.name)
            method = _summarize_function(
                statement, f"{qualname}.{statement.name}", node.name)
            functions.append(method)
            for child in ast.walk(statement):
                if isinstance(child, ast.Assign):
                    attr = None
                    for target in child.targets:
                        name = _is_self_attr(target, {"self"})
                        if name is not None:
                            attr = name
                            instance_attrs.add(name)
                    if attr is not None \
                            and isinstance(child.value, ast.Call):
                        dotted = _dotted_name(child.value.func)
                        if dotted is not None:
                            summary.attr_types.setdefault(attr, dotted)
                elif isinstance(child, ast.AnnAssign):
                    name = _is_self_attr(child.target, {"self"})
                    if name is not None:
                        instance_attrs.add(name)
                        dotted = ast.unparse(child.annotation)
                        summary.attr_types.setdefault(attr := name,
                                                      dotted)
    summary.instance_attrs = sorted(instance_attrs)
    return summary


def summarize_module(display_path: str, tree: ast.Module) -> FileSummary:
    """Extract the :class:`FileSummary` of one parsed file."""
    module = module_name_for(display_path)
    summary = FileSummary(path=display_path, module=module)
    package = module if display_path.replace("\\", "/").endswith(
        "__init__.py") else module.rsplit(".", 1)[0]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    summary.imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    summary.imports.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = package.split(".")
                parts = parts[:len(parts) - (node.level - 1)] \
                    if node.level > 1 else parts
                prefix = ".".join(parts)
                base = f"{prefix}.{base}" if base else prefix
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                summary.imports[bound] = f"{base}.{alias.name}" \
                    if base else alias.name
    for statement in tree.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.functions.append(
                _summarize_function(statement, statement.name, None))
        elif isinstance(statement, ast.ClassDef):
            summary.classes.append(
                _summarize_class(statement, "", summary.functions))
    for function in summary.functions:
        for call in function.calls:
            if call.tail == "add_argument":
                flags = []
                if call.str_arg0 is not None \
                        and call.str_arg0.startswith("-"):
                    flags.append(call.str_arg0)
                if flags:
                    summary.cli_flags.append(CliFlag(
                        line=call.line, flags=flags, dest=None))
    # add_argument metadata needs the raw AST for every flag string and
    # the dest= keyword, which CallSite does not carry; re-walk for them
    summary.cli_flags = _extract_cli_flags(tree)
    return summary


def _extract_cli_flags(tree: ast.Module) -> List[CliFlag]:
    flags: List[CliFlag] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) \
                or _tail_name(node.func) != "add_argument":
            continue
        names = [argument.value for argument in node.args
                 if isinstance(argument, ast.Constant)
                 and isinstance(argument.value, str)]
        option_flags = [name for name in names if name.startswith("-")]
        dest = None
        for keyword in node.keywords:
            if keyword.arg == "dest" \
                    and isinstance(keyword.value, ast.Constant) \
                    and isinstance(keyword.value.value, str):
                dest = keyword.value.value
        if not dest:
            positional = [name for name in names
                          if not name.startswith("-")]
            source = (option_flags or positional)
            if source:
                dest = source[0].lstrip("-").replace("-", "_")
        if option_flags or dest:
            flags.append(CliFlag(line=node.lineno, flags=option_flags,
                                 dest=dest))
    return flags


# ----------------------------------------------------------------------
# the graph
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Symbol:
    """One resolved project symbol."""

    kind: str  # "class" | "function" | "module"
    qualname: str
    file: FileSummary
    #: the ClassSummary / FunctionSummary / FileSummary payload
    node: object


class ProjectGraph:
    """Symbol table + name resolution + call graph over summaries."""

    def __init__(self, root: str,
                 summaries: Sequence[FileSummary]) -> None:
        self.root = root
        self.files: Dict[str, FileSummary] = {
            summary.path: summary for summary in summaries}
        self.modules: Dict[str, FileSummary] = {}
        self.classes: Dict[str, Tuple[ClassSummary, FileSummary]] = {}
        self.functions: Dict[str,
                             Tuple[FunctionSummary, FileSummary]] = {}
        for summary in summaries:
            self.modules.setdefault(summary.module, summary)
            for cls in summary.classes:
                self.classes.setdefault(
                    f"{summary.module}.{cls.qualname}", (cls, summary))
            for function in summary.functions:
                self.functions.setdefault(
                    f"{summary.module}.{function.qualname}",
                    (function, summary))

    # -- convenience ---------------------------------------------------

    def ordered_files(self) -> List[FileSummary]:
        return [self.files[path] for path in sorted(self.files)]

    def class_named(self, qualname: str) \
            -> Optional[Tuple[ClassSummary, FileSummary]]:
        return self.classes.get(qualname)

    def function_named(self, qualname: str) \
            -> Optional[Tuple[FunctionSummary, FileSummary]]:
        return self.functions.get(qualname)

    def module_named(self, module: str) -> Optional[FileSummary]:
        return self.modules.get(module)

    def methods_of(self, cls: ClassSummary,
                   file: FileSummary) -> List[FunctionSummary]:
        prefix = f"{cls.qualname}."
        return [function for function in file.functions
                if function.qualname.startswith(prefix)
                and function.classname == cls.name]

    def read_text(self, relpath: str) -> Optional[str]:
        absolute = os.path.join(self.root, relpath)
        if not os.path.exists(absolute):
            return None
        with open(absolute, "r", encoding="utf-8") as handle:
            return handle.read()

    # -- resolution ----------------------------------------------------

    def _lookup(self, qualname: str) -> Optional[Symbol]:
        hit = self.classes.get(qualname)
        if hit is not None:
            return Symbol("class", qualname, hit[1], hit[0])
        fhit = self.functions.get(qualname)
        if fhit is not None:
            return Symbol("function", qualname, fhit[1], fhit[0])
        module = self.modules.get(qualname)
        if module is not None:
            return Symbol("module", qualname, module, module)
        return None

    def resolve(self, dotted: str,
                file: FileSummary) -> Optional[Symbol]:
        """Resolve a dotted reference seen in ``file`` to a symbol.

        Tries, in order: a local definition, the file's imports, and
        the reference as an already-fully-qualified name.  ``self.``
        chains are the caller's business (they need a class context).
        """
        if not dotted or dotted.startswith("self."):
            return None
        head, _, rest = dotted.partition(".")
        candidates = []
        local = f"{file.module}.{dotted}"
        candidates.append(local)
        imported = file.imports.get(head)
        if imported is not None:
            candidates.append(f"{imported}.{rest}" if rest else imported)
        candidates.append(dotted)
        for candidate in candidates:
            symbol = self._lookup(candidate)
            if symbol is not None:
                return symbol
        return None

    def resolve_attr_call(self, cls: ClassSummary, file: FileSummary,
                          dotted: str) -> Optional[Symbol]:
        """Resolve ``self.<attr>.<method>`` through inferred types."""
        parts = dotted.split(".")
        if len(parts) != 3 or parts[0] != "self":
            return None
        attr, method = parts[1], parts[2]
        type_ref = cls.attr_types.get(attr)
        if type_ref is None:
            return None
        target = self.resolve(type_ref, file)
        if target is None or target.kind != "class":
            return None
        return self._lookup(f"{target.qualname}.{method}")

    def callees(self, function: FunctionSummary, file: FileSummary,
                cls: Optional[ClassSummary] = None) -> List[Symbol]:
        """Resolved project symbols this function calls (approximate)."""
        resolved: List[Symbol] = []
        seen: Set[str] = set()
        for call in function.calls:
            if call.dotted is None:
                continue
            symbol: Optional[Symbol] = None
            if call.dotted.startswith("self."):
                parts = call.dotted.split(".")
                if cls is not None and len(parts) == 2 \
                        and parts[1] in cls.methods:
                    symbol = self._lookup(
                        f"{file.module}.{cls.qualname}.{parts[1]}")
                elif cls is not None and len(parts) == 3:
                    symbol = self.resolve_attr_call(cls, file,
                                                    call.dotted)
            else:
                symbol = self.resolve(call.dotted, file)
            if symbol is not None and symbol.qualname not in seen:
                seen.add(symbol.qualname)
                resolved.append(symbol)
        return resolved


def build_graph(root: str, paths_and_trees: Sequence[Tuple[str,
                                                           ast.Module]]
                ) -> ProjectGraph:
    """Build a graph straight from parsed trees (tests, tooling)."""
    return ProjectGraph(root, [summarize_module(path, tree)
                               for path, tree in paths_and_trees])


# ----------------------------------------------------------------------
# the content-hash cache
# ----------------------------------------------------------------------

def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class LintCache:
    """Per-file parse/analysis results keyed by content hash.

    The cache file holds, per display path: the content hash, the
    serialized :class:`FileSummary`, the raw per-file findings and the
    parsed suppressions — everything the runner needs to skip parsing
    an unchanged file entirely.  The whole file is dropped when the
    recorded ``ANALYSIS_VERSION`` differs, so rule changes can never
    be masked by stale cached findings.
    """

    def __init__(self, path: Optional[str]) -> None:
        self.path = path
        self.entries: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        if path is not None and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                payload = None
            if isinstance(payload, dict) \
                    and payload.get("version") == ANALYSIS_VERSION \
                    and isinstance(payload.get("files"), dict):
                self.entries = payload["files"]
        self._touched: Set[str] = set()

    def lookup(self, display: str,
               sha: str) -> Optional[Dict[str, object]]:
        entry = self.entries.get(display)
        if entry is None or entry.get("sha") != sha:
            return None
        self.hits += 1
        self._touched.add(display)
        return entry

    def store(self, display: str, entry: Dict[str, object]) -> None:
        self.entries[display] = entry
        self._touched.add(display)

    def save(self) -> None:
        if self.path is None:
            return
        payload = {"version": ANALYSIS_VERSION,
                   "files": {display: entry for display, entry
                             in sorted(self.entries.items())
                             if display in self._touched}}
        tmp = f"{self.path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:  # pragma: no cover - cache is best-effort
            try:
                os.unlink(tmp)
            except OSError:
                pass


def iter_lock_holders(spans: Sequence[LockSpan],
                      line: int) -> Iterator[str]:
    """Locks whose spans cover ``line``."""
    for span in spans:
        if span.covers(line):
            yield span.lock
