"""File discovery, caching, suppression/baseline layers, reporting.

The runner walks the target tree in sorted order (the linter obeys its
own DET rules), parses each ``.py`` file once, feeds it to every
interested per-file checker, then builds the
:class:`~repro.analysis.graph.ProjectGraph` over every file's summary
and runs the project checkers (RPC/CFG/KRN/LCK002+) against it.  Two
acceptance layers follow:

1. inline suppressions (``# repro: allow-... -- reason``) — a
   suppression that matches a finding removes it; a suppression with
   no reason yields ``SUP001``; a suppression (with a reason) that
   matches *nothing* yields ``SUP002`` so allow-comments cannot
   outlive their finding;
2. the committed baseline (``lint-baseline.json``) — findings listed
   there with a non-empty ``reason`` are accepted; entries with an
   empty reason are configuration errors.

Anything left is an *unbaselined* finding and fails the run.

Per-file work (parse, per-file findings, suppressions, graph summary)
is cached by content hash when ``cache_path`` is given: a warm run
re-parses only edited files, while the cross-module pass always runs
over the full current project.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.core import (
    Checker,
    Finding,
    ModuleContext,
    ProjectChecker,
    Suppression,
    all_checkers,
    parse_module,
)
from repro.analysis.graph import (
    FileSummary,
    LintCache,
    ProjectGraph,
    content_hash,
    summarize_module,
)

DEFAULT_CACHE = ".repro-lint-cache.json"

BASELINE_VERSION = 1
DEFAULT_BASELINE = "lint-baseline.json"

_BaselineKey = Tuple[str, str, str]


@dataclass
class BaselineEntry:
    """One accepted finding with its justification."""

    code: str
    file: str
    message: str
    reason: str

    def key(self) -> _BaselineKey:
        return (self.code, self.file, self.message)


@dataclass
class AnalysisReport:
    """Everything one run produced, split by acceptance layer."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    unbaselined: List[Finding] = field(default_factory=list)
    baseline_errors: List[str] = field(default_factory=list)
    files_checked: int = 0
    files_cached: int = 0

    @property
    def ok(self) -> bool:
        return not self.unbaselined and not self.baseline_errors

    def exit_code(self) -> int:
        if self.baseline_errors:
            return 2
        return 0 if not self.unbaselined else 1

    def render_text(self) -> str:
        lines: List[str] = []
        for finding in self.unbaselined:
            lines.append(finding.render())
        for error in self.baseline_errors:
            lines.append(f"baseline error: {error}")
        cached = f" ({self.files_cached} cached)" if self.files_cached \
            else ""
        lines.append(
            f"{self.files_checked} files checked{cached}: "
            f"{len(self.unbaselined)} finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed")
        return "\n".join(lines)

    def render_json(self) -> str:
        def encode(finding: Finding) -> Dict[str, object]:
            return {"file": finding.file, "line": finding.line,
                    "code": finding.code, "message": finding.message}

        return json.dumps({
            "files_checked": self.files_checked,
            "files_cached": self.files_cached,
            "unbaselined": [encode(finding) for finding in self.unbaselined],
            "baselined": [encode(finding) for finding in self.baselined],
            "suppressed": [encode(finding) for finding in self.suppressed],
            "baseline_errors": list(self.baseline_errors),
        }, indent=2, sort_keys=True)


def load_baseline(path: str) -> List[BaselineEntry]:
    """Read ``lint-baseline.json``; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) \
            or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: expected a baseline object with version "
            f"{BASELINE_VERSION}")
    entries: List[BaselineEntry] = []
    for raw in payload.get("findings", []):
        entries.append(BaselineEntry(
            code=str(raw.get("code", "")),
            file=str(raw.get("file", "")),
            message=str(raw.get("message", "")),
            reason=str(raw.get("reason", ""))))
    return entries


def write_baseline(path: str, findings: Sequence[Finding],
                   previous: Sequence[BaselineEntry]) -> None:
    """Serialise ``findings`` as a baseline, keeping known reasons."""
    reasons: Dict[_BaselineKey, str] = {
        entry.key(): entry.reason for entry in previous}
    serialised = []
    for finding in sorted(set(findings),
                          key=lambda f: (f.file, f.code, f.line)):
        key = (finding.code, finding.file, finding.message)
        serialised.append({
            "code": finding.code,
            "file": finding.file,
            "message": finding.message,
            "reason": reasons.get(key, ""),
        })
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": BASELINE_VERSION, "findings": serialised},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")


def discover_files(paths: Sequence[str], root: str) -> List[str]:
    """Absolute paths of every ``.py`` file under ``paths``, sorted.

    ``__pycache__`` and ``fixtures`` directories are skipped: the
    latter hold deliberately-broken golden inputs for the linter's own
    tests and must never be linted as live code.
    """
    found: List[str] = []
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            found.append(absolute)
            continue
        for directory, directories, names in os.walk(absolute):
            directories.sort()
            directories[:] = [name for name in directories
                              if name not in ("__pycache__", "fixtures")]
            for name in sorted(names):
                if name.endswith(".py"):
                    found.append(os.path.join(directory, name))
    return sorted(set(found))


def _display_path(path: str, root: str) -> str:
    relative = os.path.relpath(path, root)
    return relative.replace(os.sep, "/")


def check_file(path: str, root: str,
               checkers: Optional[Sequence[Checker]] = None
               ) -> Tuple[List[Finding], List[Finding]]:
    """Run checkers on one file; returns ``(active, suppressed)``.

    Suppressions are applied here; a suppression with no reason
    contributes a ``SUP001`` finding to the active list.
    """
    if checkers is None:
        checkers = all_checkers()
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    display = _display_path(path, root)
    try:
        context = parse_module(path, source, display_path=display)
    except (SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", 1) or 1
        return [Finding(display, line, "SYN001",
                        f"file does not parse: {error}")], []
    raw: List[Finding] = []
    for checker in checkers:
        if checker.interested(context):
            raw.extend(checker.check(context))
    active: List[Finding] = []
    suppressed: List[Finding] = []
    used: set[int] = set()
    for finding in raw:
        covering = next((suppression for suppression in context.suppressions
                         if suppression.covers(finding)), None)
        if covering is not None:
            suppressed.append(finding)
            used.add(covering.line)
        else:
            active.append(finding)
    for suppression in context.suppressions:
        if not suppression.reason or not suppression.reason.strip():
            active.append(Finding(
                display, suppression.line, "SUP001",
                f"suppression allow-{suppression.token} has no reason; "
                "write '# repro: allow-... -- <why this is safe>'"))
    active.sort(key=lambda finding: (finding.line, finding.code))
    return active, suppressed


def _encode_findings(findings: Sequence[Finding]) -> List[List[object]]:
    return [[f.line, f.code, f.message] for f in findings]


def _decode_findings(display: str,
                     raw: Iterable[Sequence[object]]) -> List[Finding]:
    return [Finding(display, int(item[0]), str(item[1]), str(item[2]))
            for item in raw]


def _analyze_file(path: str, display: str, source: str,
                  checkers: Sequence[Checker]) -> Dict[str, object]:
    """Per-file pass: parse, per-file findings, suppressions, summary."""
    try:
        context = parse_module(path, source, display_path=display)
    except (SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", 1) or 1
        return {"findings": [[line, "SYN001",
                              f"file does not parse: {error}"]],
                "suppressions": [], "summary": None}
    raw: List[Finding] = []
    for checker in checkers:
        if not isinstance(checker, ProjectChecker) \
                and checker.interested(context):
            raw.extend(checker.check(context))
    raw.sort(key=lambda finding: (finding.line, finding.code))
    return {
        "findings": _encode_findings(raw),
        "suppressions": [[s.line, s.token, s.reason, s.target_line]
                         for s in context.suppressions],
        "summary": summarize_module(display, context.tree).to_dict(),
    }


def run_paths(paths: Sequence[str], root: str,
              baseline: Optional[Iterable[BaselineEntry]] = None,
              cache_path: Optional[str] = None) -> AnalysisReport:
    """Check every file under ``paths`` and fold in the baseline.

    Runs per-file checkers (cached by content hash when ``cache_path``
    is set), builds the project graph over every file's summary, runs
    the project checkers, then applies suppressions globally (SUP001 /
    SUP002) and the baseline.
    """
    report = AnalysisReport()
    checkers = all_checkers()
    cache = LintCache(cache_path)
    per_file: List[Tuple[str, Dict[str, object]]] = []
    for path in discover_files(paths, root):
        display = _display_path(path, root)
        with open(path, "rb") as handle:
            data = handle.read()
        sha = content_hash(data)
        entry = cache.lookup(display, sha)
        if entry is None:
            source = data.decode("utf-8")
            entry = _analyze_file(path, display, source, checkers)
            entry["sha"] = sha
            cache.store(display, entry)
        else:
            report.files_cached += 1
        per_file.append((display, entry))
        report.files_checked += 1
    cache.save()

    summaries: List[FileSummary] = []
    for _display, entry in per_file:
        summary = entry.get("summary")
        if summary is not None:
            summaries.append(FileSummary.from_dict(summary))
    graph = ProjectGraph(root, summaries)
    project_findings: List[Finding] = []
    for checker in checkers:
        if isinstance(checker, ProjectChecker):
            project_findings.extend(checker.check_project(graph))

    findings_by_file: Dict[str, List[Finding]] = {}
    suppressions_by_file: Dict[str, List[Suppression]] = {}
    for display, entry in per_file:
        findings_by_file[display] = _decode_findings(
            display, entry["findings"])
        suppressions_by_file[display] = [
            Suppression(line=int(item[0]), token=str(item[1]),
                        reason=item[2], target_line=int(item[3]))
            for item in entry["suppressions"]]
    for finding in project_findings:
        findings_by_file.setdefault(finding.file, []).append(finding)

    active: List[Finding] = []
    used: Dict[str, set[int]] = {}
    for display in sorted(findings_by_file):
        suppressions = suppressions_by_file.get(display, [])
        for finding in findings_by_file[display]:
            covering = next(
                (suppression for suppression in suppressions
                 if suppression.covers(finding)), None)
            if covering is not None:
                report.suppressed.append(finding)
                used.setdefault(display, set()).add(covering.line)
            else:
                active.append(finding)
    for display in sorted(suppressions_by_file):
        for suppression in suppressions_by_file[display]:
            reason = suppression.reason
            if not reason or not str(reason).strip():
                active.append(Finding(
                    display, suppression.line, "SUP001",
                    f"suppression allow-{suppression.token} has no "
                    "reason; write '# repro: allow-... -- "
                    "<why this is safe>'"))
            elif suppression.line not in used.get(display, set()):
                active.append(Finding(
                    display, suppression.line, "SUP002",
                    f"suppression allow-{suppression.token} matches "
                    "no finding; the issue it excused is gone — "
                    "delete the comment"))
    active.sort(key=lambda finding: (finding.file, finding.line,
                                     finding.code))
    report.findings.extend(active)

    entries = list(baseline) if baseline is not None else []
    accepted: Dict[_BaselineKey, BaselineEntry] = {}
    for entry in entries:
        if not entry.reason.strip():
            report.baseline_errors.append(
                f"{entry.file}: {entry.code} entry has an empty reason")
            continue
        accepted[entry.key()] = entry
    matched: set[_BaselineKey] = set()
    for finding in report.findings:
        key = (finding.code, finding.file, finding.message)
        if key in accepted:
            report.baselined.append(finding)
            matched.add(key)
        else:
            report.unbaselined.append(finding)
    for key, entry in sorted(accepted.items()):
        if key not in matched:
            report.baseline_errors.append(
                f"{entry.file}: stale baseline entry {entry.code} "
                f"({entry.message[:60]}...) no longer matches any finding")
    return report


def parse_tree(path: str) -> ast.Module:
    """Parse one file to an AST — convenience for tests and tooling."""
    with open(path, "r", encoding="utf-8") as handle:
        return ast.parse(handle.read(), filename=path)
