"""File discovery, suppression/baseline application, and reporting.

The runner walks the target tree in sorted order (the linter obeys its
own DET rules), parses each ``.py`` file once, feeds it to every
interested checker, then applies two acceptance layers:

1. inline suppressions (``# repro: allow-... -- reason``) — a
   suppression that matches a finding removes it; a suppression with
   no reason yields a ``SUP001`` finding of its own;
2. the committed baseline (``lint-baseline.json``) — findings listed
   there with a non-empty ``reason`` are accepted; entries with an
   empty reason are configuration errors.

Anything left is an *unbaselined* finding and fails the run.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.core import (
    Checker,
    Finding,
    all_checkers,
    parse_module,
)

BASELINE_VERSION = 1
DEFAULT_BASELINE = "lint-baseline.json"

_BaselineKey = Tuple[str, str, str]


@dataclass
class BaselineEntry:
    """One accepted finding with its justification."""

    code: str
    file: str
    message: str
    reason: str

    def key(self) -> _BaselineKey:
        return (self.code, self.file, self.message)


@dataclass
class AnalysisReport:
    """Everything one run produced, split by acceptance layer."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    unbaselined: List[Finding] = field(default_factory=list)
    baseline_errors: List[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.unbaselined and not self.baseline_errors

    def exit_code(self) -> int:
        if self.baseline_errors:
            return 2
        return 0 if not self.unbaselined else 1

    def render_text(self) -> str:
        lines: List[str] = []
        for finding in self.unbaselined:
            lines.append(finding.render())
        for error in self.baseline_errors:
            lines.append(f"baseline error: {error}")
        lines.append(
            f"{self.files_checked} files checked: "
            f"{len(self.unbaselined)} finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed")
        return "\n".join(lines)

    def render_json(self) -> str:
        def encode(finding: Finding) -> Dict[str, object]:
            return {"file": finding.file, "line": finding.line,
                    "code": finding.code, "message": finding.message}

        return json.dumps({
            "files_checked": self.files_checked,
            "unbaselined": [encode(finding) for finding in self.unbaselined],
            "baselined": [encode(finding) for finding in self.baselined],
            "suppressed": [encode(finding) for finding in self.suppressed],
            "baseline_errors": list(self.baseline_errors),
        }, indent=2, sort_keys=True)


def load_baseline(path: str) -> List[BaselineEntry]:
    """Read ``lint-baseline.json``; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) \
            or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: expected a baseline object with version "
            f"{BASELINE_VERSION}")
    entries: List[BaselineEntry] = []
    for raw in payload.get("findings", []):
        entries.append(BaselineEntry(
            code=str(raw.get("code", "")),
            file=str(raw.get("file", "")),
            message=str(raw.get("message", "")),
            reason=str(raw.get("reason", ""))))
    return entries


def write_baseline(path: str, findings: Sequence[Finding],
                   previous: Sequence[BaselineEntry]) -> None:
    """Serialise ``findings`` as a baseline, keeping known reasons."""
    reasons: Dict[_BaselineKey, str] = {
        entry.key(): entry.reason for entry in previous}
    serialised = []
    for finding in sorted(set(findings),
                          key=lambda f: (f.file, f.code, f.line)):
        key = (finding.code, finding.file, finding.message)
        serialised.append({
            "code": finding.code,
            "file": finding.file,
            "message": finding.message,
            "reason": reasons.get(key, ""),
        })
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": BASELINE_VERSION, "findings": serialised},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")


def discover_files(paths: Sequence[str], root: str) -> List[str]:
    """Absolute paths of every ``.py`` file under ``paths``, sorted."""
    found: List[str] = []
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(absolute):
            found.append(absolute)
            continue
        for directory, directories, names in os.walk(absolute):
            directories.sort()
            directories[:] = [name for name in directories
                              if name != "__pycache__"]
            for name in sorted(names):
                if name.endswith(".py"):
                    found.append(os.path.join(directory, name))
    return sorted(set(found))


def _display_path(path: str, root: str) -> str:
    relative = os.path.relpath(path, root)
    return relative.replace(os.sep, "/")


def check_file(path: str, root: str,
               checkers: Optional[Sequence[Checker]] = None
               ) -> Tuple[List[Finding], List[Finding]]:
    """Run checkers on one file; returns ``(active, suppressed)``.

    Suppressions are applied here; a suppression with no reason
    contributes a ``SUP001`` finding to the active list.
    """
    if checkers is None:
        checkers = all_checkers()
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    display = _display_path(path, root)
    try:
        context = parse_module(path, source, display_path=display)
    except (SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", 1) or 1
        return [Finding(display, line, "SYN001",
                        f"file does not parse: {error}")], []
    raw: List[Finding] = []
    for checker in checkers:
        if checker.interested(context):
            raw.extend(checker.check(context))
    active: List[Finding] = []
    suppressed: List[Finding] = []
    used: set[int] = set()
    for finding in raw:
        covering = next((suppression for suppression in context.suppressions
                         if suppression.covers(finding)), None)
        if covering is not None:
            suppressed.append(finding)
            used.add(covering.line)
        else:
            active.append(finding)
    for suppression in context.suppressions:
        if not suppression.reason or not suppression.reason.strip():
            active.append(Finding(
                display, suppression.line, "SUP001",
                f"suppression allow-{suppression.token} has no reason; "
                "write '# repro: allow-... -- <why this is safe>'"))
    active.sort(key=lambda finding: (finding.line, finding.code))
    return active, suppressed


def run_paths(paths: Sequence[str], root: str,
              baseline: Optional[Iterable[BaselineEntry]] = None
              ) -> AnalysisReport:
    """Check every file under ``paths`` and fold in the baseline."""
    report = AnalysisReport()
    checkers = all_checkers()
    for path in discover_files(paths, root):
        active, suppressed = check_file(path, root, checkers)
        report.findings.extend(active)
        report.suppressed.extend(suppressed)
        report.files_checked += 1
    entries = list(baseline) if baseline is not None else []
    accepted: Dict[_BaselineKey, BaselineEntry] = {}
    for entry in entries:
        if not entry.reason.strip():
            report.baseline_errors.append(
                f"{entry.file}: {entry.code} entry has an empty reason")
            continue
        accepted[entry.key()] = entry
    matched: set[_BaselineKey] = set()
    for finding in report.findings:
        key = (finding.code, finding.file, finding.message)
        if key in accepted:
            report.baselined.append(finding)
            matched.add(key)
        else:
            report.unbaselined.append(finding)
    for key, entry in sorted(accepted.items()):
        if key not in matched:
            report.baseline_errors.append(
                f"{entry.file}: stale baseline entry {entry.code} "
                f"({entry.message[:60]}...) no longer matches any finding")
    return report


def parse_tree(path: str) -> ast.Module:
    """Parse one file to an AST — convenience for tests and tooling."""
    with open(path, "r", encoding="utf-8") as handle:
        return ast.parse(handle.read(), filename=path)
