"""``repro lint`` / ``python -m repro.analysis`` entry point."""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.runner import (
    DEFAULT_BASELINE,
    DEFAULT_CACHE,
    load_baseline,
    run_paths,
    write_baseline,
)

#: default lint surface: the package, plus benchmarks/ and tests/
#: (the PKL/DUR families are path-scoped onto the latter two)
DEFAULT_PATHS = (os.path.join("src", "repro"), "benchmarks", "tests")


def _find_root(start: str) -> str:
    """Nearest ancestor holding ``pyproject.toml`` (else ``start``)."""
    current = os.path.abspath(start)
    while True:
        if os.path.exists(os.path.join(current, "pyproject.toml")):
            return current
        parent = os.path.dirname(current)
        if parent == current:
            return os.path.abspath(start)
        current = parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="invariant-aware static analysis (per-file "
                    "DET/LCK/PKL/DUR/API families plus whole-program "
                    "RPC/CFG/KRN contract checks)")
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to check "
             "(default: src/repro benchmarks tests)")
    parser.add_argument(
        "--root", default=None,
        help="repo root for relative paths and the baseline "
             "(default: nearest ancestor with pyproject.toml)")
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline file relative to the root "
             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline; report every finding")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from current findings, keeping "
             "existing reasons (new entries get an empty reason you "
             "must fill in)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a JSON report instead of text")
    parser.add_argument(
        "--cache", default=DEFAULT_CACHE, metavar="PATH",
        help="per-file result cache relative to the root "
             f"(default: {DEFAULT_CACHE})")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="analyze every file from scratch and write no cache")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    options = build_parser().parse_args(argv)
    root = os.path.abspath(options.root) if options.root \
        else _find_root(os.getcwd())
    paths: List[str] = list(options.paths) if options.paths \
        else [path for path in DEFAULT_PATHS
              if os.path.exists(os.path.join(root, path))]
    baseline_path = os.path.join(root, options.baseline)
    baseline = [] if options.no_baseline else load_baseline(baseline_path)
    cache_path = None if options.no_cache \
        else os.path.join(root, options.cache)
    report = run_paths(paths, root, baseline, cache_path=cache_path)
    if options.write_baseline:
        write_baseline(baseline_path, report.findings, baseline)
        print(f"wrote {len(set(report.findings))} finding(s) to "
              f"{baseline_path}")
        return 0
    output = report.render_json() if options.as_json else report.render_text()
    print(output)
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
