"""Framework primitives: findings, module contexts, suppressions.

A checker is a class with a ``CODE`` family prefix (``DET``, ``LCK``,
...), a ``SCOPES`` tuple of repo-relative path prefixes it applies to,
and a ``check(context)`` generator yielding :class:`Finding` objects.
The runner (:mod:`repro.analysis.runner`) parses each file once into a
:class:`ModuleContext` and feeds it to every interested checker; the
context also carries the file's parsed suppression comments, which the
runner applies *after* checking so a suppression with a missing reason
can itself be reported (``SUP001``).

Suppression syntax, one comment per line::

    risky_call()  # repro: allow-unordered -- cache eviction is order-independent

``allow-<token>`` accepts either a family alias (``unordered`` for
DET, ``unlocked`` for LCK, ``unpicklable`` for PKL, ``durability`` for
DUR, ``api-error`` for API, ``protocol`` for RPC, ``config`` for CFG,
``kernel`` for KRN) or an exact lower-cased finding code
(``allow-det004``).  Everything after ``--`` is the mandatory reason.
A suppression covers findings on its own line; a comment-only line
covers the first following line that holds code.  A suppression that
matches nothing is itself reported (``SUP002``) so allow-comments
cannot outlive the finding they excused.

Cross-module rules (RPC/CFG/KRN/LCK002+) subclass
:class:`ProjectChecker` and run against the
:class:`repro.analysis.graph.ProjectGraph` built once per run.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.analysis.graph import ProjectGraph

#: family alias -> checker code prefix, mirrored in docs/static-analysis.md
FAMILY_ALIASES: Dict[str, str] = {
    "unordered": "DET",
    "unlocked": "LCK",
    "unpicklable": "PKL",
    "durability": "DUR",
    "api-error": "API",
    "protocol": "RPC",
    "config": "CFG",
    "kernel": "KRN",
}

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow-(?P<token>[A-Za-z0-9_-]+)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One structured finding: ``file:line CODE message``."""

    file: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line} {self.code} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: allow-...`` comment."""

    line: int
    token: str
    reason: Optional[str]
    #: the line of code this suppression covers (its own line, or the
    #: next code-bearing line for a comment-only line)
    target_line: int

    def covers(self, finding: Finding) -> bool:
        if finding.line != self.target_line:
            return False
        token = self.token.lower()
        prefix = FAMILY_ALIASES.get(token)
        if prefix is not None:
            return finding.code.startswith(prefix)
        return finding.code.lower() == token


@dataclass
class ModuleContext:
    """One parsed source file plus everything checkers need to see."""

    path: str
    tree: ast.Module
    source_lines: Sequence[str]
    suppressions: List[Suppression] = field(default_factory=list)

    def in_scope(self, prefixes: Iterable[str]) -> bool:
        """Whether this file falls under any of the path prefixes."""
        normalized = self.path.replace("\\", "/")
        return any(normalized.startswith(prefix) or f"/{prefix}" in normalized
                   for prefix in prefixes)


class Checker:
    """Base class: subclasses define ``CODE``, ``SCOPES`` and ``check``."""

    #: finding-code family prefix, e.g. ``"DET"``
    CODE: str = ""
    #: repo-relative path prefixes the checker applies to; empty = all
    SCOPES: Tuple[str, ...] = ()

    def interested(self, context: ModuleContext) -> bool:
        return not self.SCOPES or context.in_scope(self.SCOPES)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectChecker(Checker):
    """A checker that sees the whole project, not one file.

    Subclasses implement :meth:`check_project` against the
    :class:`repro.analysis.graph.ProjectGraph` the runner builds once
    per run.  ``check`` is a no-op so project checkers can sit in the
    same registry as per-file checkers; ``SCOPES`` still applies —
    findings are only *emitted* for files inside the checker's scope,
    but the graph itself always covers every checked file.
    """

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, graph: "ProjectGraph") -> Iterator[Finding]:
        raise NotImplementedError

    def file_in_scope(self, path: str) -> bool:
        if not self.SCOPES:
            return True
        normalized = path.replace("\\", "/")
        return any(normalized.startswith(prefix)
                   or f"/{prefix}" in normalized
                   for prefix in self.SCOPES)


def _code_bearing_lines(source: str) -> List[int]:
    """Line numbers that carry actual code tokens (not comments/blank)."""
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return []
    seen: set[int] = set()
    skip = {tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
            tokenize.INDENT, tokenize.DEDENT, tokenize.ENCODING,
            tokenize.ENDMARKER}
    for token in tokens:
        if token.type in skip:
            continue
        seen.update(range(token.start[0], token.end[0] + 1))
    return sorted(seen)


def _comment_lines(source: str) -> Optional[List[Tuple[int, str]]]:
    """``(line, text)`` of every real COMMENT token, or ``None`` when
    the file does not tokenize (caller falls back to a line scan)."""
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return None
    return [(token.start[0], token.string) for token in tokens
            if token.type == tokenize.COMMENT]


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every ``# repro: allow-...`` comment with its target line.

    Only genuine comment tokens count: an ``allow-`` example inside a
    docstring is documentation, not a suppression (which matters now
    that an unused suppression is itself a finding, ``SUP002``).
    """
    code_lines = _code_bearing_lines(source)
    comments = _comment_lines(source)
    if comments is None:
        comments = [(number, text) for number, text
                    in enumerate(source.splitlines(), start=1)]
    suppressions: List[Suppression] = []
    for number, text in comments:
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        if number in code_lines:
            target = number
        else:
            following = [line for line in code_lines if line > number]
            target = following[0] if following else number
        suppressions.append(Suppression(
            line=number, token=match.group("token"),
            reason=match.group("reason"), target_line=target))
    return suppressions


def parse_module(path: str, source: str,
                 display_path: Optional[str] = None) -> ModuleContext:
    """Parse one file into a :class:`ModuleContext` (raises SyntaxError)."""
    tree = ast.parse(source, filename=path)
    return ModuleContext(
        path=display_path if display_path is not None else path,
        tree=tree,
        source_lines=source.splitlines(),
        suppressions=parse_suppressions(source))


def all_checkers() -> List[Checker]:
    """One fresh instance of every registered checker, in code order.

    ``LockDisciplineChecker`` (LCK001) is *not* registered any more:
    the interprocedural LCK002 subsumes its same-class syntactic rule
    and adds call-graph propagation; the class stays importable for
    tooling and tests.
    """
    from repro.analysis.api import ApiErrorChecker
    from repro.analysis.cfg import ConfigContractChecker
    from repro.analysis.det import DeterminismChecker
    from repro.analysis.dur import DurabilityChecker
    from repro.analysis.krn import KernelSurfaceChecker
    from repro.analysis.lck import (
        InterproceduralLockChecker,
        LockOrderChecker,
    )
    from repro.analysis.pkl import PickleSafetyChecker
    from repro.analysis.rpc import RpcProtocolChecker

    classes: List[Type[Checker]] = [
        ApiErrorChecker, ConfigContractChecker, DeterminismChecker,
        DurabilityChecker, InterproceduralLockChecker, KernelSurfaceChecker,
        LockOrderChecker, PickleSafetyChecker, RpcProtocolChecker,
    ]
    return [cls() for cls in sorted(classes, key=lambda cls: cls.CODE)]


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------

def call_name(node: ast.expr) -> Optional[str]:
    """Dotted name of a call target: ``os.replace`` -> ``"os.replace"``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def tail_name(node: ast.expr) -> Optional[str]:
    """Last attribute segment of a call target (``a.b.fsync`` -> ``fsync``)."""
    dotted = call_name(node)
    if dotted is None:
        return None
    return dotted.rsplit(".", 1)[-1]


def walk_functions(tree: ast.Module) -> Iterator[Tuple[ast.AST, List[str]]]:
    """Yield ``(function node, enclosing-class names)`` for every def."""

    def visit(node: ast.AST, stack: List[str]) -> Iterator[Tuple[ast.AST, List[str]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, list(stack)
                yield from visit(child, stack)
            elif isinstance(child, ast.ClassDef):
                stack.append(child.name)
                yield from visit(child, stack)
                stack.pop()
            else:
                yield from visit(child, stack)

    return visit(tree, [])
