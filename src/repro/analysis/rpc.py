"""RPC — FrameChannel op protocol between router and shard worker.

``ClusterIndex`` talks to shard workers by sending ``(op, payload)``
frames (``shard.call("state", {})``, ``shard.send("match", payload)``)
that ``ShardBackend.handle`` / ``_shard_worker`` dispatch with
``if op == "...":`` chains.  Nothing but convention keeps the two
sides in sync; this family turns the convention into a checked
contract over the project graph:

=======  ============================================================
RPC001   an op is sent with no matching handler branch, or a handler
         branch exists for an op nothing sends (dead protocol arm)
RPC002   a payload key written at a send site is never read inside
         the op's handler branch, or a key the handler requires
         (``payload["k"]``) is absent from every send site of that op
=======  ============================================================

Send sites are calls whose tail is ``call``/``send`` with a string-
constant op and a dict payload — either a literal or a local name
resolved to its last dict-literal assignment before the call.  Send
sites whose payload cannot be resolved statically disable RPC002 key
analysis for that op (never the op-coverage rule).  Suppress with
``# repro: allow-protocol -- <reason>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ProjectChecker
from repro.analysis.graph import (
    CallSite,
    FileSummary,
    FunctionSummary,
    ProjectGraph,
)


@dataclass(frozen=True)
class ProtocolSpec:
    """One (router, handler) protocol surface to check."""

    #: module holding both sides of the protocol
    module: str = "repro.serve.cluster"
    #: function/method names that dispatch on the op string
    handler_names: Tuple[str, ...] = ("handle", "_shard_worker")
    #: variable name the dispatch compares (``if op == "...":``)
    op_name: str = "op"
    #: variable name handlers read payload keys from
    payload_name: str = "payload"
    #: call tails that transmit ``(op, payload)`` frames
    send_tails: Tuple[str, ...] = ("call", "send")


@dataclass
class _SendSite:
    op: str
    line: int
    file: str
    #: payload keys, or ``None`` when not statically resolvable
    keys: Optional[List[str]]


def _resolve_payload_keys(function: FunctionSummary,
                          call: CallSite) -> Optional[List[str]]:
    """Payload keys of one send site, or ``None`` when opaque."""
    if call.arg1_dict_keys is not None:
        return call.arg1_dict_keys
    if call.arg1_name is not None:
        assigns = sorted(
            (line, keys) for line, name, keys in function.dict_assigns
            if name == call.arg1_name and line <= call.line)
        if assigns:
            # last dict-literal assignment before the send wins
            return assigns[-1][1]
    return None


class RpcProtocolChecker(ProjectChecker):
    """RPC001/RPC002 over the cluster frame protocol."""

    CODE = "RPC"
    SCOPES = ("repro/serve/",)

    def __init__(self, specs: Tuple[ProtocolSpec, ...] = (
            ProtocolSpec(),)) -> None:
        self.specs = specs

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for spec in self.specs:
            file = graph.module_named(spec.module)
            if file is None:
                continue
            yield from self._check_spec(spec, file)

    # -- one protocol surface ------------------------------------------

    def _check_spec(self, spec: ProtocolSpec,
                    file: FileSummary) -> Iterator[Finding]:
        handlers = [function for function in file.functions
                    if function.name in spec.handler_names]
        sends = self._send_sites(spec, file)
        handled: Dict[str, Tuple[FunctionSummary, int, int]] = {}
        for handler in handlers:
            for branch in handler.op_branches:
                if branch.name == spec.op_name \
                        and branch.op not in handled:
                    handled[branch.op] = (handler, branch.line,
                                          branch.end)
        sent_ops: Dict[str, List[_SendSite]] = {}
        for site in sends:
            sent_ops.setdefault(site.op, []).append(site)

        # RPC001: sent but unhandled / handled but never sent
        for op in sorted(sent_ops):
            if op not in handled:
                site = min(sent_ops[op], key=lambda s: s.line)
                yield Finding(
                    site.file, site.line, "RPC001",
                    f"op '{op}' is sent but no "
                    f"{'/'.join(spec.handler_names)} branch matches it; "
                    "the shard worker will reject the frame")
        for op in sorted(handled):
            if op not in sent_ops:
                _handler, line, _end = handled[op]
                yield Finding(
                    file.path, line, "RPC001",
                    f"handler branch for op '{op}' is dead: no "
                    "router send site uses it")

        # RPC002: key drift, both directions, per op
        for op in sorted(sent_ops):
            if op not in handled:
                continue
            handler, start, end = handled[op]
            reads = [read for read in handler.key_reads
                     if read.name == spec.payload_name
                     and start <= read.line <= end]
            read_keys = {read.key for read in reads}
            required = {read.key for read in reads if read.required}
            sites = sent_ops[op]
            opaque = any(site.keys is None for site in sites)
            sent_keys: Set[str] = set()
            for site in sites:
                sent_keys.update(site.keys or [])
            for site in sorted(sites, key=lambda s: s.line):
                for key in site.keys or []:
                    if key not in read_keys:
                        yield Finding(
                            site.file, site.line, "RPC002",
                            f"payload key '{key}' sent with op '{op}' "
                            "is never read in its handler branch")
            if not opaque:
                for key in sorted(required - sent_keys):
                    read = next(read for read in reads
                                if read.key == key and read.required)
                    yield Finding(
                        file.path, read.line, "RPC002",
                        f"handler requires payload['{key}'] for op "
                        f"'{op}' but no send site provides it")

    def _send_sites(self, spec: ProtocolSpec,
                    file: FileSummary) -> List[_SendSite]:
        sites: List[_SendSite] = []
        for function in file.functions:
            if function.name in spec.handler_names:
                continue
            for call in function.calls:
                if call.tail not in spec.send_tails \
                        or call.str_arg0 is None or call.argc < 1:
                    continue
                sites.append(_SendSite(
                    op=call.str_arg0, line=call.line, file=file.path,
                    keys=_resolve_payload_keys(function, call)))
        return sites
