"""Prebuilt match workflows for the paper's strategies (§4).

Each factory returns a ready-to-run :class:`MatchWorkflow` over the
standard bibliographic source names, so applications (and the matcher
library, per §2.2's "selected workflows can be added to the matcher
library") can reuse the evaluation's strategies without reassembling
them from operators:

* :func:`publication_title_workflow` — §4.1.1 independent matchers +
  merge (Table 2);
* :func:`venue_neighborhood_workflow` — §4.2 1:n neighborhood matching
  (Table 4);
* :func:`author_neighborhood_workflow` — §4.2 n:m neighborhood + merge
  (Table 6);
* :func:`duplicate_author_workflow` — §4.3 self-mapping dedup
  (Table 9).

The workflows resolve association mappings by their SMM names
(``"<Source>.VenuePub"`` etc., as registered by
:func:`repro.datagen.build_dataset`); pass a context whose SMM carries
those mappings.
"""

from __future__ import annotations

from typing import Optional

from repro.blocking import TokenBlocking
from repro.core.mapping import Mapping
from repro.core.matchers.attribute import AttributeMatcher
from repro.core.operators.selection import (
    BestNSelection,
    NotIdentity,
    ThresholdSelection,
)
from repro.core.workflow import MatchWorkflow


def publication_title_workflow(left: str = "DBLP", right: str = "ACM",
                               *, threshold: float = 0.8) -> MatchWorkflow:
    """Title + author + year matchers merged with Avg-0 (§4.1.1)."""
    domain = f"{left}.Publication"
    range_ = f"{right}.Publication"
    workflow = MatchWorkflow(f"pub-title-{left}-{right}")
    workflow.add_matcher(
        "title_map",
        AttributeMatcher("title", similarity="trigram", threshold=0.4,
                         blocking=TokenBlocking()),
        domain, range_)
    workflow.add_matcher(
        "authors_map",
        AttributeMatcher("authors", similarity="trigram", threshold=0.4,
                         blocking=TokenBlocking()),
        domain, range_)
    workflow.add_matcher(
        "year_map",
        AttributeMatcher("year", similarity="exact", threshold=1.0,
                         blocking=TokenBlocking(min_token_length=1,
                                                max_df=1.0)),
        domain, range_)
    workflow.add_merge(
        "pub_same", ["title_map", "authors_map", "year_map"],
        function="avg0",
        selections=[ThresholdSelection(threshold)])
    return workflow


def venue_neighborhood_workflow(left: str = "DBLP", right: str = "ACM",
                                *, publication_same: str = "pub_same",
                                selection: Optional[object] = None
                                ) -> MatchWorkflow:
    """Venue same-mapping via the 1:n neighborhood matcher (§4.2).

    Expects a publication same-mapping named ``publication_same`` in
    the context (e.g. produced by :func:`publication_title_workflow`)
    plus the ``<left>.VenuePub`` / ``<right>.PubVenue`` associations in
    the SMM.
    """
    workflow = MatchWorkflow(f"venue-nh-{left}-{right}")
    workflow.add_compose(
        "venue_temp", f"{left}.VenuePub", publication_same,
        f="min", g="avg")
    workflow.add_compose(
        "venue_raw", "venue_temp", f"{right}.PubVenue",
        f="min", g="relative")
    workflow.add_select(
        "venue_same", "venue_raw",
        selection if selection is not None else BestNSelection(1))
    return workflow


def author_neighborhood_workflow(left: str = "DBLP", right: str = "ACM",
                                 *, publication_same: str = "pub_same",
                                 name_threshold: float = 0.8
                                 ) -> MatchWorkflow:
    """Author same-mapping: name matcher + n:m neighborhood (§4.2)."""
    workflow = MatchWorkflow(f"author-nh-{left}-{right}")
    workflow.add_matcher(
        "author_names",
        AttributeMatcher("name", similarity="trigram",
                         threshold=name_threshold,
                         blocking=TokenBlocking(max_df=0.25)),
        f"{left}.Author", f"{right}.Author")
    workflow.add_compose(
        "author_temp", f"{left}.AuthorPub", publication_same,
        f="min", g="avg")
    workflow.add_compose(
        "author_nh", "author_temp", f"{right}.PubAuthor",
        f="min", g="relative")
    workflow.add_merge(
        "author_same", ["author_names", "author_nh"], function="max",
        selections=[BestNSelection(1, side="both")])
    return workflow


def duplicate_author_workflow(source: str = "DBLP", *,
                              name_threshold: float = 0.5
                              ) -> MatchWorkflow:
    """§4.3's duplicate-author detection as a workflow (Table 9).

    Requires the ``<source>.CoAuthor`` association and an identity
    mapping named ``<source>.AuthorIdentity`` in the context (use
    :func:`prepare_identity` to add it).
    """
    workflow = MatchWorkflow(f"dedup-authors-{source}")
    workflow.add_compose(
        "co_temp", f"{source}.CoAuthor", f"{source}.AuthorIdentity",
        f="min", g="avg")
    workflow.add_compose(
        "co_sim", "co_temp", f"{source}.CoAuthor",
        f="min", g="relative")
    workflow.add_matcher(
        "name_sim",
        AttributeMatcher("name", similarity="trigram",
                         threshold=name_threshold,
                         blocking=TokenBlocking(max_df=0.3)),
        f"{source}.Author", f"{source}.Author")
    workflow.add_merge(
        "dup_candidates", ["co_sim", "name_sim"], function="avg0",
        selections=[NotIdentity()])
    return workflow


def prepare_identity(context, source: str = "DBLP") -> None:
    """Register ``<source>.AuthorIdentity`` in ``context``."""
    authors = context.resolve_source(f"{source}.Author")
    context.add_mapping(
        f"{source}.AuthorIdentity",
        Mapping.identity(authors.name, authors.ids()),
    )
