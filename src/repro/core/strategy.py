"""Match-strategy selection (paper §7 outlook).

"In addition we plan to develop approaches for automatically tuning
match workflows, in particular to select existing mappings, matchers
and combiners and their parameters."  The :class:`StrategySelector`
does the selection half: candidate strategies (each a thunk producing
a same-mapping) are evaluated on a *training restriction* of the gold
standard — a sampled subset of domain objects, standing in for the
manually labelled training data a deployment would have — and ranked
by F-measure.  The winner can then be executed on the full task.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.mapping import Mapping

StrategyThunk = Callable[[], Mapping]


@dataclass
class StrategyOutcome:
    """Evaluation record of one candidate strategy."""

    name: str
    precision: float
    recall: float
    f1: float
    correspondences: int
    mapping: Optional[Mapping] = field(default=None, repr=False)


class StrategySelector:
    """Rank candidate match strategies against training gold."""

    def __init__(self, gold: Mapping, *,
                 training_fraction: float = 0.3,
                 seed: int = 0,
                 keep_mappings: bool = False) -> None:
        if not 0.0 < training_fraction <= 1.0:
            raise ValueError("training_fraction must be in (0, 1]")
        self.gold = gold
        self.training_fraction = training_fraction
        self.seed = seed
        self.keep_mappings = keep_mappings
        self._strategies: Dict[str, StrategyThunk] = {}
        self._training_domain: Optional[set] = None

    def register(self, name: str, thunk: StrategyThunk) -> None:
        """Register a candidate strategy under ``name``."""
        if not name:
            raise ValueError("strategy name must be non-empty")
        if name in self._strategies:
            raise ValueError(f"strategy {name!r} already registered")
        self._strategies[name] = thunk

    def training_domain(self) -> set:
        """The sampled domain-object ids used for scoring."""
        if self._training_domain is None:
            rng = random.Random(self.seed)
            domain_ids = sorted(self.gold.domain_ids())
            sample_size = max(1, int(len(domain_ids)
                                     * self.training_fraction))
            self._training_domain = set(rng.sample(domain_ids, sample_size))
        return self._training_domain

    def _score(self, name: str, mapping: Mapping) -> StrategyOutcome:
        training = self.training_domain()
        predicted = {pair for pair in mapping.pairs() if pair[0] in training}
        gold_pairs = {pair for pair in self.gold.pairs()
                      if pair[0] in training}
        if predicted:
            true_positives = len(predicted & gold_pairs)
            precision = true_positives / len(predicted)
            recall = (true_positives / len(gold_pairs)) if gold_pairs else 0.0
        else:
            precision = recall = 0.0
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
        return StrategyOutcome(
            name=name, precision=precision, recall=recall, f1=f1,
            correspondences=len(mapping),
            mapping=mapping if self.keep_mappings else None,
        )

    def evaluate(self) -> List[StrategyOutcome]:
        """Run every strategy once; return outcomes ranked by F."""
        if not self._strategies:
            raise ValueError("no strategies registered")
        outcomes = [
            self._score(name, thunk())
            for name, thunk in self._strategies.items()
        ]
        outcomes.sort(key=lambda outcome: (-outcome.f1, outcome.name))
        return outcomes

    def select(self) -> StrategyOutcome:
        """Return the best outcome (ties broken by name)."""
        return self.evaluate()[0]
