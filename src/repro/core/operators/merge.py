"""The n-ary merge operator (paper §3.1, Figure 4).

Merge unifies the correspondences of mappings between the same pair of
logical sources.  The combination function decides the output
similarity per (domain, range) pair; ``PreferMap`` keeps every
correspondence of a trusted mapping and lets the others contribute
only for domain objects the preferred mapping does not cover — "the
non-preferred mappings should only contribute non-conflicting matches
for otherwise uncovered objects (thus improving recall) but not reduce
the precision for the correspondences of the preferred mapping".
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.mapping import Mapping, MappingKind
from repro.core.operators.functions import CombinationFunction, get_combination


def _check_compatible(mappings: Sequence[Mapping]) -> None:
    first = mappings[0]
    for other in mappings[1:]:
        if other.domain != first.domain or other.range != first.range:
            raise ValueError(
                "merge requires mappings between the same sources; got "
                f"{first.domain!r}->{first.range!r} and "
                f"{other.domain!r}->{other.range!r}"
            )


def _merge_prefer(mappings: Sequence[Mapping], preferred_index: int,
                  name: Optional[str]) -> Mapping:
    if not 0 <= preferred_index < len(mappings):
        raise ValueError(
            f"prefer index {preferred_index} out of range for "
            f"{len(mappings)} input mappings"
        )
    preferred = mappings[preferred_index]
    result = Mapping(preferred.domain, preferred.range,
                     kind=MappingKind.SAME, name=name)
    for domain_id, range_id, similarity in preferred:
        result.add(domain_id, range_id, similarity)
    covered = preferred.domain_ids()
    for index, mapping in enumerate(mappings):
        if index == preferred_index:
            continue
        for domain_id, row in mapping.by_domain.items():
            if domain_id in covered:
                continue
            for range_id, similarity in row.items():
                # "max" conflict policy merges agreeing non-preferred inputs.
                result.add(domain_id, range_id, similarity, on_conflict="max")
    return result


def merge(mappings: Sequence[Mapping],
          function: Union[str, CombinationFunction] = "avg",
          *,
          weights: Optional[Sequence[float]] = None,
          prefer: Optional[Union[int, Mapping]] = None,
          name: Optional[str] = None) -> Mapping:
    """Merge ``mappings`` into one same-mapping.

    Parameters
    ----------
    mappings:
        Two or more mappings between the same domain and range LDS
        (a single mapping is returned as a copy for convenience).
    function:
        Combination function: ``"avg"``, ``"min"``, ``"max"``, their
        ``"-0"`` variants, ``"weighted"`` (with ``weights``), a
        :class:`CombinationFunction` instance, or ``"prefer"`` together
        with the ``prefer`` argument.
    prefer:
        For PreferMap semantics: the index of the preferred mapping or
        the mapping object itself (must be one of ``mappings``).
    name:
        Optional name for the result mapping.

    Returns
    -------
    Mapping
        The merged same-mapping.  Correspondences whose combined
        similarity resolves to ``None`` (e.g. Min-0 on a pair missing
        from one input) are excluded.
    """
    mappings = list(mappings)
    if not mappings:
        raise ValueError("merge requires at least one input mapping")
    _check_compatible(mappings)
    if len(mappings) == 1 and prefer is None:
        return mappings[0].copy(name=name)

    wants_prefer = prefer is not None or (
        isinstance(function, str) and function.strip().lower().startswith("prefer")
    )
    if wants_prefer:
        if isinstance(prefer, Mapping):
            try:
                preferred_index = next(
                    index for index, mapping in enumerate(mappings)
                    if mapping is prefer
                )
            except StopIteration:
                raise ValueError(
                    "preferred mapping is not among the inputs") from None
        elif isinstance(prefer, int):
            preferred_index = prefer
        elif prefer is None:
            # allow "prefer0" / "prefermap1" style names
            digits = "".join(
                ch for ch in str(function).strip().lower() if ch.isdigit()
            )
            preferred_index = int(digits) if digits else 0
        else:
            raise TypeError(f"cannot interpret prefer={prefer!r}")
        return _merge_prefer(mappings, preferred_index, name)

    combiner = get_combination(function, weights=weights)

    # Union of all pairs, then combine per pair with one slot per input.
    result = Mapping(mappings[0].domain, mappings[0].range,
                     kind=MappingKind.SAME, name=name)
    all_pairs = set()
    for mapping in mappings:
        for domain_id, row in mapping.by_domain.items():
            for range_id in row:
                all_pairs.add((domain_id, range_id))
    for domain_id, range_id in all_pairs:
        values = [mapping.get(domain_id, range_id) for mapping in mappings]
        combined = combiner.combine(values)
        if combined is not None and combined > 0.0:
            result.add(domain_id, range_id, combined)
    return result
