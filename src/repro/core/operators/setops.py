"""Set-style mapping operations built on merge/compose.

Union, intersection and difference of same-mappings, symmetrization
and transitive closure of self-mappings (duplicate clusters), and the
hub composition helper of Figure 8 ("all data sources connected with
the hub can efficiently be matched with each other").
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.mapping import Mapping, MappingKind
from repro.core.operators.compose import compose
from repro.core.operators.merge import merge


def mapping_union(mappings: Sequence[Mapping], name: Optional[str] = None) -> Mapping:
    """Union of correspondences; agreeing pairs keep the max similarity."""
    return merge(mappings, "max", name=name)


def intersection(mappings: Sequence[Mapping], name: Optional[str] = None) -> Mapping:
    """Pairs present in *all* inputs, at their minimum similarity (Min-0)."""
    return merge(mappings, "min0", name=name)


def difference(left: Mapping, right: Mapping, name: Optional[str] = None) -> Mapping:
    """Correspondences of ``left`` whose pair is absent from ``right``."""
    if left.domain != right.domain or left.range != right.range:
        raise ValueError("difference requires mappings between the same sources")
    result = Mapping(left.domain, left.range, kind=left.kind, name=name)
    for domain_id, range_id, similarity in left:
        if right.get(domain_id, range_id) is None:
            result.add(domain_id, range_id, similarity)
    return result


def symmetrize(mapping: Mapping, name: Optional[str] = None) -> Mapping:
    """Make a self-mapping symmetric: add (b, a, s) for every (a, b, s).

    Duplicate relationships are inherently symmetric but matchers often
    emit only one direction; agreeing opposite directions keep the
    maximum similarity.
    """
    if not mapping.is_self_mapping():
        raise ValueError("symmetrize only applies to self-mappings")
    result = mapping.copy(name=name)
    for domain_id, range_id, similarity in mapping:
        result.add(range_id, domain_id, similarity, on_conflict="max")
    return result


def transitive_closure(mapping: Mapping, name: Optional[str] = None) -> Mapping:
    """Transitive closure of a self-mapping via union-find.

    Same-mappings "conceptually represent 1:1 mappings [so] their
    composition should also result into 1:1 mappings, i.e., the
    composition of same-mappings should be transitive" (§4.1.2).  The
    closure materializes that semantics for duplicate clusters: every
    pair within a connected component becomes a correspondence carrying
    the *minimum* similarity along some witness path is not tracked —
    we conservatively use the smallest similarity seen in the cluster.
    """
    if not mapping.is_self_mapping():
        raise ValueError("transitive_closure only applies to self-mappings")

    parent: dict[str, str] = {}

    def find(node: str) -> str:
        root = node
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[node] != root:  # path compression
            parent[node], node = root, parent[node]
        return root

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    cluster_min: dict[str, float] = {}
    for domain_id, range_id, _similarity in mapping:
        union(domain_id, range_id)
    for domain_id, _range_id, similarity in mapping:
        root = find(domain_id)
        cluster_min[root] = min(cluster_min.get(root, 1.0), similarity)

    members: dict[str, list[str]] = {}
    for node in parent:
        members.setdefault(find(node), []).append(node)

    result = Mapping(mapping.domain, mapping.range,
                     kind=MappingKind.SAME, name=name)
    for root, nodes in members.items():
        similarity = cluster_min.get(root, 1.0)
        for i, node_a in enumerate(nodes):
            for node_b in nodes[i + 1:]:
                result.add(node_a, node_b, similarity)
                result.add(node_b, node_a, similarity)
    return result


def hub_compose(hub_mappings: Iterable[Mapping], source: str, target: str,
                f: str = "min", g: str = "max",
                name: Optional[str] = None) -> Mapping:
    """Match ``source`` to ``target`` through a hub (Figure 8).

    ``hub_mappings`` are same-mappings between the hub source and the
    peripheral sources (in either orientation).  The function locates
    the two mappings that touch ``source`` and ``target``, orients them
    as ``source -> hub`` and ``hub -> target`` and composes.
    """
    to_hub: Optional[Mapping] = None
    from_hub: Optional[Mapping] = None
    for mapping in hub_mappings:
        if mapping.domain == source:
            to_hub = mapping
        elif mapping.range == source:
            to_hub = mapping.inverse()
        if mapping.range == target:
            from_hub = mapping
        elif mapping.domain == target:
            from_hub = mapping.inverse()
    if to_hub is None or from_hub is None:
        raise ValueError(
            f"hub mappings do not connect {source!r} and {target!r}"
        )
    if to_hub.range != from_hub.domain:
        raise ValueError(
            "hub mappings disagree on the hub source: "
            f"{to_hub.range!r} vs {from_hub.domain!r}"
        )
    return compose(to_hub, from_hub, f, g, name=name)
