"""The compose operator (paper §3.2, Figures 5, 6).

``compose(map1: A->C, map2: C->B)`` relates A and B through the shared
intermediate source C.  Per compose path ``a -> c_i -> b`` the two path
similarities are combined with ``f`` (same alternatives as merge); the
per-path values are then aggregated over all paths with ``g``:

* ``avg`` / ``min`` / ``max`` over the path similarities;
* ``relative_left``  = s(a,b) / n(a);
* ``relative_right`` = s(a,b) / n(b);
* ``relative``       = 2*s(a,b) / (n(a) + n(b)),

where ``s(a,b)`` is the *sum* of path similarities, ``n(a)`` the number
of correspondences of ``a`` in map1 and ``n(b)`` the number of
correspondences onto ``b`` in map2 (Figure 5).  The Relative family
"consider[s] the number of compose paths to prefer correspondences
that are reached via multiple paths" — the key ingredient of the
neighborhood matcher.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro.core.mapping import Mapping, MappingKind
from repro.core.operators.functions import CombinationFunction, get_combination

#: aggregation functions over compose-path similarities
_PATH_AGGREGATES = (
    "avg", "average", "min", "max", "sum",
    "relative", "relativeleft", "relative_left", "relativeright",
    "relative_right",
)


def _normalize_aggregate(g: str) -> str:
    key = g.strip().lower().replace("-", "").replace("_", "")
    if key in ("avg", "average"):
        return "avg"
    if key in ("min", "max", "sum", "relative"):
        return key
    if key == "relativeleft":
        return "relative_left"
    if key == "relativeright":
        return "relative_right"
    raise KeyError(
        f"unknown path aggregation {g!r}; known: {sorted(set(_PATH_AGGREGATES))}"
    )


class _PathStats:
    """Running aggregates over the compose paths of one output pair."""

    __slots__ = ("total", "minimum", "maximum", "count")

    def __init__(self) -> None:
        self.total = 0.0
        self.minimum = 1.0
        self.maximum = 0.0
        self.count = 0

    def update(self, value: float) -> None:
        self.total += value
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value


def compose(map1: Mapping, map2: Mapping,
            f: Union[str, CombinationFunction] = "min",
            g: str = "avg",
            *,
            kind: Optional[MappingKind] = None,
            name: Optional[str] = None) -> Mapping:
    """Compose two mappings sharing an intermediate logical source.

    Parameters
    ----------
    map1, map2:
        Mappings ``A -> C`` and ``C -> B``; ``map1.range`` must equal
        ``map2.domain``.
    f:
        Per-path combination of the two path similarities (``min`` by
        default, as used by the neighborhood matcher).
    g:
        Path aggregation: ``avg``/``min``/``max``/``sum`` or the
        ``relative`` family.
    kind:
        Kind of the result; defaults to SAME when both inputs are
        same-mappings, otherwise ASSOCIATION.
    """
    if map1.range != map2.domain:
        raise ValueError(
            "compose requires map1.range == map2.domain; got "
            f"{map1.range!r} vs {map2.domain!r}"
        )
    combiner = get_combination(f)
    aggregate = _normalize_aggregate(g)
    if kind is None:
        both_same = (map1.kind == MappingKind.SAME and map2.kind == MappingKind.SAME)
        kind = MappingKind.SAME if both_same else MappingKind.ASSOCIATION

    stats: Dict[Tuple[str, str], _PathStats] = {}
    map2_by_domain = map2.by_domain
    for a, row1 in map1.by_domain.items():
        for c, sim1 in row1.items():
            row2 = map2_by_domain.get(c)
            if not row2:
                continue
            for b, sim2 in row2.items():
                path_sim = combiner.combine((sim1, sim2))
                if path_sim is None:
                    continue
                key = (a, b)
                entry = stats.get(key)
                if entry is None:
                    entry = stats[key] = _PathStats()
                entry.update(path_sim)

    result = Mapping(map1.domain, map2.range, kind=kind, name=name)
    for (a, b), entry in stats.items():
        if aggregate == "avg":
            similarity = entry.total / entry.count
        elif aggregate == "min":
            similarity = entry.minimum
        elif aggregate == "max":
            similarity = entry.maximum
        elif aggregate == "sum":
            similarity = min(1.0, entry.total)
        elif aggregate == "relative_left":
            similarity = entry.total / map1.out_degree(a)
        elif aggregate == "relative_right":
            similarity = entry.total / map2.in_degree(b)
        else:  # relative
            denominator = map1.out_degree(a) + map2.in_degree(b)
            similarity = 2.0 * entry.total / denominator
        # Similarities never exceed 1: sums are bounded by the degree
        # counts, but clamp defensively against float drift.
        if similarity > 1.0:
            similarity = 1.0
        if similarity > 0.0:
            result.add(a, b, similarity)
    return result
