"""Similarity combination functions shared by merge and compose.

§3.1 lists Avg / Min / Max / Weighted / PreferMap_i for the merge
operator, with a per-function choice of how to treat correspondences
missing from some input mappings: the default "ignores such missing
correspondences and only considers the available similarity values"
(useful for incomplete mappings), while the ``-0`` variants "assume a
similarity value of 0 for a missing correspondence in order to improve
precision" — Min-0 is exactly mapping intersection.

The compose operator re-uses the same functions to combine the two
path similarities ``s_i1`` and ``s_i2`` (§3.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence


class CombinationFunction(ABC):
    """Combines per-input similarity values into one similarity.

    ``values`` has one entry per input mapping; ``None`` marks a
    missing correspondence.  Returning ``None`` means the combined
    correspondence is dropped from the result (e.g. Min-0 for a pair
    absent from one input).
    """

    #: registry name
    name: str = "abstract"
    #: whether missing correspondences count as similarity 0
    missing_as_zero: bool = False

    @abstractmethod
    def combine(self, values: Sequence[Optional[float]]) -> Optional[float]:
        """Combine one value (or ``None``) per input mapping."""

    def _effective(self, values: Sequence[Optional[float]]) -> Optional[list[float]]:
        """Resolve missing values per the function's policy.

        Returns the list of values to aggregate, or ``None`` when the
        correspondence should be dropped (no values at all).
        """
        if self.missing_as_zero:
            return [0.0 if value is None else value for value in values]
        present = [value for value in values if value is not None]
        return present if present else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(missing_as_zero={self.missing_as_zero})"


class AvgFunction(CombinationFunction):
    """Average of the similarities (Avg / Avg-0)."""

    def __init__(self, missing_as_zero: bool = False) -> None:
        self.missing_as_zero = missing_as_zero
        self.name = "avg0" if missing_as_zero else "avg"

    def combine(self, values: Sequence[Optional[float]]) -> Optional[float]:
        effective = self._effective(values)
        if effective is None:
            return None
        return sum(effective) / len(effective)


class MinFunction(CombinationFunction):
    """Minimum similarity (Min / Min-0 = intersection semantics).

    With ``missing_as_zero`` a missing correspondence forces the
    minimum to 0; such zero correspondences are dropped, which
    "filter[s] away all correspondences which are not present in all
    input mappings" (§3.1, Fig. 4).
    """

    def __init__(self, missing_as_zero: bool = False) -> None:
        self.missing_as_zero = missing_as_zero
        self.name = "min0" if missing_as_zero else "min"

    def combine(self, values: Sequence[Optional[float]]) -> Optional[float]:
        if self.missing_as_zero and any(value is None for value in values):
            return None
        effective = self._effective(values)
        if effective is None:
            return None
        return min(effective)


class MaxFunction(CombinationFunction):
    """Maximum similarity; missing values can never win, so the
    missing-as-zero distinction is irrelevant here (union semantics)."""

    name = "max"

    def combine(self, values: Sequence[Optional[float]]) -> Optional[float]:
        present = [value for value in values if value is not None]
        return max(present) if present else None


class WeightedFunction(CombinationFunction):
    """Weighted average with one weight per input mapping.

    With the default missing-handling, weights of missing inputs are
    excluded and the remaining weights renormalized; with
    ``missing_as_zero`` missing inputs contribute 0 at full weight.
    """

    def __init__(self, weights: Sequence[float], missing_as_zero: bool = False) -> None:
        if not weights:
            raise ValueError("weights must be non-empty")
        if any(weight < 0 for weight in weights):
            raise ValueError("weights must be non-negative")
        if sum(weights) <= 0:
            raise ValueError("at least one weight must be positive")
        self.weights = [float(weight) for weight in weights]
        self.missing_as_zero = missing_as_zero
        self.name = "weighted0" if missing_as_zero else "weighted"

    def combine(self, values: Sequence[Optional[float]]) -> Optional[float]:
        if len(values) != len(self.weights):
            raise ValueError(
                f"expected {len(self.weights)} values, got {len(values)}"
            )
        if self.missing_as_zero:
            total = sum(
                weight * (0.0 if value is None else value)
                for weight, value in zip(self.weights, values)
            )
            return total / sum(self.weights)
        pairs = [
            (weight, value)
            for weight, value in zip(self.weights, values)
            if value is not None
        ]
        if not pairs:
            return None
        weight_sum = sum(weight for weight, _ in pairs)
        if weight_sum <= 0:
            return None
        return sum(weight * value for weight, value in pairs) / weight_sum


_ALIASES = {
    "avg": ("avg", False),
    "average": ("avg", False),
    "avg0": ("avg", True),
    "avg-0": ("avg", True),
    "min": ("min", False),
    "minimum": ("min", False),
    "min0": ("min", True),
    "min-0": ("min", True),
    "intersect": ("min", True),
    "max": ("max", False),
    "maximum": ("max", False),
    "union": ("max", False),
}


def get_combination(spec: object, *,
                    weights: Optional[Sequence[float]] = None) -> CombinationFunction:
    """Resolve a combination-function specification.

    Accepts an existing :class:`CombinationFunction` (returned as-is),
    or a case-insensitive name: ``avg``/``average``, ``min``, ``max``
    and their ``-0`` variants, or ``weighted`` (requires ``weights``).
    """
    if isinstance(spec, CombinationFunction):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"cannot interpret combination function {spec!r}")
    key = spec.strip().lower()
    if key in ("weighted", "weighted0", "weighted-0"):
        if weights is None:
            raise ValueError("weighted combination requires weights")
        return WeightedFunction(weights, missing_as_zero=key != "weighted")
    resolved = _ALIASES.get(key)
    if resolved is None:
        known = sorted(set(_ALIASES) | {"weighted"})
        raise KeyError(f"unknown combination function {spec!r}; known: {known}")
    base, missing_as_zero = resolved
    if base == "avg":
        return AvgFunction(missing_as_zero)
    if base == "min":
        return MinFunction(missing_as_zero)
    return MaxFunction()
