"""MOMA's mapping operators (paper §3).

Two combination operators — n-ary :func:`merge` and binary
:func:`compose` — plus the selection strategies of §3.3 and a handful
of set-style helpers (union, intersection, difference, transitive
closure) that the match strategies of §4 are built from.
"""

from repro.core.operators.functions import (
    AvgFunction,
    CombinationFunction,
    MaxFunction,
    MinFunction,
    WeightedFunction,
    get_combination,
)
from repro.core.operators.compose import compose
from repro.core.operators.merge import merge
from repro.core.operators.selection import (
    Best1DeltaSelection,
    BestNSelection,
    CompositeSelection,
    ConstraintSelection,
    MaxAttributeDifference,
    NotIdentity,
    Selection,
    ThresholdSelection,
    select,
)
from repro.core.operators.setops import (
    difference,
    hub_compose,
    intersection,
    mapping_union,
    symmetrize,
    transitive_closure,
)

__all__ = [
    "AvgFunction",
    "Best1DeltaSelection",
    "BestNSelection",
    "CombinationFunction",
    "CompositeSelection",
    "ConstraintSelection",
    "MaxAttributeDifference",
    "MaxFunction",
    "MinFunction",
    "NotIdentity",
    "Selection",
    "ThresholdSelection",
    "WeightedFunction",
    "compose",
    "difference",
    "get_combination",
    "hub_compose",
    "intersection",
    "mapping_union",
    "merge",
    "select",
    "symmetrize",
    "transitive_closure",
]
