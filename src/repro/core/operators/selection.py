"""Selection of correspondences (paper §3.3).

Selection is the second half of a mapping combiner: it "eliminate[s]
less likely correspondences from a same-mapping".  MOMA supports
Threshold, Best-n, Best-1+Delta and domain-specific object value
constraints; selections compose, so a combiner can e.g. threshold and
then enforce a year constraint.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence

from repro.core.mapping import Mapping
from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource


class Selection(ABC):
    """A filter from mapping to mapping."""

    @abstractmethod
    def apply(self, mapping: Mapping) -> Mapping:
        """Return a new mapping containing the selected correspondences."""

    def __call__(self, mapping: Mapping) -> Mapping:
        return self.apply(mapping)


class ThresholdSelection(Selection):
    """Keep correspondences at or above a similarity threshold.

    ``strict=True`` switches to a strictly-greater comparison (the
    paper says "above a given similarity value"; inclusive is the
    common reading and our default, e.g. the 80 % threshold of §5.2).
    """

    def __init__(self, threshold: float, *, strict: bool = False) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold!r}")
        self.threshold = threshold
        self.strict = strict

    def apply(self, mapping: Mapping) -> Mapping:
        if self.strict:
            return mapping.filter(lambda c: c.similarity > self.threshold)
        return mapping.filter(lambda c: c.similarity >= self.threshold)

    def __repr__(self) -> str:
        op = ">" if self.strict else ">="
        return f"ThresholdSelection(sim {op} {self.threshold})"


class BestNSelection(Selection):
    """Keep the n most similar correspondences per instance.

    ``side`` selects the grouping: ``"domain"`` keeps the top-n per
    domain instance, ``"range"`` per range instance, and ``"both"``
    keeps a correspondence only if it survives both groupings (the
    strictest reading, useful for 1:1 same-mappings).  Ties at the
    cut-off similarity are all kept, so Best-1 never drops one of two
    equally good candidates arbitrarily.
    """

    def __init__(self, n: int = 1, *, side: str = "domain") -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if side not in ("domain", "range", "both"):
            raise ValueError(f"side must be domain|range|both, got {side!r}")
        self.n = n
        self.side = side

    def _survivors(self, grouped: dict[str, dict[str, float]]) -> set[tuple[str, str]]:
        survivors: set[tuple[str, str]] = set()
        for key, row in grouped.items():
            if len(row) <= self.n:
                survivors.update((key, other) for other in row)
                continue
            ranked = sorted(row.values(), reverse=True)
            cutoff = ranked[self.n - 1]
            survivors.update(
                (key, other) for other, sim in row.items() if sim >= cutoff
            )
        return survivors

    def apply(self, mapping: Mapping) -> Mapping:
        domain_ok: Optional[set[tuple[str, str]]] = None
        range_ok: Optional[set[tuple[str, str]]] = None
        if self.side in ("domain", "both"):
            domain_ok = self._survivors(mapping.by_domain)
        if self.side in ("range", "both"):
            flipped = self._survivors(mapping.by_range)
            range_ok = {(domain, range_) for range_, domain in flipped}

        def keep(corr) -> bool:
            pair = (corr.domain, corr.range)
            if domain_ok is not None and pair not in domain_ok:
                return False
            if range_ok is not None and pair not in range_ok:
                return False
            return True

        return mapping.filter(keep)

    def __repr__(self) -> str:
        return f"BestNSelection(n={self.n}, side={self.side!r})"


class Best1DeltaSelection(Selection):
    """Best correspondence per instance plus near-ties within delta.

    "The correspondence with maximal similarity value is determined for
    all domain (range) instances plus all correspondences with a
    similarity differing at most by a tolerance value d", where d is
    absolute or relative (§3.3).
    """

    def __init__(self, delta: float, *, relative: bool = False,
                 side: str = "domain") -> None:
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta!r}")
        if relative and delta > 1:
            raise ValueError("relative delta must be within [0, 1]")
        if side not in ("domain", "range", "both"):
            raise ValueError(f"side must be domain|range|both, got {side!r}")
        self.delta = delta
        self.relative = relative
        self.side = side

    def _survivors(self, grouped: dict[str, dict[str, float]]) -> set[tuple[str, str]]:
        survivors: set[tuple[str, str]] = set()
        for key, row in grouped.items():
            best = max(row.values())
            cutoff = best * (1.0 - self.delta) if self.relative else best - self.delta
            survivors.update(
                (key, other) for other, sim in row.items() if sim >= cutoff
            )
        return survivors

    def apply(self, mapping: Mapping) -> Mapping:
        domain_ok: Optional[set[tuple[str, str]]] = None
        range_ok: Optional[set[tuple[str, str]]] = None
        if self.side in ("domain", "both"):
            domain_ok = self._survivors(mapping.by_domain)
        if self.side in ("range", "both"):
            flipped = self._survivors(mapping.by_range)
            range_ok = {(domain, range_) for range_, domain in flipped}

        def keep(corr) -> bool:
            pair = (corr.domain, corr.range)
            if domain_ok is not None and pair not in domain_ok:
                return False
            if range_ok is not None and pair not in range_ok:
                return False
            return True

        return mapping.filter(keep)

    def __repr__(self) -> str:
        kind = "relative" if self.relative else "absolute"
        return f"Best1DeltaSelection(delta={self.delta} {kind}, side={self.side!r})"


class ConstraintSelection(Selection):
    """Object value constraint over the matched instances (§3.3).

    The predicate receives the resolved domain and range
    :class:`ObjectInstance` objects.  Instances missing from the
    provided sources fail the constraint (``keep_unresolved=False``) or
    pass it (``True``), depending on whether the constraint is meant to
    be a hard filter or an opportunistic cleanup.
    """

    def __init__(self, domain_source: LogicalSource, range_source: LogicalSource,
                 predicate: Callable[[ObjectInstance, ObjectInstance], bool],
                 *, keep_unresolved: bool = False) -> None:
        self.domain_source = domain_source
        self.range_source = range_source
        self.predicate = predicate
        self.keep_unresolved = keep_unresolved

    def apply(self, mapping: Mapping) -> Mapping:
        def keep(corr) -> bool:
            instance_a = self.domain_source.get(corr.domain)
            instance_b = self.range_source.get(corr.range)
            if instance_a is None or instance_b is None:
                return self.keep_unresolved
            return bool(self.predicate(instance_a, instance_b))

        return mapping.filter(keep)


class MaxAttributeDifference(ConstraintSelection):
    """Numeric attribute difference constraint, e.g. |Δyear| <= 1.

    The paper's running example: "the publication year of matching
    publications should not differ by more than one year".  Pairs with
    unparsable or missing values are kept by default (absence of the
    optional year in Google Scholar must not destroy recall).
    """

    def __init__(self, domain_source: LogicalSource, range_source: LogicalSource,
                 attribute: str, max_difference: float,
                 *, keep_missing: bool = True) -> None:
        if max_difference < 0:
            raise ValueError("max_difference must be non-negative")
        self.attribute = attribute
        self.max_difference = max_difference
        self.keep_missing = keep_missing

        def predicate(instance_a: ObjectInstance, instance_b: ObjectInstance) -> bool:
            value_a = _as_float(instance_a.get(attribute))
            value_b = _as_float(instance_b.get(attribute))
            if value_a is None or value_b is None:
                return keep_missing
            return abs(value_a - value_b) <= max_difference

        super().__init__(domain_source, range_source, predicate,
                         keep_unresolved=keep_missing)


class NotIdentity(Selection):
    """Drop trivial self-correspondences (``[domain.id]<>[range.id]``)."""

    def apply(self, mapping: Mapping) -> Mapping:
        return mapping.without_identity()


class CompositeSelection(Selection):
    """Apply a sequence of selections left to right."""

    def __init__(self, selections: Sequence[Selection]) -> None:
        self.selections = list(selections)

    def apply(self, mapping: Mapping) -> Mapping:
        for selection in self.selections:
            mapping = selection.apply(mapping)
        return mapping


def _as_float(value: object) -> Optional[float]:
    try:
        return float(str(value).strip())
    except (TypeError, ValueError):
        return None


def select(mapping: Mapping, *selections: Selection) -> Mapping:
    """Apply ``selections`` to ``mapping`` in order (convenience)."""
    for selection in selections:
        mapping = selection.apply(mapping)
    return mapping
