"""Instance mappings — MOMA's central data structure.

A mapping between two logical data sources is "a set of
correspondences { (a, b, s) | a ∈ LDS_A, b ∈ LDS_B, s ∈ [0,1] }"
(Definition 1) stored as a three-column mapping table.  *Same-mappings*
connect instances of the same object type and represent semantic
equality; every other mapping is an *association mapping* (publications
of an author, venue of a publication, co-authors, ...).

The implementation keeps both domain- and range-indexed views so that
merge, compose and the Relative similarity functions (which need
out-/in-degrees) are all linear in the number of correspondences.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.correspondence import Correspondence, validate_similarity


class MappingKind(str, Enum):
    """Same-mappings assert equality; association mappings relate types."""

    SAME = "same"
    ASSOCIATION = "association"


class Mapping:
    """A fuzzy instance mapping between a domain LDS and a range LDS.

    ``domain`` and ``range`` are the *names* of the logical sources
    (e.g. ``"DBLP.Publication"``); keeping names instead of object
    references makes mappings trivially serializable into the
    repository's relational mapping tables.  A mapping whose domain and
    range coincide is a *self-mapping* (duplicate structure within one
    source, paper §2.1/§4.3).
    """

    __slots__ = ("domain", "range", "kind", "name", "_by_domain", "_by_range")

    def __init__(self, domain: str, range: str,
                 kind: MappingKind = MappingKind.SAME,
                 name: Optional[str] = None) -> None:
        if not domain or not range:
            raise ValueError("mapping requires non-empty domain and range names")
        self.domain = domain
        self.range = range
        self.kind = MappingKind(kind)
        self.name = name
        self._by_domain: Dict[str, Dict[str, float]] = {}
        self._by_range: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_correspondences(cls, domain: str, range: str,
                             correspondences: Iterable[Tuple[str, str, float]],
                             kind: MappingKind = MappingKind.SAME,
                             name: Optional[str] = None) -> "Mapping":
        """Build a mapping from ``(domain id, range id, sim)`` triples."""
        mapping = cls(domain, range, kind=kind, name=name)
        for domain_id, range_id, similarity in correspondences:
            mapping.add(domain_id, range_id, similarity)
        return mapping

    @classmethod
    def identity(cls, lds_name: str, ids: Iterable[str],
                 name: Optional[str] = None) -> "Mapping":
        """The identity same-mapping of a source: every id maps to itself.

        Used as the "trivial same-mapping" when running the
        neighborhood matcher within a single source (paper §4.3).
        """
        mapping = cls(lds_name, lds_name, kind=MappingKind.SAME, name=name)
        for id in ids:
            mapping.add(id, id, 1.0)
        return mapping

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, domain_id: str, range_id: str, similarity: float,
            *, on_conflict: str = "max") -> None:
        """Insert a correspondence.

        ``on_conflict`` resolves repeated (domain, range) pairs:
        ``"max"`` (default) keeps the larger similarity, ``"replace"``
        overwrites, ``"error"`` raises.
        """
        similarity = validate_similarity(similarity)
        row = self._by_domain.get(domain_id)
        if row is not None and range_id in row:
            if on_conflict == "max":
                if similarity <= row[range_id]:
                    return
            elif on_conflict == "error":
                raise ValueError(
                    f"duplicate correspondence ({domain_id!r}, {range_id!r})"
                )
            elif on_conflict != "replace":
                raise ValueError(f"unknown on_conflict policy {on_conflict!r}")
        self._by_domain.setdefault(domain_id, {})[range_id] = similarity
        self._by_range.setdefault(range_id, {})[domain_id] = similarity

    def remove(self, domain_id: str, range_id: str) -> bool:
        """Delete a correspondence; return whether it existed."""
        row = self._by_domain.get(domain_id)
        if row is None or range_id not in row:
            return False
        del row[range_id]
        if not row:
            del self._by_domain[domain_id]
        back = self._by_range[range_id]
        del back[domain_id]
        if not back:
            del self._by_range[range_id]
        return True

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def get(self, domain_id: str, range_id: str) -> Optional[float]:
        """Similarity of the pair, or ``None`` if absent."""
        row = self._by_domain.get(domain_id)
        if row is None:
            return None
        return row.get(range_id)

    def __contains__(self, pair: Tuple[str, str]) -> bool:
        domain_id, range_id = pair
        row = self._by_domain.get(domain_id)
        return row is not None and range_id in row

    def __len__(self) -> int:
        return sum(len(row) for row in self._by_domain.values())

    def __bool__(self) -> bool:
        return bool(self._by_domain)

    def __iter__(self) -> Iterator[Correspondence]:
        for domain_id, row in self._by_domain.items():
            for range_id, similarity in row.items():
                yield Correspondence(domain_id, range_id, similarity)

    def correspondences(self) -> List[Correspondence]:
        """Return all correspondences as a list (mapping-table rows)."""
        return list(self)

    def pairs(self) -> Set[Tuple[str, str]]:
        """The set of (domain id, range id) pairs, similarity dropped."""
        return {
            (domain_id, range_id)
            for domain_id, row in self._by_domain.items()
            for range_id in row
        }

    def range_ids_of(self, domain_id: str) -> Dict[str, float]:
        """Correspondences of one domain object as ``{range id: sim}``."""
        return dict(self._by_domain.get(domain_id, {}))

    def domain_ids_of(self, range_id: str) -> Dict[str, float]:
        """Correspondences of one range object as ``{domain id: sim}``."""
        return dict(self._by_range.get(range_id, {}))

    def domain_ids(self) -> Set[str]:
        """Domain objects covered by at least one correspondence."""
        return set(self._by_domain)

    def range_ids(self) -> Set[str]:
        """Range objects covered by at least one correspondence."""
        return set(self._by_range)

    def out_degree(self, domain_id: str) -> int:
        """n(a): number of correspondences of ``domain_id`` (Fig. 5)."""
        return len(self._by_domain.get(domain_id, {}))

    def in_degree(self, range_id: str) -> int:
        """n(b): number of correspondences onto ``range_id`` (Fig. 5)."""
        return len(self._by_range.get(range_id, {}))

    # internal read-only views used by the operators (no copies)
    @property
    def by_domain(self) -> Dict[str, Dict[str, float]]:
        return self._by_domain

    @property
    def by_range(self) -> Dict[str, Dict[str, float]]:
        return self._by_range

    # ------------------------------------------------------------------
    # derived mappings
    # ------------------------------------------------------------------

    def inverse(self, name: Optional[str] = None) -> "Mapping":
        """The inverse mapping (domain and range exchanged).

        The explicit mapping representation exists precisely so that
        "we can easily determine and use the inverse mapping" (§2.1).
        """
        inverted = Mapping(self.range, self.domain, kind=self.kind, name=name)
        for domain_id, row in self._by_domain.items():
            for range_id, similarity in row.items():
                inverted.add(range_id, domain_id, similarity)
        return inverted

    def copy(self, name: Optional[str] = None) -> "Mapping":
        """Deep copy (correspondence dictionaries are not shared)."""
        duplicate = Mapping(self.domain, self.range, kind=self.kind,
                            name=name if name is not None else self.name)
        for domain_id, row in self._by_domain.items():
            duplicate._by_domain[domain_id] = dict(row)
        for range_id, row in self._by_range.items():
            duplicate._by_range[range_id] = dict(row)
        return duplicate

    def filter(self, predicate: Callable[[Correspondence], bool],
               name: Optional[str] = None) -> "Mapping":
        """Keep only correspondences satisfying ``predicate``."""
        result = Mapping(self.domain, self.range, kind=self.kind, name=name)
        for correspondence in self:
            if predicate(correspondence):
                result.add(*correspondence)
        return result

    def restrict_domain(self, ids: Iterable[str]) -> "Mapping":
        """Keep only correspondences whose domain id is in ``ids``."""
        wanted = set(ids)
        result = Mapping(self.domain, self.range, kind=self.kind)
        for domain_id in wanted:
            for range_id, similarity in self._by_domain.get(domain_id, {}).items():
                result.add(domain_id, range_id, similarity)
        return result

    def restrict_range(self, ids: Iterable[str]) -> "Mapping":
        """Keep only correspondences whose range id is in ``ids``."""
        wanted = set(ids)
        result = Mapping(self.domain, self.range, kind=self.kind)
        for range_id in wanted:
            for domain_id, similarity in self._by_range.get(range_id, {}).items():
                result.add(domain_id, range_id, similarity)
        return result

    def scale(self, factor: float) -> "Mapping":
        """Multiply every similarity by ``factor`` (clamped to 1.0)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        result = Mapping(self.domain, self.range, kind=self.kind)
        for domain_id, range_id, similarity in self:
            result.add(domain_id, range_id, min(1.0, similarity * factor))
        return result

    def without_identity(self) -> "Mapping":
        """Drop trivial self-correspondences (domain id == range id).

        This is the paper's final dedup selection step
        ``select($Merged, "[domain.id]<>[range.id]")`` (§4.3).
        """
        return self.filter(lambda corr: corr.domain != corr.range)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def is_self_mapping(self) -> bool:
        """True when domain and range are the same logical source."""
        return self.domain == self.range

    def to_rows(self) -> List[Tuple[str, str, float]]:
        """Mapping-table rows, deterministically sorted."""
        return sorted(
            (corr.domain, corr.range, corr.similarity) for corr in self
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return (
            self.domain == other.domain
            and self.range == other.range
            and self.kind == other.kind
            and self._by_domain == other._by_domain
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Mapping{label}({self.domain!r} -> {self.range!r}, "
            f"{self.kind.value}, {len(self)} correspondences)"
        )
