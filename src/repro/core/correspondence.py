"""Correspondences: the rows of a mapping table.

"Each row represents a correspondence consisting of the ids of the
domain and range objects and the corresponding similarity value"
(paper §2.1, Definition 1).
"""

from __future__ import annotations

from typing import NamedTuple


class Correspondence(NamedTuple):
    """A single ``(domain id, range id, similarity)`` triple."""

    domain: str
    range: str
    similarity: float

    def swapped(self) -> "Correspondence":
        """Return the correspondence with domain and range exchanged."""
        return Correspondence(self.range, self.domain, self.similarity)

    def with_similarity(self, similarity: float) -> "Correspondence":
        """Return a copy carrying ``similarity`` instead."""
        return Correspondence(self.domain, self.range, similarity)


def validate_similarity(value: float) -> float:
    """Check that ``value`` is a finite similarity in ``[0, 1]``.

    Returns the value as ``float``; raises ``ValueError`` otherwise.
    Definition 1 restricts similarities to the unit interval and every
    operator in the algebra relies on it.
    """
    similarity = float(value)
    if not 0.0 <= similarity <= 1.0:
        raise ValueError(f"similarity must be within [0, 1], got {value!r}")
    return similarity
