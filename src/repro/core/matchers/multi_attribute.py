"""The multi-attribute matcher (paper §2.2).

"A multi-attribute matcher is also supported which directly evaluates
and combines the similarity for multiple attribute pairs, e.g., for
publication title and publication year."  Combination uses the same
function family as the merge operator, applied per candidate pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.core.mapping import Mapping, MappingKind
from repro.core.matchers.base import Matcher, MatcherError
from repro.core.operators.functions import CombinationFunction, get_combination
from repro.model.source import LogicalSource
from repro.sim.base import SimilarityFunction
from repro.sim.registry import get_similarity


@dataclass
class AttributePair:
    """One attribute comparison within a multi-attribute matcher."""

    attribute: str
    range_attribute: Optional[str] = None
    similarity: Union[str, SimilarityFunction] = "trigram"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.attribute:
            raise MatcherError("attribute name must be non-empty")
        if self.range_attribute is None:
            self.range_attribute = self.attribute
        if isinstance(self.similarity, str):
            self.similarity = get_similarity(self.similarity)
        if self.weight < 0:
            raise MatcherError("weight must be non-negative")


class MultiAttributeMatcher(Matcher):
    """Evaluate several attribute pairs and combine per candidate.

    ``combine`` accepts the merge-function names (``avg``, ``min``,
    ``max``, ``weighted`` — weights come from the pairs) or a
    :class:`CombinationFunction`.  A missing attribute value yields a
    missing slot handled by the combination function's policy, so e.g.
    ``avg`` tolerates Google Scholar's optional year while ``min0``
    requires every attribute to agree.
    """

    def __init__(self, pairs: Sequence[AttributePair],
                 combine: Union[str, CombinationFunction] = "weighted",
                 threshold: float = 0.0,
                 *,
                 blocking: Optional[object] = None,
                 name: Optional[str] = None) -> None:
        if not pairs:
            raise MatcherError("multi-attribute matcher needs at least one pair")
        if not 0.0 <= threshold <= 1.0:
            raise MatcherError(f"threshold must be in [0, 1], got {threshold!r}")
        self.pairs = list(pairs)
        weights = [pair.weight for pair in self.pairs]
        self.combiner = get_combination(combine, weights=weights)
        self.threshold = threshold
        self.blocking = blocking
        attrs = "+".join(pair.attribute for pair in self.pairs)
        self.name = name or f"multiattr[{attrs}@{threshold:g}]"

    def _candidate_pairs(self, domain: LogicalSource, range: LogicalSource,
                         candidates: Optional[Iterable[Tuple[str, str]]]
                         ) -> Iterable[Tuple[str, str]]:
        if candidates is not None:
            return candidates
        if self.blocking is not None:
            first = self.pairs[0]
            return self.blocking.candidates(
                domain, range,
                domain_attribute=first.attribute,
                range_attribute=first.range_attribute,
            )
        return self.cross_product(domain, range)

    def match(self, domain: LogicalSource, range: LogicalSource, *,
              candidates: Optional[Iterable[Tuple[str, str]]] = None) -> Mapping:
        for pair in self.pairs:
            corpus = domain.attribute_values(pair.attribute)
            if range is not domain:
                corpus = corpus + range.attribute_values(pair.range_attribute)
            pair.similarity.prepare(corpus)

        result = Mapping(domain.name, range.name, kind=MappingKind.SAME,
                         name=self.name)
        is_self = domain is range or domain.name == range.name
        seen: set[Tuple[str, str]] = set()
        for id_a, id_b in self._candidate_pairs(domain, range, candidates):
            if is_self:
                if id_a == id_b:
                    continue
                key = (id_b, id_a) if id_b < id_a else (id_a, id_b)
                if key in seen:
                    continue
                seen.add(key)
            instance_a = domain.get(id_a)
            instance_b = range.get(id_b)
            if instance_a is None or instance_b is None:
                continue
            values: list[Optional[float]] = []
            for pair in self.pairs:
                value_a = instance_a.get(pair.attribute)
                value_b = instance_b.get(pair.range_attribute)
                if value_a is None or value_b is None:
                    values.append(None)
                else:
                    values.append(pair.similarity.similarity(value_a, value_b))
            score = self.combiner.combine(values)
            if score is not None and score >= self.threshold and score > 0.0:
                result.add(id_a, id_b, score)
                if is_self:
                    result.add(id_b, id_a, score)
        return result
