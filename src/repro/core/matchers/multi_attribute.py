"""The multi-attribute matcher (paper §2.2).

"A multi-attribute matcher is also supported which directly evaluates
and combines the similarity for multiple attribute pairs, e.g., for
publication title and publication year."  Combination uses the same
function family as the merge operator, applied per candidate pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.core.mapping import Mapping
from repro.core.matchers.base import Matcher, MatcherError
from repro.core.operators.functions import CombinationFunction, get_combination
from repro.engine import AttributeSpec, MatchRequest, get_default_engine
from repro.model.source import LogicalSource
from repro.sim.base import SimilarityFunction
from repro.sim.registry import get_similarity


@dataclass
class AttributePair:
    """One attribute comparison within a multi-attribute matcher."""

    attribute: str
    range_attribute: Optional[str] = None
    similarity: Union[str, SimilarityFunction] = "trigram"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.attribute:
            raise MatcherError("attribute name must be non-empty")
        if self.range_attribute is None:
            self.range_attribute = self.attribute
        if isinstance(self.similarity, str):
            self.similarity = get_similarity(self.similarity)
        if self.weight < 0:
            raise MatcherError("weight must be non-negative")


class MultiAttributeMatcher(Matcher):
    """Evaluate several attribute pairs and combine per candidate.

    ``combine`` accepts the merge-function names (``avg``, ``min``,
    ``max``, ``weighted`` — weights come from the pairs) or a
    :class:`CombinationFunction`.  A missing attribute value yields a
    missing slot handled by the combination function's policy, so e.g.
    ``avg`` tolerates Google Scholar's optional year while ``min0``
    requires every attribute to agree.

    Execution rides the same engine fast paths as the single-attribute
    matcher: when at least one attribute pair's similarity has a
    vectorized kernel, the engine composes per-spec kernels and a
    column-wise combiner (:func:`repro.engine.vectorized.
    build_multi_kernel`) — bit-identical results, and eligible for
    sharded/balanced execution like any other indexed request.
    """

    def __init__(self, pairs: Sequence[AttributePair],
                 combine: Union[str, CombinationFunction] = "weighted",
                 threshold: float = 0.0,
                 *,
                 blocking: Optional[object] = None,
                 engine: Optional[object] = None,
                 name: Optional[str] = None) -> None:
        if not pairs:
            raise MatcherError("multi-attribute matcher needs at least one pair")
        if not 0.0 <= threshold <= 1.0:
            raise MatcherError(f"threshold must be in [0, 1], got {threshold!r}")
        self.pairs = list(pairs)
        weights = [pair.weight for pair in self.pairs]
        self.combiner = get_combination(combine, weights=weights)
        self.threshold = threshold
        self.blocking = blocking
        self.engine = engine
        attrs = "+".join(pair.attribute for pair in self.pairs)
        self.name = name or f"multiattr[{attrs}@{threshold:g}]"

    def match(self, domain: LogicalSource, range: LogicalSource, *,
              candidates: Optional[Iterable[Tuple[str, str]]] = None) -> Mapping:
        request = MatchRequest(
            domain=domain,
            range=range,
            specs=[AttributeSpec(pair.attribute, pair.range_attribute,
                                 pair.similarity)
                   for pair in self.pairs],
            threshold=self.threshold,
            combiner=self.combiner,
            candidates=candidates,
            blocking=self.blocking,
            name=self.name,
        )
        engine = self.engine if self.engine is not None else get_default_engine()
        return engine.execute(request)
