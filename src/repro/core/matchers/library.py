"""The matcher library: a registry of matcher factories.

MOMA keeps "an extensible library of matcher algorithms that can be
used for a specific match task", and "selected workflows can be added
to the matcher library for use in other match tasks" (§2.2).  The
library stores *factories* so that each retrieval yields a fresh,
independently configurable matcher.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.matchers.attribute import AttributeMatcher
from repro.core.matchers.base import Matcher
from repro.core.matchers.multi_attribute import AttributePair, MultiAttributeMatcher

MatcherFactory = Callable[..., Matcher]


class MatcherLibrary:
    """Name-indexed registry of matcher factories."""

    def __init__(self) -> None:
        self._factories: Dict[str, MatcherFactory] = {}

    def register(self, name: str, factory: MatcherFactory,
                 *, replace: bool = False) -> None:
        """Register ``factory`` under ``name`` (case-insensitive)."""
        key = name.strip().lower()
        if not key:
            raise ValueError("matcher name must be non-empty")
        if key in self._factories and not replace:
            raise ValueError(f"matcher {name!r} already registered")
        self._factories[key] = factory

    def create(self, name: str, **params: object) -> Matcher:
        """Instantiate the matcher registered under ``name``."""
        key = name.strip().lower()
        factory = self._factories.get(key)
        if factory is None:
            known = ", ".join(sorted(self._factories))
            raise KeyError(f"unknown matcher {name!r}; known: {known}")
        return factory(**params)

    def __contains__(self, name: str) -> bool:
        return name.strip().lower() in self._factories

    def names(self) -> List[str]:
        """Sorted list of registered matcher names."""
        return sorted(self._factories)


def default_library() -> MatcherLibrary:
    """The library pre-populated with the built-in matchers.

    * ``attribute`` — the generic attribute matcher;
    * ``title`` / ``name`` — trigram attribute matchers on the given
      attribute (convenience presets used throughout the evaluation);
    * ``year`` — exact year comparison;
    * ``multiattribute`` — the multi-attribute matcher (pass ``pairs``).
    """
    library = MatcherLibrary()
    library.register("attribute", lambda **kw: AttributeMatcher(**kw))
    library.register(
        "title",
        lambda attribute="title", threshold=0.0, **kw: AttributeMatcher(
            attribute, similarity="trigram", threshold=threshold, **kw
        ),
    )
    library.register(
        "name",
        lambda attribute="name", threshold=0.0, **kw: AttributeMatcher(
            attribute, similarity="trigram", threshold=threshold, **kw
        ),
    )
    library.register(
        "personname",
        lambda attribute="name", threshold=0.0, **kw: AttributeMatcher(
            attribute, similarity="personname", threshold=threshold, **kw
        ),
    )
    library.register(
        "year",
        lambda attribute="year", threshold=1.0, **kw: AttributeMatcher(
            attribute, similarity="exact", threshold=threshold, **kw
        ),
    )
    library.register(
        "multiattribute",
        lambda pairs, **kw: MultiAttributeMatcher(
            [pair if isinstance(pair, AttributePair) else AttributePair(**pair)
             for pair in pairs],
            **kw,
        ),
    )
    return library
