"""The neighborhood matcher (paper §4.2, Figures 9-11).

The paper's iFuice script::

    PROCEDURE nhMatch ( $Asso1, $Same, $Asso2)
       $Temp   = compose ( $Asso1 , $Same , Min, Average )
       $Result = compose ( $Temp , $Asso2 , Min, Relative )
       RETURN $Result
    END

Inputs are two association mappings of inverse semantic type (e.g.
VenuePub and PubVenue) and a same-mapping over the associated objects.
The second composition uses Relative "to prefer correspondences
reached via multiple compose paths".  For incomplete right-hand
associations (Google Scholar's truncated author lists) the paper
switches to RelativeLeft (§5.4.3) — exposed here via ``g2``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.core.mapping import Mapping, MappingKind
from repro.core.matchers.base import Matcher, MatcherError
from repro.core.operators.compose import compose
from repro.model.source import LogicalSource


def neighborhood_match(asso1: Mapping, same: Mapping, asso2: Mapping,
                       *, f: str = "min", g1: str = "avg",
                       g2: str = "relative",
                       name: Optional[str] = None) -> Mapping:
    """Derive a same-mapping from associations plus a known same-mapping.

    ``asso1: X_A -> Y_A`` leads from the objects to be matched into
    their neighborhood, ``same: Y_A -> Y_B`` crosses sources, and
    ``asso2: Y_B -> X_B`` leads back out.  The result is a fuzzy
    same-mapping ``X_A -> X_B``.
    """
    if asso1.range != same.domain:
        raise MatcherError(
            f"asso1.range ({asso1.range!r}) must feed same.domain "
            f"({same.domain!r})"
        )
    if same.range != asso2.domain:
        raise MatcherError(
            f"same.range ({same.range!r}) must feed asso2.domain "
            f"({asso2.domain!r})"
        )
    temp = compose(asso1, same, f, g1, kind=MappingKind.ASSOCIATION)
    return compose(temp, asso2, f, g2, kind=MappingKind.SAME, name=name)


class NeighborhoodMatcher(Matcher):
    """Matcher facade over :func:`neighborhood_match`.

    Because the neighborhood matcher consumes mappings rather than the
    instances themselves, the mappings are bound at construction time;
    :meth:`match` validates that they connect the requested sources and
    optionally restricts the result to the sources' instance sets.
    """

    def __init__(self, asso1: Mapping, same: Mapping, asso2: Mapping,
                 *, f: str = "min", g1: str = "avg", g2: str = "relative",
                 name: Optional[str] = None) -> None:
        self.asso1 = asso1
        self.same = same
        self.asso2 = asso2
        self.f = f
        self.g1 = g1
        self.g2 = g2
        self.name = name or "neighborhood"

    def match(self, domain: LogicalSource, range: LogicalSource, *,
              candidates: Optional[Iterable[Tuple[str, str]]] = None) -> Mapping:
        if self.asso1.domain != domain.name:
            raise MatcherError(
                f"asso1 starts at {self.asso1.domain!r}, not {domain.name!r}"
            )
        if self.asso2.range != range.name:
            raise MatcherError(
                f"asso2 ends at {self.asso2.range!r}, not {range.name!r}"
            )
        result = neighborhood_match(
            self.asso1, self.same, self.asso2,
            f=self.f, g1=self.g1, g2=self.g2, name=self.name,
        )
        if candidates is not None:
            allowed = set(candidates)
            result = result.filter(lambda c: (c.domain, c.range) in allowed)
        return result
