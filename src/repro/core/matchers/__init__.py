"""MOMA's extensible matcher library (paper §2.2).

"Matchers conform to the same interfaces as a match process, in
particular they generate a same-mapping.  Otherwise there is no
restriction on the implementation of matchers."  This package provides
the generic attribute matcher, the multi-attribute matcher, the
neighborhood matcher of §4.2 and the registry through which workflows
(and the script language) resolve matchers by name.
"""

from repro.core.matchers.attribute import AttributeMatcher
from repro.core.matchers.base import Matcher, MatcherError
from repro.core.matchers.library import MatcherLibrary, default_library
from repro.core.matchers.multi_attribute import AttributePair, MultiAttributeMatcher
from repro.core.matchers.neighborhood import NeighborhoodMatcher, neighborhood_match

__all__ = [
    "AttributeMatcher",
    "AttributePair",
    "Matcher",
    "MatcherError",
    "MatcherLibrary",
    "MultiAttributeMatcher",
    "NeighborhoodMatcher",
    "default_library",
    "neighborhood_match",
]
