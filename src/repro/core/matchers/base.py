"""The matcher interface.

A matcher takes two logical data sources (possibly the same one, for
duplicate detection) and produces a same-mapping.  Candidate pairs can
be injected from a blocking strategy; otherwise matchers fall back to
the full cross product, which is fine for the query-sized inputs of
online matching but should be blocked for paper-scale offline runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Optional, Tuple

from repro.core.mapping import Mapping
from repro.model.source import LogicalSource


class MatcherError(RuntimeError):
    """Raised when a matcher cannot run (bad config, missing attributes)."""


class Matcher(ABC):
    """Produces a same-mapping between two logical data sources."""

    #: human-readable matcher name used in workflow traces
    name: str = "matcher"

    @abstractmethod
    def match(self, domain: LogicalSource, range: LogicalSource, *,
              candidates: Optional[Iterable[Tuple[str, str]]] = None) -> Mapping:
        """Match ``domain`` against ``range``.

        ``candidates`` optionally restricts scoring to the given
        (domain id, range id) pairs, typically produced by a blocking
        strategy from :mod:`repro.blocking`.
        """

    def __call__(self, domain: LogicalSource, range: LogicalSource, *,
                 candidates: Optional[Iterable[Tuple[str, str]]] = None) -> Mapping:
        return self.match(domain, range, candidates=candidates)

    @staticmethod
    def cross_product(domain: LogicalSource,
                      range: LogicalSource) -> Iterable[Tuple[str, str]]:
        """All (domain id, range id) pairs; for self-matching the
        reflexive pair (x, x) is skipped and each unordered pair is
        emitted once (duplicates are symmetric)."""
        if domain is range or domain.name == range.name:
            ids = domain.ids()
            for i, id_a in enumerate(ids):
                for id_b in ids[i + 1:]:
                    yield id_a, id_b
        else:
            range_ids = range.ids()
            for id_a in domain.ids():
                for id_b in range_ids:
                    yield id_a, id_b
