"""The generic attribute matcher (paper §2.2).

"We use a generic attribute matcher that is provided with a pair of
attributes to be matched, a similarity function to be evaluated (e.g.
n-gram, TF/IDF or affix) and a similarity threshold to be exceeded by
result correspondences."
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

from repro.core.mapping import Mapping, MappingKind
from repro.core.matchers.base import Matcher, MatcherError
from repro.model.source import LogicalSource
from repro.sim.base import SimilarityFunction
from repro.sim.registry import get_similarity


class AttributeMatcher(Matcher):
    """Score one attribute pair with a pluggable similarity function.

    Parameters
    ----------
    attribute:
        Attribute name on the domain source.
    range_attribute:
        Attribute name on the range source; defaults to ``attribute``.
    similarity:
        A :class:`SimilarityFunction` or a registry name such as
        ``"trigram"`` or ``"tfidf"``.
    threshold:
        Minimum similarity for a correspondence to enter the result
        mapping.  0.0 keeps everything with positive similarity.
    blocking:
        Optional blocking strategy (``repro.blocking``) used to derive
        candidate pairs when none are passed to :meth:`match`.
    missing:
        ``"skip"`` (default) produces no correspondence for pairs with
        a missing value; ``"zero"`` scores them 0 (only observable with
        ``threshold == 0`` diagnostics).
    """

    def __init__(self, attribute: str,
                 range_attribute: Optional[str] = None,
                 similarity: Union[str, SimilarityFunction] = "trigram",
                 threshold: float = 0.0,
                 *,
                 blocking: Optional[object] = None,
                 missing: str = "skip",
                 name: Optional[str] = None) -> None:
        if not attribute:
            raise MatcherError("attribute name must be non-empty")
        if not 0.0 <= threshold <= 1.0:
            raise MatcherError(f"threshold must be in [0, 1], got {threshold!r}")
        if missing not in ("skip", "zero"):
            raise MatcherError(f"missing must be skip|zero, got {missing!r}")
        self.attribute = attribute
        self.range_attribute = range_attribute if range_attribute else attribute
        self.similarity = (
            get_similarity(similarity) if isinstance(similarity, str) else similarity
        )
        self.threshold = threshold
        self.blocking = blocking
        self.missing = missing
        self.name = name or (
            f"attr[{self.attribute}~{self.similarity.name}@{self.threshold:g}]"
        )

    def _candidate_pairs(self, domain: LogicalSource, range: LogicalSource,
                         candidates: Optional[Iterable[Tuple[str, str]]]
                         ) -> Iterable[Tuple[str, str]]:
        if candidates is not None:
            return candidates
        if self.blocking is not None:
            return self.blocking.candidates(
                domain, range,
                domain_attribute=self.attribute,
                range_attribute=self.range_attribute,
            )
        return self.cross_product(domain, range)

    def match(self, domain: LogicalSource, range: LogicalSource, *,
              candidates: Optional[Iterable[Tuple[str, str]]] = None) -> Mapping:
        # Corpus-level preparation (TF/IDF document frequencies) over
        # the union of both sources' attribute values.
        corpus = domain.attribute_values(self.attribute)
        if range is not domain:
            corpus = corpus + range.attribute_values(self.range_attribute)
        self.similarity.prepare(corpus)

        result = Mapping(domain.name, range.name, kind=MappingKind.SAME,
                         name=self.name)
        is_self = domain is range or domain.name == range.name
        seen: set[Tuple[str, str]] = set()
        for id_a, id_b in self._candidate_pairs(domain, range, candidates):
            if is_self:
                if id_a == id_b:
                    continue
                key = (id_b, id_a) if id_b < id_a else (id_a, id_b)
                if key in seen:
                    continue
                seen.add(key)
            instance_a = domain.get(id_a)
            instance_b = range.get(id_b)
            if instance_a is None or instance_b is None:
                continue
            value_a = instance_a.get(self.attribute)
            value_b = instance_b.get(self.range_attribute)
            if value_a is None or value_b is None:
                if self.missing == "skip":
                    continue
                score = 0.0
            else:
                score = self.similarity.similarity(value_a, value_b)
            if score >= self.threshold and score > 0.0:
                result.add(id_a, id_b, score)
                if is_self:
                    result.add(id_b, id_a, score)
        return result
