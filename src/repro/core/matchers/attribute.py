"""The generic attribute matcher (paper §2.2).

"We use a generic attribute matcher that is provided with a pair of
attributes to be matched, a similarity function to be evaluated (e.g.
n-gram, TF/IDF or affix) and a similarity threshold to be exceeded by
result correspondences."
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

from repro.core.mapping import Mapping
from repro.core.matchers.base import Matcher, MatcherError
from repro.engine import AttributeSpec, MatchRequest, get_default_engine
from repro.model.source import LogicalSource
from repro.sim.base import SimilarityFunction
from repro.sim.registry import get_similarity


class AttributeMatcher(Matcher):
    """Score one attribute pair with a pluggable similarity function.

    Parameters
    ----------
    attribute:
        Attribute name on the domain source.
    range_attribute:
        Attribute name on the range source; defaults to ``attribute``.
    similarity:
        A :class:`SimilarityFunction` or a registry name such as
        ``"trigram"`` or ``"tfidf"``.
    threshold:
        Minimum similarity for a correspondence to enter the result
        mapping.  0.0 keeps everything with positive similarity.
    blocking:
        Optional blocking strategy (``repro.blocking``) used to derive
        candidate pairs when none are passed to :meth:`match`.
    missing:
        ``"skip"`` (default) produces no correspondence for pairs with
        a missing value; ``"zero"`` scores them 0 (only observable with
        ``threshold == 0`` diagnostics).  The policy travels on the
        :class:`MatchRequest`, so every execution path — scalar,
        vectorized, parallel, sharded — applies it identically.
    engine:
        Optional :class:`~repro.engine.BatchMatchEngine` executing the
        candidate scoring; defaults to the process-wide default engine
        (serial unless configured otherwise, e.g. via the CLI's
        ``--workers`` flag or a workflow step's engine override).
    """

    def __init__(self, attribute: str,
                 range_attribute: Optional[str] = None,
                 similarity: Union[str, SimilarityFunction] = "trigram",
                 threshold: float = 0.0,
                 *,
                 blocking: Optional[object] = None,
                 missing: str = "skip",
                 engine: Optional[object] = None,
                 name: Optional[str] = None) -> None:
        if not attribute:
            raise MatcherError("attribute name must be non-empty")
        if not 0.0 <= threshold <= 1.0:
            raise MatcherError(f"threshold must be in [0, 1], got {threshold!r}")
        if missing not in ("skip", "zero"):
            raise MatcherError(f"missing must be skip|zero, got {missing!r}")
        self.attribute = attribute
        self.range_attribute = range_attribute if range_attribute else attribute
        self.similarity = (
            get_similarity(similarity) if isinstance(similarity, str) else similarity
        )
        self.threshold = threshold
        self.blocking = blocking
        self.missing = missing
        self.engine = engine
        self.name = name or (
            f"attr[{self.attribute}~{self.similarity.name}@{self.threshold:g}]"
        )

    def match(self, domain: LogicalSource, range: LogicalSource, *,
              candidates: Optional[Iterable[Tuple[str, str]]] = None) -> Mapping:
        request = MatchRequest(
            domain=domain,
            range=range,
            specs=[AttributeSpec(self.attribute, self.range_attribute,
                                 self.similarity)],
            threshold=self.threshold,
            candidates=candidates,
            blocking=self.blocking,
            missing=self.missing,
            name=self.name,
        )
        engine = self.engine if self.engine is not None else get_default_engine()
        return engine.execute(request)
