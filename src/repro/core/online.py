"""Online (query-time) object matching.

The paper targets "both extensive offline matching of large data sets
... and small-sized online matching (e.g. during query processing in
virtual data integration scenarios)" (§2.1).  Offline matching is the
workflow engine's job; this module covers the online side:

* :class:`OnlineMatcher` holds a *reference* logical source behind a
  token index and matches small query-result batches against it with
  bounded candidate lists and an LRU-cached per-record result — the
  access pattern of matching web query results as they arrive;
* :func:`match_query_results` is the convenience wrapper for matching
  the output of a :class:`repro.datagen.query.QueryClient` search.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.mapping import Mapping, MappingKind
from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource
from repro.sim.base import SimilarityFunction
from repro.sim.registry import get_similarity
from repro.sim.tokenize import word_tokens


class OnlineMatcher:
    """Incrementally match incoming records against a reference source.

    The reference source is indexed once (inverted token index over the
    match attribute).  Each :meth:`match_record` call scores the record
    against at most ``max_candidates`` reference instances that share
    an informative token, returning the correspondences above the
    threshold.  Results are cached per (record id, attribute value) so
    repeated query results cost nothing — the online analogue of the
    mapping cache.
    """

    def __init__(self, reference: LogicalSource, attribute: str = "title",
                 similarity: object = "trigram", *,
                 threshold: float = 0.7,
                 max_candidates: int = 50,
                 cache_size: int = 1024) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold!r}")
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        self.reference = reference
        self.attribute = attribute
        self.similarity: SimilarityFunction = (
            get_similarity(similarity) if isinstance(similarity, str)
            else similarity
        )
        self.threshold = threshold
        self.max_candidates = max_candidates
        self._cache: "OrderedDict[Tuple[str, str], List[Tuple[str, float]]]" = \
            OrderedDict()
        self._cache_size = cache_size
        self.hits = 0
        self.misses = 0

        self._index: Dict[str, List[str]] = {}
        corpus = []
        for instance in reference:
            value = instance.get(attribute)
            if value is None:
                continue
            corpus.append(value)
            for token in set(word_tokens(str(value))):
                self._index.setdefault(token, []).append(instance.id)
        self.similarity.prepare(corpus)

    # -- candidate generation ------------------------------------------------

    def _candidates(self, value: str) -> List[str]:
        scores: Dict[str, int] = {}
        for token in set(word_tokens(value)):
            posting = self._index.get(token)
            if not posting:
                continue
            # frequent tokens contribute less: weight by rarity rank
            weight = max(1, 1000 // len(posting))
            for reference_id in posting:
                scores[reference_id] = scores.get(reference_id, 0) + weight
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [reference_id for reference_id, _ in
                ranked[:self.max_candidates]]

    # -- matching ------------------------------------------------------------

    def match_record(self, record: ObjectInstance) -> List[Tuple[str, float]]:
        """Match one record; returns ``[(reference id, similarity), ...]``
        sorted by descending similarity."""
        value = record.get(self.attribute)
        if value is None:
            return []
        key = (record.id, str(value))
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.hits += 1
            return list(cached)
        self.misses += 1

        results: List[Tuple[str, float]] = []
        for reference_id in self._candidates(str(value)):
            reference_value = self.reference.require(reference_id).get(
                self.attribute)
            score = self.similarity.similarity(value, reference_value)
            if score >= self.threshold:
                results.append((reference_id, score))
        results.sort(key=lambda item: (-item[1], item[0]))

        self._cache[key] = results
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return list(results)

    def match_batch(self, records: Iterable[ObjectInstance],
                    *, source_name: Optional[str] = None) -> Mapping:
        """Match a batch of records into a same-mapping.

        ``source_name`` names the mapping's domain LDS (defaults to an
        anonymous query source).
        """
        domain = source_name if source_name else "query.Results"
        mapping = Mapping(domain, self.reference.name,
                          kind=MappingKind.SAME)
        for record in records:
            for reference_id, score in self.match_record(record):
                mapping.add(record.id, reference_id, score)
        return mapping

    def cache_stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._cache)}


def match_query_results(results: Iterable[ObjectInstance],
                        reference: LogicalSource,
                        attribute: str = "title",
                        *, threshold: float = 0.7,
                        source_name: Optional[str] = None) -> Mapping:
    """One-shot online matching of query results against a reference.

    Builds a transient :class:`OnlineMatcher`; for repeated batches
    against the same reference, construct the matcher once instead.
    """
    matcher = OnlineMatcher(reference, attribute, threshold=threshold)
    return matcher.match_batch(results, source_name=source_name)
