"""Online (query-time) object matching.

The paper targets "both extensive offline matching of large data sets
... and small-sized online matching (e.g. during query processing in
virtual data integration scenarios)" (§2.1).  Offline matching is the
workflow engine's job; the online side now lives in
:mod:`repro.serve`: a standing :class:`~repro.serve.service.
MatchService` over an incrementally maintained, kernel-packed
reference index.

This module keeps the original entry points as thin wrappers:

* :class:`OnlineMatcher` — the historical per-record API, now backed
  by the service.  Two latent defects of the old implementation are
  gone: the per-record result cache is invalidated when the reference
  changes (mutations flow through :meth:`OnlineMatcher.add` /
  :meth:`OnlineMatcher.update` / :meth:`OnlineMatcher.delete` and
  drop exactly the affected entries), and candidate ranking weights
  token rarity with plain inverse document frequency ``1 / df``
  instead of the old hard-coded ``1000 // len(posting)`` magic
  constant, which collapsed to weight 1 for any posting longer than
  500 ids regardless of reference size (and, being integer-floored,
  conflated distinct rarities);
* :func:`match_query_results` — the convenience wrapper for matching
  the output of a :class:`repro.datagen.query.QueryClient` search.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.mapping import Mapping
from repro.model.entity import ObjectInstance
from repro.model.source import LogicalSource
from repro.serve.config import ServeConfig
from repro.serve.service import MatchService, match_query_results

__all__ = ["OnlineMatcher", "match_query_results"]


class OnlineMatcher:
    """Incrementally match incoming records against a reference source.

    Compatibility façade over :class:`~repro.serve.service.
    MatchService`: same constructor, same :meth:`match_record` /
    :meth:`match_batch` / :meth:`cache_stats` surface.  The reference
    is snapshotted at construction; change it through :meth:`add`,
    :meth:`update` and :meth:`delete`, which keep the result cache
    consistent (the old implementation silently served stale results
    after any reference change).
    """

    def __init__(self, reference: LogicalSource, attribute: str = "title",
                 similarity: object = "trigram", *,
                 threshold: float = 0.7,
                 max_candidates: int = 50,
                 cache_size: int = 1024) -> None:
        self.service = MatchService(reference, config=ServeConfig(
            attribute=attribute, similarity=similarity,
            threshold=threshold, max_candidates=max_candidates,
            cache_size=cache_size))
        self.reference = reference
        self.attribute = attribute
        self.similarity = self.service.index.specs[0].similarity
        self.threshold = threshold
        self.max_candidates = max_candidates

    # -- matching ------------------------------------------------------------

    def match_record(self, record: ObjectInstance) -> List[Tuple[str, float]]:
        """Match one record; returns ``[(reference id, similarity), ...]``
        sorted by descending similarity."""
        return self.service.match_record(record)

    def match_batch(self, records: Iterable[ObjectInstance],
                    *, source_name: Optional[str] = None) -> Mapping:
        """Match a batch of records into a same-mapping.

        ``source_name`` names the mapping's domain LDS (defaults to an
        anonymous query source).
        """
        return self.service.match_batch(records, source_name=source_name)

    # -- reference mutation --------------------------------------------------

    def add(self, instance: ObjectInstance) -> None:
        """Add a reference record; affected cached results are dropped."""
        self.service.add(instance)

    def update(self, instance: ObjectInstance) -> None:
        """Replace a reference record; affected cached results are dropped."""
        self.service.update(instance)

    def delete(self, id: str) -> bool:
        """Remove a reference record; affected cached results are dropped."""
        return self.service.delete(id)

    # -- introspection -------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.service.hits

    @property
    def misses(self) -> int:
        return self.service.misses

    def cache_stats(self) -> dict:
        return self.service.cache_stats()
