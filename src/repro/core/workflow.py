"""Match workflows (paper §2.2, Figure 3).

"The MOMA match process is a workflow consisting of a sequence of
steps.  Each such step generates a same-mapping that can be refined by
additional steps. [...] Each workflow step consists of two parts:
matcher execution and mapping combination.  The execution of selected
matchers is actually optional, i.e., a step may only combine existing
or previously computed mappings from the mapping repository or mapping
cache."

The workflow engine therefore distinguishes:

* :class:`MatcherStep` — run a matcher on two logical sources;
* :class:`CombineStep` — a mapping combiner: a mapping operator
  (merge or compose) followed by an optional selection chain;
* :class:`SelectStep` — selection only, refining one mapping;
* :class:`StoreStep` — persist a mapping into the repository so other
  workflows can re-use it.

All steps read and write named mappings in a :class:`MatchContext`,
which layers the in-flight workspace over the mapping cache, the
mapping repository and the source-mapping model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.mapping import Mapping
from repro.core.matchers.base import Matcher
from repro.core.operators.compose import compose
from repro.core.operators.merge import merge
from repro.core.operators.selection import Selection
from repro.model.cache import MappingCache
from repro.model.repository import MappingRepository
from repro.model.smm import SourceMappingModel
from repro.model.source import LogicalSource


class WorkflowError(RuntimeError):
    """Raised on unresolved names or malformed workflow definitions."""


class MatchContext:
    """Resolution environment for workflow execution.

    Mapping names resolve through, in order: the step workspace, the
    mapping cache, explicitly provided mappings, the source-mapping
    model's registered mappings, and finally the repository.  Source
    names resolve through provided sources, then the SMM.
    """

    def __init__(self, *,
                 smm: Optional[SourceMappingModel] = None,
                 repository: Optional[MappingRepository] = None,
                 cache: Optional[MappingCache] = None,
                 sources: Optional[Dict[str, LogicalSource]] = None,
                 mappings: Optional[Dict[str, Mapping]] = None,
                 engine: Optional[object] = None) -> None:
        self.smm = smm
        self.repository = repository
        self.cache = cache if cache is not None else MappingCache()
        #: batch engine injected into matcher steps that don't carry
        #: their own (``repro.engine.BatchMatchEngine``); ``None`` keeps
        #: each matcher's own engine (usually the process default).
        self.engine = engine
        self._sources = dict(sources) if sources else {}
        self._mappings = dict(mappings) if mappings else {}
        self.workspace: Dict[str, Mapping] = {}
        self.trace: List[str] = []

    # -- sources -------------------------------------------------------

    def add_source(self, source: LogicalSource) -> None:
        """Register ``source`` under its qualified name."""
        self._sources[source.name] = source

    def resolve_source(self, name: str) -> LogicalSource:
        source = self._sources.get(name)
        if source is None and self.smm is not None:
            source = self.smm.get_source(name)
        if source is None:
            raise WorkflowError(f"unknown logical source {name!r}")
        return source

    # -- mappings ------------------------------------------------------

    def add_mapping(self, name: str, mapping: Mapping) -> None:
        """Provide an input mapping under ``name``."""
        self._mappings[name] = mapping

    def resolve_mapping(self, ref: Union[str, Mapping]) -> Mapping:
        if isinstance(ref, Mapping):
            return ref
        mapping = self.workspace.get(ref)
        if mapping is None:
            mapping = self.cache.get(ref)
        if mapping is None:
            mapping = self._mappings.get(ref)
        if mapping is None and self.smm is not None:
            mapping = self.smm.find_mapping(ref)
        if mapping is None and self.repository is not None:
            if self.repository.contains(ref):
                mapping = self.repository.load(ref)
        if mapping is None:
            raise WorkflowError(f"unknown mapping {ref!r}")
        return mapping

    def publish(self, name: str, mapping: Mapping) -> None:
        """Store a step result in the workspace and the cache."""
        self.workspace[name] = mapping
        self.cache.put(name, mapping)


@dataclass
class MatcherStep:
    """Execute a matcher and publish its same-mapping.

    ``engine`` optionally overrides the batch execution engine for this
    step; otherwise the context's engine (if any) applies.  Either may
    be a ``repro.engine.BatchMatchEngine`` or a bare
    ``repro.engine.EngineConfig`` (wrapped into an engine on use, so
    workflow definitions can ask for e.g. sharded four-worker execution
    — or the self-tuning ``EngineConfig(workers=4, auto=True)`` —
    without importing the engine class).  Matchers that don't expose an
    ``engine`` attribute run unchanged.
    """

    output: str
    matcher: Matcher
    domain: str
    range: str
    candidates: Optional[Iterable[Tuple[str, str]]] = None
    engine: Optional[object] = None

    def run(self, context: MatchContext) -> Mapping:
        from repro.engine import BatchMatchEngine, EngineConfig

        domain = context.resolve_source(self.domain)
        range_ = context.resolve_source(self.range)
        engine = self.engine if self.engine is not None else context.engine
        if isinstance(engine, EngineConfig):
            engine = BatchMatchEngine(engine)
        if engine is not None and hasattr(self.matcher, "engine"):
            previous = self.matcher.engine
            self.matcher.engine = engine
            try:
                mapping = self.matcher.match(domain, range_,
                                             candidates=self.candidates)
            finally:
                self.matcher.engine = previous
        else:
            mapping = self.matcher.match(domain, range_,
                                         candidates=self.candidates)
        context.publish(self.output, mapping)
        context.trace.append(
            f"matcher {self.matcher.name} {self.domain}->{self.range}: "
            f"{len(mapping)} correspondences -> {self.output}"
        )
        return mapping


@dataclass
class CombineStep:
    """A mapping combiner: operator plus optional selection chain.

    ``operator`` is ``"merge"`` (inputs: 2+ mapping refs) or
    ``"compose"`` (exactly 2 refs).  ``params`` feed through to the
    operator (combination functions, weights, prefer index).
    """

    output: str
    operator: str
    inputs: Sequence[Union[str, Mapping]]
    params: Dict[str, object] = field(default_factory=dict)
    selections: Sequence[Selection] = field(default_factory=tuple)

    def run(self, context: MatchContext) -> Mapping:
        resolved = [context.resolve_mapping(ref) for ref in self.inputs]
        operator = self.operator.strip().lower()
        if operator == "merge":
            mapping = merge(resolved, **self.params)
        elif operator == "compose":
            if len(resolved) != 2:
                raise WorkflowError(
                    f"compose expects 2 inputs, got {len(resolved)}"
                )
            mapping = compose(resolved[0], resolved[1], **self.params)
        else:
            raise WorkflowError(f"unknown operator {self.operator!r}")
        for selection in self.selections:
            mapping = selection.apply(mapping)
        context.publish(self.output, mapping)
        context.trace.append(
            f"{operator}({', '.join(str(ref) if isinstance(ref, str) else '<mapping>' for ref in self.inputs)})"
            f" -> {self.output} ({len(mapping)} correspondences)"
        )
        return mapping


@dataclass
class SelectStep:
    """Refine a mapping with a selection chain."""

    output: str
    input: Union[str, Mapping]
    selections: Sequence[Selection]

    def run(self, context: MatchContext) -> Mapping:
        mapping = context.resolve_mapping(self.input)
        for selection in self.selections:
            mapping = selection.apply(mapping)
        context.publish(self.output, mapping)
        context.trace.append(
            f"select({self.input if isinstance(self.input, str) else '<mapping>'}) "
            f"-> {self.output} ({len(mapping)} correspondences)"
        )
        return mapping


@dataclass
class StoreStep:
    """Persist a mapping into the repository for later re-use."""

    input: Union[str, Mapping]
    repository_name: str

    output: Optional[str] = None

    def run(self, context: MatchContext) -> Mapping:
        mapping = context.resolve_mapping(self.input)
        if context.repository is None:
            raise WorkflowError("no repository attached to the match context")
        context.repository.save(self.repository_name, mapping)
        context.trace.append(
            f"store {self.repository_name!r} ({len(mapping)} correspondences)"
        )
        return mapping


WorkflowStep = Union[MatcherStep, CombineStep, SelectStep, StoreStep]


class MatchWorkflow:
    """An ordered sequence of workflow steps producing a same-mapping.

    The final same-mapping is the output of the last step (or the step
    named by ``result``).  Workflows are reusable: :meth:`run` creates
    no hidden state outside the supplied context.
    """

    def __init__(self, name: str, steps: Optional[Sequence[WorkflowStep]] = None,
                 *, result: Optional[str] = None) -> None:
        if not name:
            raise ValueError("workflow name must be non-empty")
        self.name = name
        self.steps: List[WorkflowStep] = list(steps) if steps else []
        self.result = result

    # -- fluent builders ------------------------------------------------

    def add_matcher(self, output: str, matcher: Matcher,
                    domain: str, range: str,
                    candidates: Optional[Iterable[Tuple[str, str]]] = None,
                    engine: Optional[object] = None) -> "MatchWorkflow":
        self.steps.append(MatcherStep(output, matcher, domain, range,
                                      candidates, engine))
        return self

    def add_merge(self, output: str, inputs: Sequence[Union[str, Mapping]],
                  function: Union[str, object] = "avg",
                  selections: Sequence[Selection] = (),
                  **params: object) -> "MatchWorkflow":
        params = dict(params)
        params["function"] = function
        self.steps.append(CombineStep(output, "merge", inputs, params,
                                      tuple(selections)))
        return self

    def add_compose(self, output: str, first: Union[str, Mapping],
                    second: Union[str, Mapping],
                    f: str = "min", g: str = "avg",
                    selections: Sequence[Selection] = (),
                    **params: object) -> "MatchWorkflow":
        params = dict(params)
        params["f"] = f
        params["g"] = g
        self.steps.append(CombineStep(output, "compose", [first, second],
                                      params, tuple(selections)))
        return self

    def add_select(self, output: str, input: Union[str, Mapping],
                   *selections: Selection) -> "MatchWorkflow":
        self.steps.append(SelectStep(output, input, tuple(selections)))
        return self

    def add_store(self, input: Union[str, Mapping],
                  repository_name: str) -> "MatchWorkflow":
        self.steps.append(StoreStep(input, repository_name))
        return self

    # -- execution -------------------------------------------------------

    def run(self, context: MatchContext) -> Mapping:
        """Execute all steps; return the workflow's result mapping."""
        if not self.steps:
            raise WorkflowError(f"workflow {self.name!r} has no steps")
        last: Optional[Mapping] = None
        for step in self.steps:
            last = step.run(context)
        if self.result is not None:
            return context.resolve_mapping(self.result)
        assert last is not None
        return last

    def as_matcher(self, domain: str, range: str,
                   base_context: Optional[MatchContext] = None) -> Matcher:
        """Wrap this workflow as a matcher for the matcher library.

        "Selected workflows can be added to the matcher library for
        use in other match tasks" (§2.2).  The wrapper runs the
        workflow in a child context sharing the base context's
        repository/cache/SMM, with the call's sources bound to
        ``domain`` and ``range``.
        """
        workflow = self

        class _WorkflowMatcher(Matcher):
            name = f"workflow[{workflow.name}]"

            def match(self, domain_source: LogicalSource,
                      range_source: LogicalSource, *,
                      candidates: Optional[Iterable[Tuple[str, str]]] = None
                      ) -> Mapping:
                context = MatchContext(
                    smm=base_context.smm if base_context else None,
                    repository=base_context.repository if base_context else None,
                    cache=base_context.cache if base_context else None,
                )
                context.add_source(domain_source)
                context.add_source(range_source)
                if base_context is not None:
                    context._sources.update(base_context._sources)
                    context._mappings.update(base_context._mappings)
                mapping = workflow.run(context)
                if candidates is not None:
                    allowed = set(candidates)
                    mapping = mapping.filter(
                        lambda c: (c.domain, c.range) in allowed
                    )
                return mapping

        return _WorkflowMatcher()

    def __repr__(self) -> str:
        return f"MatchWorkflow({self.name!r}, {len(self.steps)} steps)"
