"""Self-tuning of matchers and combination schemes (paper §2.2).

"Similar to the E-Tuner approach for schema matching, MOMA therefore
will provide self-tuning capabilities to automatically select matchers
and mappings and to find optimal configuration parameters.  Initially
the focus is on optimizing individual matchers and combination
schemes.  For example, for attribute matching choices must be made on
which attributes to match, and which similarity function and
similarity threshold to apply.  For suitable training data these
parameters can be optimized by standard machine learning schemes, e.g.
using decision trees."

This module provides:

* :func:`tune_threshold` — optimal threshold of an existing fuzzy
  mapping against training gold;
* :class:`GridSearchTuner` — exhaustive search over attribute /
  similarity-function / threshold configurations;
* :func:`tune_merge_weights` — weight search for the Weighted merge
  combination;
* :class:`DecisionTree` — a small CART classifier (gini splits) used by
* :class:`DecisionTreeMatcherTuner` — learns a match rule over several
  similarity features and emits it as a pluggable matcher.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.mapping import Mapping, MappingKind
from repro.core.matchers.attribute import AttributeMatcher
from repro.core.matchers.base import Matcher
from repro.core.operators.merge import merge
from repro.model.source import LogicalSource
from repro.sim.base import SimilarityFunction
from repro.sim.registry import get_similarity


@dataclass
class TuningResult:
    """Outcome of a tuning run: the chosen configuration and its score."""

    params: dict
    precision: float
    recall: float
    f1: float
    trials: List[Tuple[dict, float]] = field(default_factory=list)

    def best_matcher(self) -> Matcher:
        """Instantiate the attribute matcher for the winning parameters."""
        return AttributeMatcher(
            self.params["attribute"],
            self.params.get("range_attribute"),
            similarity=self.params["similarity"],
            threshold=self.params["threshold"],
        )


def _prf(predicted: Set[Tuple[str, str]],
         gold: Set[Tuple[str, str]]) -> Tuple[float, float, float]:
    if not predicted:
        return 0.0, 0.0, 0.0
    true_positives = len(predicted & gold)
    precision = true_positives / len(predicted)
    recall = true_positives / len(gold) if gold else 0.0
    if precision + recall == 0:
        return precision, recall, 0.0
    return precision, recall, 2 * precision * recall / (precision + recall)


def tune_threshold(mapping: Mapping, gold: Mapping
                   ) -> Tuple[float, float]:
    """Return ``(threshold, f1)`` maximizing F-measure on ``gold``.

    Scans the distinct similarity values of ``mapping`` as candidate
    inclusive thresholds — the optimal threshold is always one of them.
    """
    gold_pairs = gold.pairs()
    scored = sorted(mapping, key=lambda corr: -corr.similarity)
    if not scored:
        return 1.0, 0.0
    best_threshold, best_f1 = 1.0, 0.0
    true_positives = 0
    selected = 0
    total_gold = len(gold_pairs)
    index = 0
    while index < len(scored):
        threshold = scored[index].similarity
        # absorb the whole tie group at this similarity
        while index < len(scored) and scored[index].similarity == threshold:
            corr = scored[index]
            selected += 1
            if (corr.domain, corr.range) in gold_pairs:
                true_positives += 1
            index += 1
        if selected and total_gold:
            precision = true_positives / selected
            recall = true_positives / total_gold
            if precision + recall > 0:
                f1 = 2 * precision * recall / (precision + recall)
                if f1 > best_f1:
                    best_f1, best_threshold = f1, threshold
    return best_threshold, best_f1


class GridSearchTuner:
    """Exhaustive search over attribute-matcher configurations.

    For each (attribute pair, similarity function) combination the
    matcher runs once with threshold 0 and every candidate threshold is
    evaluated on the resulting fuzzy mapping — far cheaper than
    re-matching per threshold.
    """

    def __init__(self,
                 attributes: Sequence[Union[str, Tuple[str, str]]],
                 similarities: Sequence[Union[str, SimilarityFunction]],
                 thresholds: Optional[Sequence[float]] = None,
                 *, sample_size: Optional[int] = None,
                 seed: int = 0) -> None:
        if not attributes or not similarities:
            raise ValueError("attributes and similarities must be non-empty")
        self.attributes = list(attributes)
        self.similarities = list(similarities)
        self.thresholds = list(thresholds) if thresholds is not None else None
        self.sample_size = sample_size
        self.seed = seed

    def _sampled(self, source: LogicalSource,
                 rng: random.Random) -> LogicalSource:
        if self.sample_size is None or len(source) <= self.sample_size:
            return source
        ids = rng.sample(source.ids(), self.sample_size)
        return source.subset(ids)

    def tune(self, domain: LogicalSource, range: LogicalSource,
             gold: Mapping) -> TuningResult:
        """Search the grid; return the best configuration found."""
        rng = random.Random(self.seed)
        domain = self._sampled(domain, rng)
        range_ = self._sampled(range, rng)
        gold = gold.restrict_domain(domain.ids()).restrict_range(range_.ids())

        trials: List[Tuple[dict, float]] = []
        best: Optional[TuningResult] = None
        for attribute, similarity in itertools.product(
                self.attributes, self.similarities):
            if isinstance(attribute, tuple):
                attr_a, attr_b = attribute
            else:
                attr_a = attr_b = attribute
            sim_name = (
                similarity if isinstance(similarity, str) else similarity.name
            )
            matcher = AttributeMatcher(attr_a, attr_b, similarity=similarity,
                                       threshold=0.0)
            fuzzy = matcher.match(domain, range_)
            if self.thresholds is None:
                threshold, _ = tune_threshold(fuzzy, gold)
                candidate_thresholds = [threshold]
            else:
                candidate_thresholds = self.thresholds
            for threshold in candidate_thresholds:
                predicted = {
                    (corr.domain, corr.range)
                    for corr in fuzzy if corr.similarity >= threshold
                }
                precision, recall, f1 = _prf(predicted, gold.pairs())
                params = {
                    "attribute": attr_a,
                    "range_attribute": attr_b,
                    "similarity": sim_name,
                    "threshold": threshold,
                }
                trials.append((params, f1))
                if best is None or f1 > best.f1:
                    best = TuningResult(params, precision, recall, f1)
        assert best is not None
        best.trials = trials
        return best


def tune_merge_weights(mappings: Sequence[Mapping], gold: Mapping,
                       *, steps: int = 5
                       ) -> Tuple[List[float], float, float]:
    """Grid-search merge weights; return ``(weights, threshold, f1)``.

    Enumerates weight vectors on a simplex grid with ``steps`` levels
    per mapping and, for each, finds the best threshold of the weighted
    merge against ``gold``.
    """
    if len(mappings) < 2:
        raise ValueError("weight tuning requires at least two mappings")
    if steps < 2:
        raise ValueError("steps must be >= 2")
    levels = [i / (steps - 1) for i in range(steps)]
    best_weights: List[float] = [1.0] * len(mappings)
    best_threshold, best_f1 = 1.0, -1.0
    for raw in itertools.product(levels, repeat=len(mappings)):
        if sum(raw) <= 0:
            continue
        merged = merge(mappings, "weighted", weights=list(raw))
        threshold, f1 = tune_threshold(merged, gold)
        if f1 > best_f1:
            best_weights, best_threshold, best_f1 = list(raw), threshold, f1
    return best_weights, best_threshold, best_f1


# ----------------------------------------------------------------------
# Decision tree learning
# ----------------------------------------------------------------------


@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None
    #: probability of the positive class at a leaf
    probability: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTree:
    """Minimal CART classifier with gini impurity splits.

    Supports exactly what matcher tuning needs: numeric features,
    binary labels, ``max_depth`` / ``min_samples_split`` regularization
    and probability predictions (positive fraction at the leaf).
    """

    def __init__(self, max_depth: int = 4, min_samples_split: int = 10) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self._root: Optional[_TreeNode] = None

    @staticmethod
    def _gini(positives: int, total: int) -> float:
        if total == 0:
            return 0.0
        p = positives / total
        return 2.0 * p * (1.0 - p)

    def _best_split(self, rows: List[Tuple[Sequence[float], int]]
                    ) -> Optional[Tuple[int, float, float]]:
        total = len(rows)
        total_pos = sum(label for _, label in rows)
        parent_gini = self._gini(total_pos, total)
        best: Optional[Tuple[int, float, float]] = None
        n_features = len(rows[0][0])
        for feature in range(n_features):
            ordered = sorted(rows,
                             key=lambda row, feature=feature: row[0][feature])
            left_pos = 0
            for i in range(1, total):
                left_pos += ordered[i - 1][1]
                value_prev = ordered[i - 1][0][feature]
                value_here = ordered[i][0][feature]
                if value_prev == value_here:
                    continue
                left_total = i
                right_total = total - i
                gini = (
                    left_total / total * self._gini(left_pos, left_total)
                    + right_total / total
                    * self._gini(total_pos - left_pos, right_total)
                )
                gain = parent_gini - gini
                if best is None or gain > best[2]:
                    best = (feature, (value_prev + value_here) / 2.0, gain)
        if best is None or best[2] <= 1e-12:
            return None
        return best

    def _build(self, rows: List[Tuple[Sequence[float], int]],
               depth: int) -> _TreeNode:
        total = len(rows)
        positives = sum(label for _, label in rows)
        node = _TreeNode(probability=positives / total if total else 0.0)
        if (depth >= self.max_depth or total < self.min_samples_split
                or positives == 0 or positives == total):
            return node
        split = self._best_split(rows)
        if split is None:
            return node
        feature, threshold, _ = split
        left_rows = [row for row in rows if row[0][feature] <= threshold]
        right_rows = [row for row in rows if row[0][feature] > threshold]
        if not left_rows or not right_rows:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(left_rows, depth + 1)
        node.right = self._build(right_rows, depth + 1)
        return node

    def fit(self, features: Sequence[Sequence[float]],
            labels: Sequence[int]) -> "DecisionTree":
        if len(features) != len(labels):
            raise ValueError("features and labels must have equal length")
        if not features:
            raise ValueError("cannot fit on an empty training set")
        rows = [(tuple(feature_row), int(label))
                for feature_row, label in zip(features, labels)]
        self._root = self._build(rows, depth=0)
        return self

    def predict_proba(self, feature_row: Sequence[float]) -> float:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        node = self._root
        while not node.is_leaf:
            if feature_row[node.feature] <= node.threshold:
                node = node.left  # type: ignore[assignment]
            else:
                node = node.right  # type: ignore[assignment]
        return node.probability

    def predict(self, feature_row: Sequence[float]) -> int:
        return 1 if self.predict_proba(feature_row) >= 0.5 else 0

    def depth(self) -> int:
        def walk(node: Optional[_TreeNode]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        return walk(self._root)


@dataclass
class FeatureSpec:
    """One similarity feature for decision-tree matching."""

    attribute: str
    range_attribute: Optional[str] = None
    similarity: Union[str, SimilarityFunction] = "trigram"

    def __post_init__(self) -> None:
        if self.range_attribute is None:
            self.range_attribute = self.attribute
        if isinstance(self.similarity, str):
            self.similarity = get_similarity(self.similarity)


class DecisionTreeMatcherTuner:
    """Learn a decision-tree match rule from gold training pairs.

    Training examples are the gold positives plus sampled negatives
    (non-matching pairs), each featurized with the configured
    similarity functions.  :meth:`fit` returns a matcher whose output
    similarity is the tree's positive-leaf probability.
    """

    def __init__(self, features: Sequence[FeatureSpec], *,
                 negatives_per_positive: int = 3,
                 max_depth: int = 4, min_samples_split: int = 10,
                 seed: int = 0) -> None:
        if not features:
            raise ValueError("at least one feature is required")
        self.features = list(features)
        self.negatives_per_positive = negatives_per_positive
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.seed = seed
        self.tree: Optional[DecisionTree] = None

    def _featurize(self, domain: LogicalSource, range_: LogicalSource,
                   id_a: str, id_b: str) -> List[float]:
        instance_a = domain.get(id_a)
        instance_b = range_.get(id_b)
        row: List[float] = []
        for spec in self.features:
            if instance_a is None or instance_b is None:
                row.append(0.0)
                continue
            row.append(spec.similarity.similarity(
                instance_a.get(spec.attribute),
                instance_b.get(spec.range_attribute),
            ))
        return row

    def fit(self, domain: LogicalSource, range_: LogicalSource,
            gold: Mapping) -> "TreeMatcher":
        rng = random.Random(self.seed)
        positives = [(corr.domain, corr.range) for corr in gold]
        if not positives:
            raise ValueError("gold mapping has no training positives")
        gold_pairs = set(positives)
        domain_ids = domain.ids()
        range_ids = range_.ids()
        negatives: List[Tuple[str, str]] = []
        target = len(positives) * self.negatives_per_positive
        attempts = 0
        while len(negatives) < target and attempts < target * 20:
            pair = (rng.choice(domain_ids), rng.choice(range_ids))
            attempts += 1
            if pair not in gold_pairs:
                negatives.append(pair)
        feature_rows: List[List[float]] = []
        labels: List[int] = []
        for id_a, id_b in positives:
            feature_rows.append(self._featurize(domain, range_, id_a, id_b))
            labels.append(1)
        for id_a, id_b in negatives:
            feature_rows.append(self._featurize(domain, range_, id_a, id_b))
            labels.append(0)
        self.tree = DecisionTree(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
        ).fit(feature_rows, labels)
        return TreeMatcher(self.features, self.tree)


class TreeMatcher(Matcher):
    """Matcher scoring pairs with a learned decision tree."""

    def __init__(self, features: Sequence[FeatureSpec], tree: DecisionTree,
                 *, threshold: float = 0.5) -> None:
        self.features = list(features)
        self.tree = tree
        self.threshold = threshold
        self.name = "decision-tree"

    def match(self, domain: LogicalSource, range: LogicalSource, *,
              candidates: Optional[Iterable[Tuple[str, str]]] = None) -> Mapping:
        pairs = candidates if candidates is not None else (
            self.cross_product(domain, range)
        )
        result = Mapping(domain.name, range.name, kind=MappingKind.SAME,
                         name=self.name)
        for id_a, id_b in pairs:
            instance_a = domain.get(id_a)
            instance_b = range.get(id_b)
            if instance_a is None or instance_b is None:
                continue
            row = [
                spec.similarity.similarity(
                    instance_a.get(spec.attribute),
                    instance_b.get(spec.range_attribute),
                )
                for spec in self.features
            ]
            probability = self.tree.predict_proba(row)
            if probability >= self.threshold:
                result.add(id_a, id_b, probability)
        return result
