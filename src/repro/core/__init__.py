"""MOMA's core: instance mappings, operators, matchers and workflows.

This package carries the paper's primary contribution.  The mapping
data structure and the operator algebra are imported eagerly; the
matcher / workflow / tuning layers are exposed lazily because they
depend on the :mod:`repro.model` substrate, which itself stores
:class:`~repro.core.mapping.Mapping` objects.
"""

from repro.core.correspondence import Correspondence, validate_similarity
from repro.core.mapping import Mapping, MappingKind
from repro.core.operators import (
    Best1DeltaSelection,
    BestNSelection,
    CompositeSelection,
    ConstraintSelection,
    MaxAttributeDifference,
    NotIdentity,
    Selection,
    ThresholdSelection,
    compose,
    difference,
    get_combination,
    hub_compose,
    intersection,
    mapping_union,
    merge,
    select,
    symmetrize,
    transitive_closure,
)

__all__ = [
    "AttributeMatcher",
    "AttributePair",
    "Best1DeltaSelection",
    "BestNSelection",
    "CompositeSelection",
    "ConstraintSelection",
    "Correspondence",
    "DecisionTree",
    "DecisionTreeMatcherTuner",
    "FeatureSpec",
    "GridSearchTuner",
    "Mapping",
    "MappingKind",
    "MatchContext",
    "MatchWorkflow",
    "Matcher",
    "MatcherLibrary",
    "MaxAttributeDifference",
    "MultiAttributeMatcher",
    "NeighborhoodMatcher",
    "NotIdentity",
    "OnlineMatcher",
    "Selection",
    "StrategyOutcome",
    "StrategySelector",
    "ThresholdSelection",
    "TuningResult",
    "author_neighborhood_workflow",
    "duplicate_author_workflow",
    "match_query_results",
    "publication_title_workflow",
    "venue_neighborhood_workflow",
    "compose",
    "default_library",
    "difference",
    "get_combination",
    "hub_compose",
    "intersection",
    "mapping_union",
    "merge",
    "neighborhood_match",
    "select",
    "symmetrize",
    "transitive_closure",
    "tune_merge_weights",
    "tune_threshold",
    "validate_similarity",
]

_LAZY = {
    "AttributeMatcher": ("repro.core.matchers.attribute", "AttributeMatcher"),
    "AttributePair": ("repro.core.matchers.multi_attribute", "AttributePair"),
    "MultiAttributeMatcher": (
        "repro.core.matchers.multi_attribute", "MultiAttributeMatcher"),
    "Matcher": ("repro.core.matchers.base", "Matcher"),
    "MatcherLibrary": ("repro.core.matchers.library", "MatcherLibrary"),
    "default_library": ("repro.core.matchers.library", "default_library"),
    "NeighborhoodMatcher": (
        "repro.core.matchers.neighborhood", "NeighborhoodMatcher"),
    "neighborhood_match": (
        "repro.core.matchers.neighborhood", "neighborhood_match"),
    "MatchContext": ("repro.core.workflow", "MatchContext"),
    "MatchWorkflow": ("repro.core.workflow", "MatchWorkflow"),
    "OnlineMatcher": ("repro.core.online", "OnlineMatcher"),
    "match_query_results": ("repro.core.online", "match_query_results"),
    "StrategySelector": ("repro.core.strategy", "StrategySelector"),
    "StrategyOutcome": ("repro.core.strategy", "StrategyOutcome"),
    "publication_title_workflow": (
        "repro.core.prebuilt", "publication_title_workflow"),
    "venue_neighborhood_workflow": (
        "repro.core.prebuilt", "venue_neighborhood_workflow"),
    "author_neighborhood_workflow": (
        "repro.core.prebuilt", "author_neighborhood_workflow"),
    "duplicate_author_workflow": (
        "repro.core.prebuilt", "duplicate_author_workflow"),
    "DecisionTree": ("repro.core.tuning", "DecisionTree"),
    "DecisionTreeMatcherTuner": (
        "repro.core.tuning", "DecisionTreeMatcherTuner"),
    "FeatureSpec": ("repro.core.tuning", "FeatureSpec"),
    "GridSearchTuner": ("repro.core.tuning", "GridSearchTuner"),
    "TuningResult": ("repro.core.tuning", "TuningResult"),
    "tune_merge_weights": ("repro.core.tuning", "tune_merge_weights"),
    "tune_threshold": ("repro.core.tuning", "tune_threshold"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value
