"""Tokenizer for the iFuice-style script language.

Token classes: keywords (``PROCEDURE``, ``RETURN``, ``END``),
variables (``$Name``), identifiers (dotted names such as
``DBLP.CoAuthor``), numbers, strings (double quotes), and punctuation
``( ) , =``.  ``#`` and ``//`` start line comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from repro.script.errors import ScriptSyntaxError

KEYWORDS = ("PROCEDURE", "RETURN", "END")


class TokenType(str, Enum):
    KEYWORD = "keyword"
    VARIABLE = "variable"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    LPAREN = "lparen"
    RPAREN = "rparen"
    COMMA = "comma"
    EQUALS = "equals"
    NEWLINE = "newline"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r}, line {self.line})"


def _is_identifier_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_identifier_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_.-/"


def tokenize(text: str) -> List[Token]:
    """Tokenize a script; raises :class:`ScriptSyntaxError` on bad input."""
    tokens: List[Token] = []
    line = 1
    index = 0
    length = len(text)

    def push(type_: TokenType, value: str) -> None:
        tokens.append(Token(type_, value, line))

    while index < length:
        ch = text[index]
        if ch == "\n":
            # collapse consecutive newlines into one statement separator
            if tokens and tokens[-1].type != TokenType.NEWLINE:
                push(TokenType.NEWLINE, "\n")
            line += 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            continue
        if ch == "#" or text.startswith("//", index):
            while index < length and text[index] != "\n":
                index += 1
            continue
        if ch == "(":
            push(TokenType.LPAREN, ch)
            index += 1
            continue
        if ch == ")":
            push(TokenType.RPAREN, ch)
            index += 1
            continue
        if ch == ",":
            push(TokenType.COMMA, ch)
            index += 1
            continue
        if ch == "=":
            push(TokenType.EQUALS, ch)
            index += 1
            continue
        if ch == '"':
            end = text.find('"', index + 1)
            if end < 0:
                raise ScriptSyntaxError("unterminated string literal", line)
            push(TokenType.STRING, text[index + 1:end])
            index = end + 1
            continue
        if ch == "$":
            start = index + 1
            end = start
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if end == start:
                raise ScriptSyntaxError("empty variable name after '$'", line)
            push(TokenType.VARIABLE, text[start:end])
            index = end
            continue
        if ch.isdigit() or (ch == "." and index + 1 < length
                            and text[index + 1].isdigit()):
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit()
                                    or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            push(TokenType.NUMBER, text[index:end])
            index = end
            continue
        if _is_identifier_start(ch):
            end = index
            while end < length and _is_identifier_char(text[end]):
                end += 1
            word = text[index:end]
            if word.upper() in KEYWORDS:
                push(TokenType.KEYWORD, word.upper())
            else:
                push(TokenType.IDENTIFIER, word)
            index = end
            continue
        raise ScriptSyntaxError(f"unexpected character {ch!r}", line)

    if tokens and tokens[-1].type != TokenType.NEWLINE:
        push(TokenType.NEWLINE, "\n")
    push(TokenType.EOF, "")
    return tokens
