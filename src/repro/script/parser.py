"""Recursive-descent parser for the script language.

Grammar::

    program    := statement*
    statement  := procedure | assignment | expression NEWLINE
    procedure  := PROCEDURE identifier "(" params ")" NEWLINE
                  statement* END NEWLINE
    assignment := VARIABLE "=" expression NEWLINE
    expression := call | VARIABLE | IDENTIFIER | NUMBER | STRING
    call       := IDENTIFIER "(" [expression ("," expression)*] ")"
"""

from __future__ import annotations

from typing import List

from repro.script.errors import ScriptSyntaxError
from repro.script.lexer import Token, TokenType, tokenize
from repro.script.nodes import (
    Assignment,
    Call,
    Expression,
    ExpressionStatement,
    Identifier,
    NumberLiteral,
    ProcedureDef,
    Program,
    Return,
    Statement,
    StringLiteral,
    VariableRef,
)


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.type != TokenType.EOF:
            self.position += 1
        return token

    def expect(self, type_: TokenType, description: str) -> Token:
        token = self.current
        if token.type != type_:
            raise ScriptSyntaxError(
                f"expected {description}, got {token.value!r}", token.line
            )
        return self.advance()

    def skip_newlines(self) -> None:
        while self.current.type == TokenType.NEWLINE:
            self.advance()

    def end_statement(self) -> None:
        if self.current.type == TokenType.EOF:
            return
        self.expect(TokenType.NEWLINE, "end of statement")

    # -- grammar -----------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        self.skip_newlines()
        while self.current.type != TokenType.EOF:
            program.statements.append(self.parse_statement())
            self.skip_newlines()
        return program

    def parse_statement(self) -> Statement:
        token = self.current
        if token.type == TokenType.KEYWORD and token.value == "PROCEDURE":
            return self.parse_procedure()
        if token.type == TokenType.KEYWORD and token.value == "RETURN":
            self.advance()
            expression = self.parse_expression()
            self.end_statement()
            return Return(expression, token.line)
        if token.type == TokenType.VARIABLE:
            # lookahead for '=' distinguishes assignment from bare use
            next_token = self.tokens[self.position + 1]
            if next_token.type == TokenType.EQUALS:
                self.advance()
                self.advance()
                expression = self.parse_expression()
                self.end_statement()
                return Assignment(token.value, expression, token.line)
        expression = self.parse_expression()
        self.end_statement()
        return ExpressionStatement(expression, token.line)

    def parse_procedure(self) -> ProcedureDef:
        start = self.expect(TokenType.KEYWORD, "PROCEDURE")
        name = self.expect(TokenType.IDENTIFIER, "procedure name").value
        self.expect(TokenType.LPAREN, "'('")
        parameters: List[str] = []
        if self.current.type != TokenType.RPAREN:
            while True:
                parameter = self.expect(TokenType.VARIABLE,
                                        "parameter variable")
                parameters.append(parameter.value)
                if self.current.type == TokenType.COMMA:
                    self.advance()
                    continue
                break
        self.expect(TokenType.RPAREN, "')'")
        self.end_statement()
        body: List[Statement] = []
        self.skip_newlines()
        while not (self.current.type == TokenType.KEYWORD
                   and self.current.value == "END"):
            if self.current.type == TokenType.EOF:
                raise ScriptSyntaxError(
                    f"procedure {name!r} is missing END", start.line
                )
            body.append(self.parse_statement())
            self.skip_newlines()
        self.advance()  # consume END
        self.end_statement()
        return ProcedureDef(name, tuple(parameters), tuple(body), start.line)

    def parse_expression(self) -> Expression:
        token = self.current
        if token.type == TokenType.NUMBER:
            self.advance()
            return NumberLiteral(float(token.value), token.line)
        if token.type == TokenType.STRING:
            self.advance()
            return StringLiteral(token.value, token.line)
        if token.type == TokenType.VARIABLE:
            self.advance()
            return VariableRef(token.value, token.line)
        if token.type == TokenType.IDENTIFIER:
            self.advance()
            if self.current.type == TokenType.LPAREN:
                self.advance()
                arguments: List[Expression] = []
                if self.current.type != TokenType.RPAREN:
                    # arguments may span lines inside the parentheses
                    self.skip_newlines()
                    while True:
                        arguments.append(self.parse_expression())
                        self.skip_newlines()
                        if self.current.type == TokenType.COMMA:
                            self.advance()
                            self.skip_newlines()
                            continue
                        break
                self.expect(TokenType.RPAREN, "')'")
                return Call(token.value, tuple(arguments), token.line)
            return Identifier(token.value, token.line)
        raise ScriptSyntaxError(
            f"unexpected token {token.value!r}", token.line
        )


def parse(text: str) -> Program:
    """Parse script source text into a :class:`Program`."""
    return _Parser(tokenize(text)).parse_program()
