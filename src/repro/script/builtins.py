"""Builtin functions of the script language.

Each builtin receives the engine and the evaluated argument list.  The
set mirrors the operators the paper's scripts use: ``attrMatch``,
``nhMatch``, ``merge``, ``compose``, ``select``, plus repository and
mapping utilities (``store``, ``load``, ``inverse``, ``identity``,
``threshold``, ``bestN``).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List

from repro.core.mapping import Mapping
from repro.core.matchers.attribute import AttributeMatcher
from repro.core.matchers.neighborhood import neighborhood_match
from repro.core.operators.compose import compose as compose_op
from repro.core.operators.merge import merge as merge_op
from repro.core.operators.selection import BestNSelection, ThresholdSelection
from repro.model.source import LogicalSource
from repro.script.constraints import ConstraintExpression
from repro.script.errors import ScriptRuntimeError

Builtin = Callable[[Any, List[Any]], Any]

_ATTR_RE = re.compile(r"^\[([A-Za-z_][A-Za-z0-9_]*)\]$")
_BEST_RE = re.compile(r"^best-?(\d+)$", re.IGNORECASE)


def _attr_name(spec: Any) -> str:
    """Parse the ``"[name]"`` attribute syntax of attrMatch."""
    if isinstance(spec, str):
        match = _ATTR_RE.match(spec.strip())
        if match:
            return match.group(1)
        return spec.strip()
    raise ScriptRuntimeError(f"expected attribute spec string, got {spec!r}")


def _require_mapping(value: Any, position: int, function: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise ScriptRuntimeError(
            f"{function}: argument {position} must be a mapping, "
            f"got {type(value).__name__}"
        )
    return value


def _require_source(value: Any, position: int,
                    function: str) -> LogicalSource:
    if not isinstance(value, LogicalSource):
        raise ScriptRuntimeError(
            f"{function}: argument {position} must be a logical source, "
            f"got {type(value).__name__}"
        )
    return value


def builtin_attr_match(engine, arguments: List[Any]) -> Mapping:
    """``attrMatch(ldsA, ldsB, Sim, threshold, "[attrA]", "[attrB]")``."""
    if len(arguments) < 4:
        raise ScriptRuntimeError(
            "attrMatch(ldsA, ldsB, similarity, threshold[, attrA[, attrB]])"
        )
    domain = _require_source(arguments[0], 1, "attrMatch")
    range_ = _require_source(arguments[1], 2, "attrMatch")
    similarity = arguments[2]
    if not isinstance(similarity, str):
        raise ScriptRuntimeError("attrMatch: similarity must be a name")
    threshold = float(arguments[3])
    attribute = _attr_name(arguments[4]) if len(arguments) > 4 else "name"
    range_attribute = (_attr_name(arguments[5])
                       if len(arguments) > 5 else attribute)
    matcher = AttributeMatcher(attribute, range_attribute,
                               similarity=similarity, threshold=threshold)
    return matcher.match(domain, range_)


def builtin_nh_match(engine, arguments: List[Any]) -> Mapping:
    """``nhMatch(asso1, same, asso2[, g2])`` — the paper's procedure."""
    if len(arguments) not in (3, 4):
        raise ScriptRuntimeError("nhMatch(asso1, same, asso2[, g2])")
    asso1 = _require_mapping(arguments[0], 1, "nhMatch")
    same = _require_mapping(arguments[1], 2, "nhMatch")
    asso2 = _require_mapping(arguments[2], 3, "nhMatch")
    g2 = arguments[3] if len(arguments) == 4 else "relative"
    if not isinstance(g2, str):
        raise ScriptRuntimeError("nhMatch: g2 must be a symbol")
    return neighborhood_match(asso1, same, asso2, g2=g2)


def builtin_merge(engine, arguments: List[Any]) -> Mapping:
    """``merge(m1, m2[, ...], function)``.

    The trailing argument is a combination-function symbol (Average,
    Min, Min0, Max, PreferMap1, ...); with only mappings given the
    default is Average.
    """
    if not arguments:
        raise ScriptRuntimeError("merge needs at least one mapping")
    function: Any = "avg"
    prefer = None
    mappings = list(arguments)
    last = mappings[-1]
    if isinstance(last, str):
        function = mappings.pop()
    elif isinstance(last, tuple) and last and last[0] == "prefer":
        mappings.pop()
        function = "prefer"
        prefer = last[1]
    resolved = [_require_mapping(m, i + 1, "merge")
                for i, m in enumerate(mappings)]
    return merge_op(resolved, function, prefer=prefer)


def builtin_compose(engine, arguments: List[Any]) -> Mapping:
    """``compose(m1, m2[, f[, g]])``."""
    if len(arguments) < 2:
        raise ScriptRuntimeError("compose(map1, map2[, f[, g]])")
    map1 = _require_mapping(arguments[0], 1, "compose")
    map2 = _require_mapping(arguments[1], 2, "compose")
    f = arguments[2] if len(arguments) > 2 else "min"
    g = arguments[3] if len(arguments) > 3 else "avg"
    if not isinstance(f, str) or not isinstance(g, str):
        raise ScriptRuntimeError("compose: f and g must be symbols")
    return compose_op(map1, map2, f, g)


def builtin_select(engine, arguments: List[Any]) -> Mapping:
    """``select(mapping, spec)``.

    ``spec`` is a threshold number, a ``best-N`` string, or an object
    value constraint such as ``"[domain.id]<>[range.id]"``.
    """
    if len(arguments) != 2:
        raise ScriptRuntimeError("select(mapping, spec)")
    mapping = _require_mapping(arguments[0], 1, "select")
    spec = arguments[1]
    if isinstance(spec, (int, float)):
        return ThresholdSelection(float(spec)).apply(mapping)
    if isinstance(spec, str):
        best = _BEST_RE.match(spec.strip())
        if best:
            return BestNSelection(int(best.group(1))).apply(mapping)
        constraint = ConstraintExpression(
            spec,
            domain_source=engine.resolve_source(mapping.domain),
            range_source=engine.resolve_source(mapping.range),
        )
        return mapping.filter(constraint)
    raise ScriptRuntimeError(f"select: cannot interpret spec {spec!r}")


def builtin_threshold(engine, arguments: List[Any]) -> Mapping:
    """``threshold(mapping, value)`` — explicit threshold selection."""
    if len(arguments) != 2:
        raise ScriptRuntimeError("threshold(mapping, value)")
    mapping = _require_mapping(arguments[0], 1, "threshold")
    return ThresholdSelection(float(arguments[1])).apply(mapping)


def builtin_best_n(engine, arguments: List[Any]) -> Mapping:
    """``bestN(mapping, n[, side])``."""
    if len(arguments) < 2:
        raise ScriptRuntimeError("bestN(mapping, n[, side])")
    mapping = _require_mapping(arguments[0], 1, "bestN")
    n = int(arguments[1])
    side = arguments[2] if len(arguments) > 2 else "domain"
    if not isinstance(side, str):
        raise ScriptRuntimeError("bestN: side must be a symbol")
    return BestNSelection(n, side=side).apply(mapping)


def builtin_inverse(engine, arguments: List[Any]) -> Mapping:
    """``inverse(mapping)``."""
    if len(arguments) != 1:
        raise ScriptRuntimeError("inverse(mapping)")
    return _require_mapping(arguments[0], 1, "inverse").inverse()


def builtin_identity(engine, arguments: List[Any]) -> Mapping:
    """``identity(lds)`` — the trivial same-mapping of a source."""
    if len(arguments) != 1:
        raise ScriptRuntimeError("identity(lds)")
    source = _require_source(arguments[0], 1, "identity")
    return Mapping.identity(source.name, source.ids())


def builtin_store(engine, arguments: List[Any]) -> Mapping:
    """``store(mapping, "name")`` — persist into the repository."""
    if len(arguments) != 2 or not isinstance(arguments[1], str):
        raise ScriptRuntimeError('store(mapping, "name")')
    if engine.repository is None:
        raise ScriptRuntimeError("store: engine has no repository")
    mapping = _require_mapping(arguments[0], 1, "store")
    engine.repository.save(arguments[1], mapping)
    return mapping


def builtin_load(engine, arguments: List[Any]) -> Mapping:
    """``load("name")`` — fetch from the repository."""
    if len(arguments) != 1 or not isinstance(arguments[0], str):
        raise ScriptRuntimeError('load("name")')
    if engine.repository is None:
        raise ScriptRuntimeError("load: engine has no repository")
    return engine.repository.load(arguments[0])


def builtin_size(engine, arguments: List[Any]) -> float:
    """``size(mapping)`` — number of correspondences (diagnostics)."""
    if len(arguments) != 1:
        raise ScriptRuntimeError("size(mapping)")
    return float(len(_require_mapping(arguments[0], 1, "size")))


def builtin_symmetrize(engine, arguments: List[Any]) -> Mapping:
    """``symmetrize(selfMapping)`` — add the reverse of every pair."""
    from repro.core.operators.setops import symmetrize

    if len(arguments) != 1:
        raise ScriptRuntimeError("symmetrize(mapping)")
    try:
        return symmetrize(_require_mapping(arguments[0], 1, "symmetrize"))
    except ValueError as error:
        raise ScriptRuntimeError(f"symmetrize: {error}") from error


def builtin_closure(engine, arguments: List[Any]) -> Mapping:
    """``closure(selfMapping)`` — transitive duplicate clusters (§4.1.2)."""
    from repro.core.operators.setops import transitive_closure

    if len(arguments) != 1:
        raise ScriptRuntimeError("closure(mapping)")
    try:
        return transitive_closure(
            _require_mapping(arguments[0], 1, "closure"))
    except ValueError as error:
        raise ScriptRuntimeError(f"closure: {error}") from error


def builtin_multi_attr_match(engine, arguments: List[Any]) -> Mapping:
    """``multiAttrMatch(ldsA, ldsB, Sim, threshold, "[a1],[a2]",
    "[b1],[b2]")`` — the §2.2 multi-attribute matcher (weighted avg)."""
    from repro.core.matchers.multi_attribute import (
        AttributePair,
        MultiAttributeMatcher,
    )

    if len(arguments) < 5:
        raise ScriptRuntimeError(
            "multiAttrMatch(ldsA, ldsB, similarity, threshold, "
            "attrsA[, attrsB])"
        )
    domain = _require_source(arguments[0], 1, "multiAttrMatch")
    range_ = _require_source(arguments[1], 2, "multiAttrMatch")
    similarity = arguments[2]
    if not isinstance(similarity, str):
        raise ScriptRuntimeError("multiAttrMatch: similarity must be a name")
    threshold = float(arguments[3])
    attrs_a = [_attr_name(part) for part in str(arguments[4]).split(",")]
    attrs_b = (
        [_attr_name(part) for part in str(arguments[5]).split(",")]
        if len(arguments) > 5 else attrs_a
    )
    if len(attrs_a) != len(attrs_b):
        raise ScriptRuntimeError(
            "multiAttrMatch: attribute lists must have equal length"
        )
    pairs = [AttributePair(a, b, similarity=similarity)
             for a, b in zip(attrs_a, attrs_b)]
    matcher = MultiAttributeMatcher(pairs, "avg", threshold)
    return matcher.match(domain, range_)


def default_builtins() -> Dict[str, Builtin]:
    """Builtin registry keyed by lowercase function name."""
    return {
        "attrmatch": builtin_attr_match,
        "multiattrmatch": builtin_multi_attr_match,
        "nhmatch": builtin_nh_match,
        "merge": builtin_merge,
        "compose": builtin_compose,
        "select": builtin_select,
        "threshold": builtin_threshold,
        "bestn": builtin_best_n,
        "inverse": builtin_inverse,
        "identity": builtin_identity,
        "symmetrize": builtin_symmetrize,
        "closure": builtin_closure,
        "store": builtin_store,
        "load": builtin_load,
        "size": builtin_size,
    }
