"""AST nodes of the script language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union


@dataclass(frozen=True)
class NumberLiteral:
    value: float
    line: int = 0


@dataclass(frozen=True)
class StringLiteral:
    value: str
    line: int = 0


@dataclass(frozen=True)
class VariableRef:
    """``$Name`` — a script variable reference."""

    name: str
    line: int = 0


@dataclass(frozen=True)
class Identifier:
    """Bare (possibly dotted) name: a mapping, source or symbol like Min."""

    name: str
    line: int = 0


@dataclass(frozen=True)
class Call:
    """``name ( arg, ... )`` — builtin or user procedure invocation."""

    name: str
    arguments: tuple
    line: int = 0


Expression = Union[NumberLiteral, StringLiteral, VariableRef, Identifier, Call]


@dataclass(frozen=True)
class Assignment:
    """``$Var = expression``."""

    target: str
    expression: Expression
    line: int = 0


@dataclass(frozen=True)
class Return:
    """``RETURN expression`` inside a procedure."""

    expression: Expression
    line: int = 0


@dataclass(frozen=True)
class ExpressionStatement:
    """A bare expression evaluated for its side effects."""

    expression: Expression
    line: int = 0


Statement = Union[Assignment, Return, ExpressionStatement, "ProcedureDef"]


@dataclass(frozen=True)
class ProcedureDef:
    """``PROCEDURE name(params) ... END``."""

    name: str
    parameters: tuple
    body: tuple
    line: int = 0


@dataclass
class Program:
    """A parsed script: a list of top-level statements."""

    statements: List[Statement] = field(default_factory=list)
