"""iFuice-style script language (paper §4).

MOMA match workflows are written as scripts over mapping operators::

    PROCEDURE nhMatch ( $Asso1, $Same, $Asso2 )
       $Temp   = compose ( $Asso1, $Same, Min, Average )
       $Result = compose ( $Temp, $Asso2, Min, Relative )
       RETURN $Result
    END

    $CoAuthSim = nhMatch ( DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor )
    $NameSim   = attrMatch ( DBLP.Author, DBLP.Author, Trigram, 0.5,
                             "[name]", "[name]" )
    $Merged    = merge ( $CoAuthSim, $NameSim, Average )
    $Result    = select ( $Merged, "[domain.id]<>[range.id]" )

This package provides the lexer, parser and interpreter for that
language, plus the builtin operator bindings and the constraint
expression evaluator used by ``select``.
"""

from repro.script.constraints import ConstraintExpression
from repro.script.errors import ScriptError, ScriptRuntimeError, ScriptSyntaxError
from repro.script.interpreter import ScriptEngine
from repro.script.lexer import Token, TokenType, tokenize
from repro.script.parser import parse

__all__ = [
    "ConstraintExpression",
    "ScriptEngine",
    "ScriptError",
    "ScriptRuntimeError",
    "ScriptSyntaxError",
    "Token",
    "TokenType",
    "parse",
    "tokenize",
]
