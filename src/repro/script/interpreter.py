"""Tree-walking interpreter for the script language.

The engine evaluates a parsed :class:`~repro.script.nodes.Program`
against an environment of named mappings and logical sources (usually
a :class:`~repro.model.smm.SourceMappingModel`).  User procedures
(``PROCEDURE ... END``) live alongside the builtins of
:mod:`repro.script.builtins`; ``nhMatch`` is predefined exactly as in
the paper but can be shadowed by a script-level procedure.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.mapping import Mapping
from repro.model.repository import MappingRepository
from repro.model.smm import SourceMappingModel
from repro.model.source import LogicalSource
from repro.script import builtins as script_builtins
from repro.script.errors import ScriptRuntimeError
from repro.script.nodes import (
    Assignment,
    Call,
    ExpressionStatement,
    Identifier,
    NumberLiteral,
    ProcedureDef,
    Program,
    Return,
    StringLiteral,
    VariableRef,
)
from repro.script.parser import parse

#: symbolic identifiers that evaluate to themselves (combination and
#: aggregation function names, similarity function names)
_SYMBOLS = {
    "min": "min", "minimum": "min", "min0": "min0",
    "max": "max", "maximum": "max",
    "avg": "avg", "average": "avg", "avg0": "avg0",
    "weighted": "weighted",
    "relative": "relative",
    "relativeleft": "relative_left",
    "relativeright": "relative_right",
    "sum": "sum",
    "trigram": "trigram", "tfidf": "tfidf", "affix": "affix",
    "levenshtein": "levenshtein", "jaro": "jaro",
    "jarowinkler": "jarowinkler", "exact": "exact", "year": "year",
    "jaccard": "jaccard", "personname": "personname",
    "mongeelkan": "mongeelkan", "softtfidf": "softtfidf",
    "name": "personname",
    "best1": "best-1", "threshold": "threshold",
}


class _ReturnSignal(Exception):
    """Internal control flow for RETURN inside procedures."""

    def __init__(self, value: Any) -> None:
        self.value = value


class ScriptEngine:
    """Evaluate scripts against sources, mappings and a repository."""

    def __init__(self, *,
                 smm: Optional[SourceMappingModel] = None,
                 repository: Optional[MappingRepository] = None,
                 sources: Optional[Dict[str, LogicalSource]] = None,
                 mappings: Optional[Dict[str, Mapping]] = None) -> None:
        self.smm = smm
        self.repository = repository
        self._sources: Dict[str, LogicalSource] = dict(sources or {})
        self._mappings: Dict[str, Mapping] = dict(mappings or {})
        self.variables: Dict[str, Any] = {}
        self.procedures: Dict[str, ProcedureDef] = {}
        self.builtins = script_builtins.default_builtins()

    # -- environment -----------------------------------------------------

    def add_source(self, source: LogicalSource) -> None:
        self._sources[source.name] = source

    def add_mapping(self, name: str, mapping: Mapping) -> None:
        self._mappings[name] = mapping

    def resolve_source(self, name: str) -> Optional[LogicalSource]:
        source = self._sources.get(name)
        if source is None and self.smm is not None:
            source = self.smm.get_source(name)
        return source

    def resolve_mapping(self, name: str) -> Optional[Mapping]:
        mapping = self._mappings.get(name)
        if mapping is None and self.smm is not None:
            mapping = self.smm.find_mapping(name)
        if mapping is None and self.repository is not None:
            if self.repository.contains(name):
                mapping = self.repository.load(name)
        return mapping

    def _resolve_identity_pattern(self, name: str) -> Optional[Mapping]:
        """``DBLP.AuthorAuthor`` -> identity mapping of ``DBLP.Author``.

        The paper's §4.3 script passes ``DBLP.AuthorAuthor`` as "an
        identity mapping of DBLP authors" without defining it anywhere;
        we synthesize it from the doubled object-type suffix.
        """
        if "." not in name:
            return None
        prefix, _, suffix = name.rpartition(".")
        if len(suffix) < 2 or len(suffix) % 2 != 0:
            return None
        half = len(suffix) // 2
        if suffix[:half] != suffix[half:]:
            return None
        source = self.resolve_source(f"{prefix}.{suffix[:half]}")
        if source is None:
            return None
        return Mapping.identity(source.name, source.ids())

    def resolve_identifier(self, name: str) -> Any:
        """Resolve a bare identifier: mapping, source, identity, symbol."""
        mapping = self.resolve_mapping(name)
        if mapping is not None:
            return mapping
        source = self.resolve_source(name)
        if source is not None:
            return source
        identity = self._resolve_identity_pattern(name)
        if identity is not None:
            return identity
        # PreferMap1 / PreferMap2 ... -> ("prefer", index)
        lowered = name.lower()
        if lowered.startswith("prefermap"):
            digits = lowered[len("prefermap"):]
            index = int(digits) - 1 if digits.isdigit() else 0
            return ("prefer", max(index, 0))
        symbol = _SYMBOLS.get(lowered.replace("-", "").replace("_", ""))
        if symbol is not None:
            return symbol
        raise ScriptRuntimeError(
            f"cannot resolve identifier {name!r} (not a mapping, source "
            "or known symbol)"
        )

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, node, local: Optional[Dict[str, Any]] = None) -> Any:
        if isinstance(node, NumberLiteral):
            return node.value
        if isinstance(node, StringLiteral):
            return node.value
        if isinstance(node, VariableRef):
            if local is not None and node.name in local:
                return local[node.name]
            if node.name in self.variables:
                return self.variables[node.name]
            raise ScriptRuntimeError(f"undefined variable ${node.name}")
        if isinstance(node, Identifier):
            return self.resolve_identifier(node.name)
        if isinstance(node, Call):
            return self._call(node, local)
        raise ScriptRuntimeError(f"cannot evaluate node {node!r}")

    def _call(self, node: Call, local: Optional[Dict[str, Any]]) -> Any:
        arguments = [self.evaluate(arg, local) for arg in node.arguments]
        procedure = self.procedures.get(node.name)
        if procedure is not None:
            return self._run_procedure(procedure, arguments)
        builtin = self.builtins.get(node.name.lower())
        if builtin is not None:
            return builtin(self, arguments)
        raise ScriptRuntimeError(f"unknown function {node.name!r}")

    def _run_procedure(self, procedure: ProcedureDef,
                       arguments: List[Any]) -> Any:
        if len(arguments) != len(procedure.parameters):
            raise ScriptRuntimeError(
                f"procedure {procedure.name!r} expects "
                f"{len(procedure.parameters)} arguments, got {len(arguments)}"
            )
        local = dict(zip(procedure.parameters, arguments))
        try:
            for statement in procedure.body:
                self._execute(statement, local)
        except _ReturnSignal as signal:
            return signal.value
        return None

    def _execute(self, statement, local: Optional[Dict[str, Any]]) -> Any:
        if isinstance(statement, ProcedureDef):
            self.procedures[statement.name] = statement
            return None
        if isinstance(statement, Assignment):
            value = self.evaluate(statement.expression, local)
            if local is not None:
                local[statement.target] = value
            else:
                self.variables[statement.target] = value
            return value
        if isinstance(statement, Return):
            raise _ReturnSignal(self.evaluate(statement.expression, local))
        if isinstance(statement, ExpressionStatement):
            return self.evaluate(statement.expression, local)
        raise ScriptRuntimeError(f"cannot execute statement {statement!r}")

    # -- entry points ----------------------------------------------------------

    def run(self, text: str) -> Any:
        """Parse and execute a script; return the last statement's value."""
        program: Program = parse(text)
        result: Any = None
        for statement in program.statements:
            value = self._execute(statement, None)
            if not isinstance(statement, ProcedureDef):
                result = value
        return result

    def call(self, name: str, *arguments: Any) -> Any:
        """Invoke a procedure or builtin directly from Python."""
        procedure = self.procedures.get(name)
        if procedure is not None:
            return self._run_procedure(procedure, list(arguments))
        builtin = self.builtins.get(name.lower())
        if builtin is not None:
            return builtin(self, list(arguments))
        raise ScriptRuntimeError(f"unknown function {name!r}")
