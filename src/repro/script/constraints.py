"""Constraint expressions for the ``select`` builtin (paper §3.3, §4.3).

The select step accepts domain-specific object value constraints such
as ``"[domain.id]<>[range.id]"`` or ``"[domain.year]-[range.year]<=1"``.
Grammar::

    constraint := operand op operand
    operand    := "[domain.ATTR]" | "[range.ATTR]"
                | operand "-" operand          (absolute difference)
                | number | 'string'
    op         := "=" | "<>" | "<=" | ">=" | "<" | ">"

``[domain.id]`` / ``[range.id]`` address the instance ids themselves;
any other attribute name reads from the resolved object instances.
The subtraction operand compares as an *absolute* numeric difference,
matching the paper's "years must not differ by more than one year".
"""

from __future__ import annotations

import re
from typing import Optional

from repro.core.correspondence import Correspondence
from repro.model.source import LogicalSource
from repro.script.errors import ScriptRuntimeError

_FIELD_RE = re.compile(r"\[(domain|range)\.([A-Za-z_][A-Za-z0-9_]*)\]")
_OPERATORS = ("<>", "<=", ">=", "=", "<", ">")


def _parse_operand(text: str):
    """Return a token list: fields, numbers, strings, '-' markers."""
    text = text.strip()
    if not text:
        raise ScriptRuntimeError("empty constraint operand")
    tokens = []
    position = 0
    while position < len(text):
        ch = text[position]
        if ch.isspace():
            position += 1
            continue
        match = _FIELD_RE.match(text, position)
        if match:
            tokens.append(("field", match.group(1), match.group(2)))
            position = match.end()
            continue
        if ch == "-":
            tokens.append(("minus",))
            position += 1
            continue
        if ch == "'":
            end = text.find("'", position + 1)
            if end < 0:
                raise ScriptRuntimeError(
                    f"unterminated string in constraint: {text!r}"
                )
            tokens.append(("string", text[position + 1:end]))
            position = end + 1
            continue
        number = re.match(r"\d+(?:\.\d+)?", text[position:])
        if number:
            tokens.append(("number", float(number.group())))
            position += len(number.group())
            continue
        raise ScriptRuntimeError(
            f"cannot parse constraint operand at {text[position:]!r}"
        )
    return tokens


def _as_number(value: object) -> Optional[float]:
    try:
        return float(str(value).strip())
    except (TypeError, ValueError):
        return None


class ConstraintExpression:
    """A compiled constraint usable as a correspondence predicate."""

    def __init__(self, text: str, *,
                 domain_source: Optional[LogicalSource] = None,
                 range_source: Optional[LogicalSource] = None,
                 keep_missing: bool = False) -> None:
        self.text = text
        self.domain_source = domain_source
        self.range_source = range_source
        self.keep_missing = keep_missing

        for operator in _OPERATORS:
            parts = text.split(operator)
            if len(parts) == 2:
                self.operator = operator
                self._left = _parse_operand(parts[0])
                self._right = _parse_operand(parts[1])
                break
        else:
            raise ScriptRuntimeError(
                f"constraint {text!r} has no comparison operator "
                f"(expected one of {_OPERATORS})"
            )
        # The '-' split collides with the comparison split only when the
        # operator itself was found; operand parsing validates the rest.

    # -- evaluation -----------------------------------------------------------

    def _field_value(self, side: str, attribute: str,
                     correspondence: Correspondence):
        instance_id = (correspondence.domain if side == "domain"
                       else correspondence.range)
        if attribute == "id":
            return instance_id
        source = (self.domain_source if side == "domain"
                  else self.range_source)
        if source is None:
            raise ScriptRuntimeError(
                f"constraint {self.text!r} needs the {side} source to "
                f"resolve attribute {attribute!r}"
            )
        instance = source.get(instance_id)
        if instance is None:
            return None
        return instance.get(attribute)

    def _operand_value(self, tokens, correspondence: Correspondence):
        values = []
        subtract = False
        for token in tokens:
            if token[0] == "minus":
                subtract = True
                continue
            if token[0] == "field":
                value = self._field_value(token[1], token[2], correspondence)
            elif token[0] == "number":
                value = token[1]
            else:
                value = token[1]
            values.append(value)
        if subtract:
            if len(values) != 2:
                raise ScriptRuntimeError(
                    f"difference operand needs two values in {self.text!r}"
                )
            number_a = _as_number(values[0])
            number_b = _as_number(values[1])
            if number_a is None or number_b is None:
                return None
            return abs(number_a - number_b)
        if len(values) != 1:
            raise ScriptRuntimeError(
                f"operand has {len(values)} values in {self.text!r}"
            )
        return values[0]

    def evaluate(self, correspondence: Correspondence) -> bool:
        left = self._operand_value(self._left, correspondence)
        right = self._operand_value(self._right, correspondence)
        if left is None or right is None:
            return self.keep_missing

        left_number = _as_number(left)
        right_number = _as_number(right)
        if left_number is not None and right_number is not None:
            left, right = left_number, right_number
        else:
            left, right = str(left), str(right)

        if self.operator == "=":
            return left == right
        if self.operator == "<>":
            return left != right
        if self.operator == "<=":
            return left <= right
        if self.operator == ">=":
            return left >= right
        if self.operator == "<":
            return left < right
        return left > right

    def __call__(self, correspondence: Correspondence) -> bool:
        return self.evaluate(correspondence)

    def __repr__(self) -> str:
        return f"ConstraintExpression({self.text!r})"
