"""Script language error hierarchy."""

from __future__ import annotations


class ScriptError(Exception):
    """Base class of all script-language errors."""


class ScriptSyntaxError(ScriptError):
    """Lexing or parsing failed; carries the offending line number."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class ScriptRuntimeError(ScriptError):
    """Evaluation failed (unknown name, bad argument, type mismatch)."""
