"""Chunk scoring: the engine's per-worker execution kernel.

A :class:`ChunkScorer` turns a chunk of candidate ``(domain id,
range id)`` pairs into surviving ``(domain id, range id, score)``
triples.  It is deliberately self-contained — sources, similarity
functions, threshold and combiner are all captured at construction —
so the *same* object drives both serial execution (one scorer in the
parent process) and parallel execution (one inherited copy per forked
worker, reached through the module-level ``_ACTIVE_SCORER`` slot).

Scoring is deterministic and cache-transparent: repeated value pairs
are resolved from a per-attribute memo, and every path evaluates the
similarity function through :meth:`SimilarityFunction.score_batch`,
which is bit-identical to per-pair ``similarity`` calls.  Worker-local
caches therefore cannot change results, only speed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.engine.request import MatchRequest

Pair = Tuple[str, str]
Triple = Tuple[str, str, float]


class ChunkScorer:
    """Score chunks of candidate pairs for one match request.

    Per attribute, a memo maps coerced ``(value_a, value_b)`` string
    pairs to scores; only distinct unseen value pairs reach the
    similarity function's ``score_batch``.  Blocking strategies that
    emit duplicate candidate pairs (token blocking, canopies) and
    sources with repeated attribute values both collapse onto cache
    hits.  The memo is cleared when it outgrows ``cache_limit`` to
    bound worker memory on very large runs.
    """

    def __init__(self, request: MatchRequest, *,
                 cache_limit: int = 1 << 20) -> None:
        self.domain = request.domain
        self.range = request.range
        self.specs = list(request.specs)
        self.threshold = request.threshold
        self.combiner = request.combiner
        self.missing = request.missing
        self.cache_limit = cache_limit
        self._caches: List[dict] = [{} for _ in self.specs]

    def score_chunk(self, pairs: Sequence[Pair]) -> List[Triple]:
        """Return the correspondences of ``pairs`` surviving the threshold."""
        if self.combiner is None:
            return self._score_single(pairs)
        return self._score_multi(pairs)

    # -- single attribute ----------------------------------------------

    def _score_single(self, pairs: Sequence[Pair]) -> List[Triple]:
        spec = self.specs[0]
        attribute = spec.attribute
        range_attribute = spec.range_attribute
        get_a = self.domain.get
        get_b = self.range.get
        cache = self._caches[0]
        missing_zero = self.missing == "zero"
        records: List[Tuple[str, str, Optional[Pair]]] = []
        pending: dict = {}
        for id_a, id_b in pairs:
            instance_a = get_a(id_a)
            instance_b = get_b(id_b)
            if instance_a is None or instance_b is None:
                continue
            value_a = instance_a.get(attribute)
            value_b = instance_b.get(range_attribute)
            if value_a is None or value_b is None:
                # Missing-value policy: "skip" produces no
                # correspondence; "zero" scores the pair 0.0, which
                # only a threshold-0 run can observe (the score > 0
                # filter drops it everywhere else).
                if missing_zero:
                    records.append((id_a, id_b, None))
                continue
            key = (str(value_a), str(value_b))
            records.append((id_a, id_b, key))
            if key not in cache and key not in pending:
                pending[key] = None
        fresh = self._score_pending(0, list(pending))
        threshold = self.threshold
        out: List[Triple] = []
        append = out.append
        for id_a, id_b, key in records:
            if key is None:
                if threshold <= 0.0:
                    append((id_a, id_b, 0.0))
                continue
            score = fresh.get(key)
            if score is None:
                score = cache[key]
            if score >= threshold and score > 0.0:
                append((id_a, id_b, score))
        self._merge_cache(0, fresh)
        return out

    # -- multiple attributes -------------------------------------------

    def _score_multi(self, pairs: Sequence[Pair]) -> List[Triple]:
        specs = self.specs
        caches = self._caches
        get_a = self.domain.get
        get_b = self.range.get
        records: List[Tuple[str, str, List[Optional[Pair]]]] = []
        pending: List[dict] = [{} for _ in specs]
        for id_a, id_b in pairs:
            instance_a = get_a(id_a)
            instance_b = get_b(id_b)
            if instance_a is None or instance_b is None:
                continue
            keys: List[Optional[Pair]] = []
            for index, spec in enumerate(specs):
                value_a = instance_a.get(spec.attribute)
                value_b = instance_b.get(spec.range_attribute)
                if value_a is None or value_b is None:
                    keys.append(None)
                else:
                    key = (str(value_a), str(value_b))
                    keys.append(key)
                    if key not in caches[index] and key not in pending[index]:
                        pending[index][key] = None
            records.append((id_a, id_b, keys))
        fresh = [self._score_pending(index, list(pending[index]))
                 for index in range(len(specs))]
        combine = self.combiner.combine
        threshold = self.threshold
        out: List[Triple] = []
        append = out.append
        for id_a, id_b, keys in records:
            values: List[Optional[float]] = []
            for index, key in enumerate(keys):
                if key is None:
                    values.append(None)
                    continue
                score = fresh[index].get(key)
                if score is None:
                    score = caches[index][key]
                values.append(score)
            score = combine(values)
            if score is not None and score >= threshold and score > 0.0:
                append((id_a, id_b, score))
        for index, chunk_fresh in enumerate(fresh):
            self._merge_cache(index, chunk_fresh)
        return out

    def _score_pending(self, index: int, work: List[Pair]) -> dict:
        """Score the chunk's unseen value pairs as a chunk-local dict.

        The shared memo is not touched here: cache maintenance happens
        in :meth:`_merge_cache` *after* the chunk's records have been
        served, so a cache reset can never invalidate keys the
        in-flight records still reference.
        """
        if not work:
            return {}
        scores = self.specs[index].similarity.score_batch(work)
        return dict(zip(work, scores))

    def _merge_cache(self, index: int, fresh: dict) -> None:
        """Fold a chunk's fresh scores into the bounded memo."""
        if not fresh:
            return
        cache = self._caches[index]
        if len(cache) + len(fresh) > self.cache_limit:
            cache.clear()
        if len(fresh) <= self.cache_limit:
            cache.update(fresh)


# ----------------------------------------------------------------------
# Worker-side plumbing.
#
# Parallel execution installs the scorer here *before* the pool forks
# (children inherit it through copy-on-write memory) or via the pool
# initializer when only spawn is available (the scorer is pickled once
# per worker).  Tasks then only ship chunks of id pairs in and
# surviving triples out, which keeps IPC payloads tiny.
# ----------------------------------------------------------------------

_ACTIVE_SCORER: Optional[ChunkScorer] = None


def _install_scorer(scorer: Optional[ChunkScorer]) -> None:
    global _ACTIVE_SCORER
    _ACTIVE_SCORER = scorer


def _score_chunk_task(pairs: Sequence[Pair]) -> List[Triple]:
    scorer = _ACTIVE_SCORER
    if scorer is None:  # pragma: no cover - defensive; engine installs first
        raise RuntimeError("no scorer installed in worker process")
    return scorer.score_chunk(pairs)


def _score_chunk_task_timed(pairs: Sequence[Pair]):
    """Like :func:`_score_chunk_task` but reporting worker-side seconds.

    Used by the engine's autotuner (``EngineConfig(auto=True)``): the
    chunk-size feedback loop wants pure scoring cost, excluding the
    queueing and IPC latency a parent-side measurement would fold in.
    """
    import time
    scorer = _ACTIVE_SCORER
    if scorer is None:  # pragma: no cover - defensive; engine installs first
        raise RuntimeError("no scorer installed in worker process")
    start = time.perf_counter()
    triples = scorer.score_chunk(pairs)
    return time.perf_counter() - start, triples
