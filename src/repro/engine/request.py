"""The engine's unit of work: a batch match request.

Matchers translate their configuration into a :class:`MatchRequest` —
which attributes to compare, with which similarity functions, over
which candidate pairs — and hand it to a
:class:`~repro.engine.engine.BatchMatchEngine` for execution.  Keeping
the request declarative is what lets one engine serve both the
single-attribute and the multi-attribute matcher, serially or across a
worker pool, without the matchers knowing how chunks are scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.core.operators.functions import CombinationFunction
from repro.model.source import LogicalSource
from repro.sim.base import SimilarityFunction

Pair = Tuple[str, str]


@dataclass
class AttributeSpec:
    """One attribute comparison executed by the engine."""

    attribute: str
    range_attribute: str
    similarity: SimilarityFunction

    def __post_init__(self) -> None:
        if not self.attribute or not self.range_attribute:
            raise ValueError("attribute names must be non-empty")


@dataclass
class MatchRequest:
    """Everything the engine needs to produce one same-mapping.

    ``combiner`` distinguishes the two matcher semantics: ``None``
    means single-attribute matching (exactly one spec; pairs with a
    missing value produce no correspondence), while a
    :class:`CombinationFunction` means multi-attribute matching
    (missing values become ``None`` slots resolved by the combiner's
    missing-value policy).

    ``missing`` is the single-attribute missing-value policy (mirroring
    :class:`~repro.core.matchers.attribute.AttributeMatcher`):
    ``"skip"`` produces no correspondence for a pair with a missing
    value, while ``"zero"`` scores such pairs 0.0 — observable only in
    ``threshold == 0`` diagnostics, since positive thresholds filter
    zero scores either way.  Multi-attribute requests ignore it: there
    a missing value becomes a ``None`` slot resolved by the combiner's
    own missing-value policy.

    Candidate pairs come from, in priority order: an explicit
    ``candidates`` iterable, the ``blocking`` strategy, or the full
    cross product of the two sources.

    The request also decides kernel eligibility: requests without an
    explicit candidate list can take a vectorized fast path — a
    single-attribute request through one kernel
    (:func:`repro.engine.vectorized.build_kernel`: q-gram bit kernel
    or sparse TF/IDF kernel), a multi-attribute request through the
    composed multi-spec kernel
    (:func:`repro.engine.vectorized.build_multi_kernel`: one aligned
    column per spec plus a vectorized combiner) when at least one spec
    has a real kernel.  The sharded path additionally requires a
    ``blocking`` object with an authoritative ``shards`` protocol.
    """

    domain: LogicalSource
    range: LogicalSource
    specs: List[AttributeSpec] = field(default_factory=list)
    threshold: float = 0.0
    combiner: Optional[CombinationFunction] = None
    candidates: Optional[Iterable[Pair]] = None
    blocking: Optional[object] = None
    missing: str = "skip"
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("match request needs at least one attribute spec")
        if self.combiner is None and len(self.specs) != 1:
            raise ValueError(
                "multiple attribute specs require a combination function"
            )
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in [0, 1], got {self.threshold!r}"
            )
        if self.missing not in ("skip", "zero"):
            raise ValueError(
                f"missing must be 'skip' or 'zero', got {self.missing!r}"
            )

    @property
    def is_self(self) -> bool:
        """True for self-matching (duplicate detection in one source)."""
        return self.domain is self.range or self.domain.name == self.range.name
