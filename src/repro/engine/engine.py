"""The parallel batch match engine.

Execution model (replacing the matchers' one-pair-at-a-time loops):

1. candidate pairs are streamed from an explicit iterable, a blocking
   strategy or the cross product, with self-matching dedup applied on
   the fly (reflexive pairs skipped, unordered duplicates dropped);
2. the stream is cut into fixed-size chunks (:mod:`repro.engine.chunks`);
3. each chunk is scored by a :class:`~repro.engine.scorer.ChunkScorer`
   — inline for ``workers=1``, or across a ``concurrent.futures``
   process pool otherwise — evaluating similarity functions through
   their batched ``score_batch`` kernels with per-attribute memoization;
4. surviving triples are merged into one :class:`Mapping` in chunk
   submission order, so serial and parallel execution produce
   *identical* mappings.

Workers are forked after ``prepare`` has run, so corpus-level indexes
(gram caches, TF/IDF document frequencies) are built once and shared
copy-on-write.  On platforms without ``fork`` the scorer is pickled to
each worker; if that fails the engine degrades to serial execution
rather than erroring.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import time
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.blocking.pair_generator import dedup_self_pairs
from repro.core.mapping import Mapping, MappingKind
from repro.engine import scorer as scorer_module
from repro.engine import vectorized
from repro.engine.chunks import AdaptiveChunker, iter_chunks
from repro.engine.request import MatchRequest
from repro.engine.scorer import ChunkScorer
from repro.engine.vectorized import IndexedScorer
from repro.obs.registry import percentile as obs_percentile

Pair = Tuple[str, str]
Triple = Tuple[str, str, float]

#: the workers autotuner never goes beyond this: past ~8 workers the
#: parent-side merge cursor and fork/IPC overhead eat the gains on the
#: engine's typical workloads
AUTO_MAX_WORKERS = 8


def autotune_workers(cpu_count: Optional[int] = None) -> int:
    """Derive a worker count from the machine's CPU count.

    One core is left for the parent process (candidate streaming and
    the merge cursor run there), the result is capped at
    :data:`AUTO_MAX_WORKERS`, and single-core machines stay serial.
    ``cpu_count`` defaults to ``os.cpu_count()``; pass it explicitly
    to test the decision.
    """
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    return max(1, min(AUTO_MAX_WORKERS, cpu_count - 1))


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs for batch execution.

    ``workers=1`` is the serial fallback (no processes, no IPC); the
    default ``workers=None`` means *unset* — it resolves to 1, or to
    :func:`autotune_workers` when ``auto=True`` (an explicit
    ``workers=`` always wins over the autotuner).  ``chunk_size``
    trades scheduling overhead against pipelining; the default suits
    pure-Python similarity kernels.  ``max_inflight`` bounds how many
    chunks may be queued on the pool ahead of the merge cursor
    (default ``2 * workers``), which caps memory while keeping every
    worker busy.
    """

    workers: Optional[int] = None
    chunk_size: int = 2048
    # repro: allow-cfg002 -- derived knob (2 * workers) for library
    # embedders; deliberately not a CLI surface
    max_inflight: Optional[int] = None
    #: opt-in best-effort duplicate-pair filter for two-source matching
    #: (entries, not bytes; 0 = off).  Useful when a custom candidate
    #: stream emits the same pair many times: the filter (reset when
    #: full, so memory stays bounded) saves their resolution and IPC
    #: cost.  Rescoring a duplicate is idempotent, so this is purely a
    #: performance knob; the built-in blocking strategies already
    #: deduplicate, hence off by default.
    # repro: allow-cfg002 -- opt-in library knob for custom candidate
    # streams; the CLI's built-in blocking already deduplicates
    dedup_limit: int = 0
    #: run candidate generation inside the workers (``repro.engine.
    #: shards``) instead of streaming every pair through the parent.
    #: Results are identical; on blocked workloads this removes the
    #: parent-side generation bottleneck.  Ignored (falling back to
    #: the streamed paths) for explicit candidate lists, blocking
    #: objects without an authoritative ``shards`` protocol, and
    #: multi-worker runs on platforms without ``fork``.
    shard_blocking: bool = False
    #: how many shards to cut the blocking work into (None = 4 per
    #: worker, which over-partitions enough to absorb *moderately*
    #: skewed blocks)
    n_shards: Optional[int] = None
    #: skew-aware rebalancing for ``shard_blocking`` runs: split
    #: oversized block groups (one stop-word token, one dominant key)
    #: and LPT-pack the pieces so no worker holds a long tail
    #: (:func:`repro.engine.shards.rebalance_shards`).  Results are
    #: identical; only the work distribution changes.  Off by default
    #: because unskewed workloads pay a small cost-estimation pass for
    #: nothing.
    balance_shards: bool = False
    #: self-tuning mode (CLI ``--auto``): the engine picks the knobs a
    #: user would otherwise hand-set.  ``chunk_size`` becomes an
    #: *initial guess* resized from observed per-chunk scoring
    #: throughput (:class:`repro.engine.chunks.AdaptiveChunker`); the
    #: sharded path is attempted whenever the blocking strategy can
    #: shard (falling back to streaming exactly like
    #: ``shard_blocking=True``); the rebalance bin count is derived
    #: from worker count and shard cost estimates; and
    #: ``balance_shards`` flips on automatically when the shard cost
    #: distribution is skewed (:func:`repro.engine.shards.
    #: autotune_plan`).  Sharded runs additionally feed measured
    #: shard durations back into the next run's shard count
    #: (:func:`repro.engine.shards.adapt_n_shards`) — slow shards
    #: split finer, trivial shards merge coarser, per engine
    #: instance.  Explicitly set knobs win: a non-``None``
    #: ``n_shards`` is respected and ``balance_shards=True`` forces
    #: balancing.  Results are identical either way — every knob the
    #: autotuner moves is a pure performance knob.
    auto: bool = False
    #: record per-stage timings (prepare / chunk scoring / shard
    #: durations) into ``engine.last_profile`` (CLI ``--profile``).
    #: Reuses the same timed task variants the ``auto`` chunker
    #: already runs, so the scored payloads — and therefore the
    #: results — are identical with profiling on or off.
    profile: bool = False

    def __post_init__(self) -> None:
        if self.workers is None:
            # unset: serial by default, CPU-derived under auto=True
            object.__setattr__(
                self, "workers",
                autotune_workers() if self.auto else 1)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        if self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size!r}"
            )
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight!r}"
            )
        if self.dedup_limit < 0:
            raise ValueError(
                f"dedup_limit must be >= 0, got {self.dedup_limit!r}"
            )
        if self.n_shards is not None and self.n_shards < 1:
            raise ValueError(
                f"n_shards must be >= 1, got {self.n_shards!r}"
            )

    @property
    def inflight(self) -> int:
        if self.max_inflight is not None:
            return self.max_inflight
        return max(2, 2 * self.workers)


class BatchMatchEngine:
    """Executes :class:`MatchRequest`\\ s serially or on a worker pool."""

    def __init__(self, config: Optional[EngineConfig] = None, *,
                 workers: Optional[int] = None,
                 chunk_size: Optional[int] = None) -> None:
        if config is None:
            config = EngineConfig()
        overrides = {}
        if workers is not None:
            overrides["workers"] = workers
        if chunk_size is not None:
            overrides["chunk_size"] = chunk_size
        if overrides:
            config = dataclasses.replace(config, **overrides)
        self.config = config
        #: online autotuner feedback: under ``auto=True`` with no
        #: explicit ``n_shards``, each sharded run's measured shard
        #: durations resize the next run's shard count
        #: (:func:`repro.engine.shards.adapt_n_shards`); a pure
        #: performance knob, results are identical for every count
        self._adapted_n_shards: Optional[int] = None
        #: per-stage timings of the last run (``config.profile`` only;
        #: see :meth:`profile_summary`)
        self.last_profile: Optional[dict] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BatchMatchEngine(workers={self.config.workers}, "
                f"chunk_size={self.config.chunk_size})")

    # -- execution -----------------------------------------------------

    def execute(self, request: MatchRequest) -> Mapping:
        """Run ``request`` and return its same-mapping."""
        profiling = self.config.profile
        self.last_profile = None
        if profiling:
            self.last_profile = {"path": None, "prepare_seconds": 0.0,
                                 "chunks": 0, "chunk_items": [],
                                 "chunk_seconds": [],
                                 "shard_seconds": []}
        begun = time.perf_counter() if profiling else 0.0
        self._prepare(request)
        if profiling:
            self.last_profile["prepare_seconds"] = \
                time.perf_counter() - begun
        result = Mapping(request.domain.name, request.range.name,
                         kind=MappingKind.SAME, name=request.name)
        if self.config.shard_blocking or self.config.auto:
            from repro.engine import shards as shards_module
            if shards_module.execute_sharded(self, request, result):
                self._profile_path("sharded")
                return result
            # not shardable (explicit candidates / foreign blocking
            # object): continue on the streamed paths below
        is_self = request.is_self
        if self.config.auto:
            chunks = AdaptiveChunker(self._pair_stream(request),
                                     self.config.chunk_size)
        else:
            chunks = iter_chunks(self._pair_stream(request),
                                 self.config.chunk_size)
        indexed = self._try_indexed(request)
        if indexed is not None:
            self._profile_path("indexed")
            self._run_indexed(indexed, chunks, result, is_self)
            return result
        scorer = ChunkScorer(request)
        if self.config.workers > 1:
            executed = self._execute_parallel(scorer, chunks, result, is_self)
            if executed:
                self._profile_path("parallel")
                return result
            # fell back (pool unavailable); continue serially below with
            # whatever chunks the parallel path did not consume.
        self._profile_path("serial")
        adaptive = chunks if isinstance(chunks, AdaptiveChunker) else None
        timed = adaptive is not None or profiling
        for chunk in chunks:
            start = time.perf_counter() if timed else 0.0
            triples = scorer.score_chunk(chunk)
            if timed:
                seconds = time.perf_counter() - start
                if adaptive:
                    adaptive.observe(len(chunk), seconds)
                self._profile_chunk(len(chunk), seconds)
            self._merge(result, triples, is_self)
        return result

    # -- profiling -----------------------------------------------------

    def _profile_path(self, path: str) -> None:
        if self.last_profile is not None:
            self.last_profile["path"] = path

    def _profile_chunk(self, items: int, seconds: float) -> None:
        profile = self.last_profile
        if profile is not None:
            profile["chunks"] += 1
            profile["chunk_items"].append(items)
            profile["chunk_seconds"].append(seconds)

    def profile_summary(self) -> Optional[dict]:
        """Per-stage summary of the last run (``None`` unless the
        engine ran with ``EngineConfig(profile=True)``)."""
        profile = self.last_profile
        if profile is None:
            return None
        chunk_seconds = profile["chunk_seconds"]
        shard_seconds = profile["shard_seconds"]
        return {
            "path": profile["path"],
            "prepare_seconds": profile["prepare_seconds"],
            "chunks": profile["chunks"],
            "score_seconds": sum(chunk_seconds) + sum(shard_seconds),
            "chunk_p50_seconds": obs_percentile(chunk_seconds, 0.50),
            "chunk_p99_seconds": obs_percentile(chunk_seconds, 0.99),
            "shards": len(shard_seconds),
        }

    def _try_indexed(self, request: MatchRequest) -> Optional[IndexedScorer]:
        """Build the vectorized fast path when the request is eligible.

        Single-attribute requests whose similarity has a bit-exact
        vector kernel — the q-gram bit kernel or the sparse TF/IDF
        kernel — score through packed numpy arrays.  Multi-attribute
        requests compose per-spec kernels (with scalar-fallback
        columns for kernel-less similarities) and a vectorized
        combiner (:func:`repro.engine.vectorized.build_multi_kernel`)
        when at least one spec has a real kernel.  Everything else
        uses the generic chunk scorer.
        Explicit candidate lists skip the kernel: they are typically
        tiny relative to the sources, and packing full source matrices
        to score a handful of pairs would cost more than it saves.
        """
        if request.candidates is not None:
            return None
        if request.combiner is not None or len(request.specs) != 1:
            kernel = vectorized.build_multi_kernel(request)
            if kernel is None:
                return None
            return IndexedScorer(kernel, request.domain.ids(),
                                 request.range.ids(), request.threshold)
        spec = request.specs[0]
        kernel = vectorized.build_kernel(
            spec.similarity, request.domain, request.range,
            spec.attribute, spec.range_attribute)
        if kernel is None:
            return None
        missing_zero = request.missing == "zero"
        domain_missing = range_missing = None
        if missing_zero:
            domain_values, range_values = vectorized.source_values(
                request.domain, request.range,
                spec.attribute, spec.range_attribute)
            domain_missing = vectorized.missing_mask(domain_values)
            range_missing = (domain_missing
                             if range_values is domain_values
                             else vectorized.missing_mask(range_values))
        return IndexedScorer(kernel, request.domain.ids(),
                             request.range.ids(), request.threshold,
                             missing_zero=missing_zero,
                             domain_missing=domain_missing,
                             range_missing=range_missing)

    def _prepare(self, request: MatchRequest) -> None:
        """Build corpus-level indexes before any pair is scored.

        Must run before workers fork so prepared state is inherited.
        """
        for spec in request.specs:
            corpus = request.domain.attribute_values(spec.attribute)
            if request.range is not request.domain:
                corpus = corpus + request.range.attribute_values(
                    spec.range_attribute)
            spec.similarity.prepare(corpus)

    def _pair_stream(self, request: MatchRequest) -> Iterator[Pair]:
        """Candidate pairs with duplicate suppression applied streamingly.

        Self-matching uses the exact unordered-pair dedup the matchers
        always had.  Two-source matching gets a *best-effort* filter
        bounded by ``dedup_limit``: blocking strategies may emit the
        same pair many times (once per shared token / canopy), and
        every duplicate that slips through costs resolution and IPC
        even though its score is memoized.  The filter resets when
        full; duplicates it misses are rescored idempotently, so
        results are unaffected.
        """
        pairs = self._raw_pairs(request)
        if not request.is_self:
            limit = self.config.dedup_limit
            if limit == 0:
                yield from pairs
                return
            seen: set = set()
            for pair in pairs:
                if pair in seen:
                    continue
                if len(seen) >= limit:
                    seen.clear()
                seen.add(pair)
                yield pair
            return
        yield from dedup_self_pairs(pairs)

    def _raw_pairs(self, request: MatchRequest) -> Iterable[Pair]:
        if request.candidates is not None:
            return request.candidates
        if request.blocking is not None:
            first = request.specs[0]
            return request.blocking.candidates(
                request.domain, request.range,
                domain_attribute=first.attribute,
                range_attribute=first.range_attribute,
            )
        return self._cross_product(request)

    @staticmethod
    def _cross_product(request: MatchRequest) -> Iterator[Pair]:
        if request.is_self:
            ids = request.domain.ids()
            for i, id_a in enumerate(ids):
                for id_b in ids[i + 1:]:
                    yield id_a, id_b
        else:
            range_ids = request.range.ids()
            for id_a in request.domain.ids():
                for id_b in range_ids:
                    yield id_a, id_b

    @staticmethod
    def _merge(result: Mapping, triples: List[Triple], is_self: bool) -> None:
        add = result.add
        if is_self:
            for id_a, id_b, score in triples:
                add(id_a, id_b, score)
                add(id_b, id_a, score)
        else:
            for id_a, id_b, score in triples:
                add(id_a, id_b, score)

    def _run_indexed(self, indexed: IndexedScorer,
                     chunks: Iterator[List[Pair]], result: Mapping,
                     is_self: bool) -> None:
        """Drive the vectorized path, serially or across the pool.

        The parent converts id-pair chunks to row arrays; workers (when
        ``workers > 1``) inherit the packed matrices through fork and
        return only surviving rows, so IPC is ~8 bytes per candidate
        pair plus the (sparse) survivors.
        """
        workers = self.config.workers
        adaptive = chunks if isinstance(chunks, AdaptiveChunker) else None
        timed = adaptive is not None or self.config.profile
        if workers > 1 and "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
            task = (vectorized._score_rows_task_timed if timed
                    else vectorized._score_rows_task)
            vectorized._install_indexed(indexed)
            pending: deque = deque()

            def drain() -> None:
                future, items = pending.popleft()
                payload = future.result()
                if timed:
                    seconds, survivors = payload
                    if adaptive:
                        adaptive.observe(items, seconds)
                    self._profile_chunk(items, seconds)
                else:
                    survivors = payload
                self._merge(result, indexed.triples(*survivors), is_self)

            try:
                with ProcessPoolExecutor(max_workers=workers,
                                         mp_context=context) as pool:
                    for chunk in chunks:
                        rows = indexed.convert(chunk)
                        pending.append((pool.submit(task, rows), len(chunk)))
                        if len(pending) >= self.config.inflight:
                            drain()
                    while pending:
                        drain()
            finally:
                vectorized._install_indexed(None)
            return
        for chunk in chunks:
            start = time.perf_counter() if timed else 0.0
            rows_a, rows_b = indexed.convert(chunk)
            survivors = indexed.score_rows(rows_a, rows_b)
            if timed:
                seconds = time.perf_counter() - start
                if adaptive:
                    adaptive.observe(len(chunk), seconds)
                self._profile_chunk(len(chunk), seconds)
            self._merge(result, indexed.triples(*survivors), is_self)

    # -- parallel path -------------------------------------------------

    def _execute_parallel(self, scorer: ChunkScorer,
                          chunks: Iterator[List[Pair]], result: Mapping,
                          is_self: bool) -> bool:
        """Score chunks on a process pool; returns False to fall back.

        Chunks are merged strictly in submission order, so the result
        is identical to serial execution regardless of which worker
        finishes first.
        """
        start_methods = multiprocessing.get_all_start_methods()
        if "fork" in start_methods:
            context = multiprocessing.get_context("fork")
            initializer, initargs = None, ()
        else:  # pragma: no cover - exercised only on spawn-only platforms
            context = multiprocessing.get_context()
            try:
                pickle.dumps(scorer)
            except Exception:
                warnings.warn(
                    "match request is not picklable and fork is "
                    "unavailable; falling back to serial execution",
                    RuntimeWarning, stacklevel=3)
                return False
            initializer, initargs = scorer_module._install_scorer, (scorer,)
        adaptive = chunks if isinstance(chunks, AdaptiveChunker) else None
        timed = adaptive is not None or self.config.profile
        task = (scorer_module._score_chunk_task_timed if timed
                else scorer_module._score_chunk_task)
        scorer_module._install_scorer(scorer)
        pending: deque = deque()

        def drain() -> None:
            future, items = pending.popleft()
            payload = future.result()
            if timed:
                seconds, triples = payload
                if adaptive:
                    adaptive.observe(items, seconds)
                self._profile_chunk(items, seconds)
            else:
                triples = payload
            self._merge(result, triples, is_self)

        try:
            with ProcessPoolExecutor(
                    max_workers=self.config.workers, mp_context=context,
                    initializer=initializer, initargs=initargs) as pool:
                for chunk in chunks:
                    pending.append((pool.submit(task, chunk), len(chunk)))
                    if len(pending) >= self.config.inflight:
                        drain()
                while pending:
                    drain()
        finally:
            scorer_module._install_scorer(None)
        return True


# ----------------------------------------------------------------------
# Process-wide default engine.
#
# Matchers without an explicit engine use this one, so a single
# configuration point (e.g. the CLI's --workers/--chunk-size flags)
# parallelizes every matcher in every workflow of the process.
# ----------------------------------------------------------------------

_default_engine: Optional[BatchMatchEngine] = None


def get_default_engine() -> BatchMatchEngine:
    """The engine used by matchers when none is injected (serial)."""
    global _default_engine
    if _default_engine is None:
        _default_engine = BatchMatchEngine()
    return _default_engine


def set_default_engine(engine: Optional[BatchMatchEngine]) -> None:
    """Replace the process default; ``None`` resets to a serial engine."""
    global _default_engine
    _default_engine = engine


def configure_default_engine(*, workers: Optional[int] = None,
                             chunk_size: int = 2048,
                             shard_blocking: bool = False,
                             n_shards: Optional[int] = None,
                             balance_shards: bool = False,
                             auto: bool = False,
                             profile: bool = False) -> BatchMatchEngine:
    """Build and install the process default engine; returns it.

    ``workers=None`` leaves the pool size to :class:`EngineConfig`:
    serial normally, CPU-derived under ``auto=True``.  ``n_shards``
    pins the sharded-blocking partition count (``None`` = derived).
    """
    engine = BatchMatchEngine(EngineConfig(workers=workers,
                                           chunk_size=chunk_size,
                                           shard_blocking=shard_blocking,
                                           n_shards=n_shards,
                                           balance_shards=balance_shards,
                                           auto=auto,
                                           profile=profile))
    set_default_engine(engine)
    return engine
