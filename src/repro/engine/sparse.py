"""Sparse vectorized TF/IDF kernel: engine kernel #2.

The q-gram family got its numpy fast path in PR 1 (packed bitmaps,
:mod:`repro.engine.vectorized`); TF/IDF cosine kept falling through to
the generic per-pair chunk scorer — a Python dict dot product per
candidate pair, now the slowest worker-side mode.  This module closes
that gap: each side's prepared TF/IDF vectors are packed **once per
request** into CSR-style arrays (``indptr`` / ``indices`` / ``data``
over the shared token vocabulary), and whole chunks or shards are then
scored as sparse dot products with four array operations (ragged
gather, keyed ``searchsorted``, elementwise multiply, ``bincount``
segment sum).

Bit-exactness.  The scalar ``TfIdfCosineSimilarity._score`` iterates
the smaller vector's ``(token, weight)`` items *in insertion order*
and accumulates ``weight * other.get(token, 0.0)`` left to right; the
absent-token terms contribute an exact ``+0.0``.  The kernel replays
precisely that computation:

* row weights are the very dicts :meth:`TfIdfCosineSimilarity.
  value_vector` produces (packed in insertion order), so every product
  multiplies the same two float64 values;
* per pair, the smaller row is expanded and its partner weights are
  fetched from the other side's ``(row, token)``-sorted key array —
  missing tokens fetch 0.0;
* ``np.bincount`` accumulates the products sequentially in input
  order, which is exactly the scalar loop's summation order, and the
  final clamp mirrors :meth:`SimilarityFunction.similarity`.

Equal-size ties follow the scalar tie-break (the lexicographically
smaller text's vector is expanded), so scores are also independent of
pair orientation — required by the block-vectorized sharded mode,
which may expand a self-matching pair in either orientation.

Eligibility mirrors the bit kernel: exact :class:`TfIdfCosineSimilarity`
scoring only.  A subclass overriding ``_score`` or ``vector`` (e.g.
:class:`SoftTfIdfSimilarity`) silently changes the math and must keep
using the generic batch path.  numpy is optional; without it (or over
the memory budget) :func:`build_tfidf_kernel` returns ``None``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - image always has numpy
    _np = None

from repro.model.source import LogicalSource
from repro.sim.base import SimilarityFunction
from repro.sim.tfidf import TfIdfCosineSimilarity

#: refuse to pack CSR arrays larger than this (bytes, both sides,
#: counting the insertion-order and lookup-sorted copies)
MAX_INDEX_BYTES = 512 * 1024 * 1024

#: bytes per packed vector entry: insertion-order indices (8) + data
#: (8) plus the lookup copy's keys (8) + data (8)
_BYTES_PER_ENTRY = 32


def numpy_available() -> bool:
    """True when the sparse kernel's numpy primitives exist.

    Unlike the bit kernel, nothing newer than ``searchsorted`` /
    ``bincount`` is needed, so any numpy qualifies.
    """
    return _np is not None


class _Side:
    """One source side's packed vectors.

    Two representations of the same rows: insertion-order CSR arrays
    (``indptr``/``indices``/``data``) for expansion — entry order
    within a row is the vector dict's insertion order, which the
    summation replays — and a ``(row, token)``-keyed, globally sorted
    copy (``keys``/``sorted_data``) for O(log nnz) partner lookups via
    ``searchsorted``.  ``rank`` holds each row's text's position in
    the lexicographic order of all texts (the scalar tie-break).
    """

    __slots__ = ("indptr", "indices", "data", "keys", "sorted_data",
                 "lengths", "rank")

    def __init__(self, vectors: List[Dict[str, float]],
                 vocabulary: Dict[str, int], vocab_size: int,
                 ranks: List[int]) -> None:
        n = len(vectors)
        nnz = sum(len(vector) for vector in vectors)
        self.indptr = _np.zeros(n + 1, dtype=_np.int64)
        self.indices = _np.empty(nnz, dtype=_np.int64)
        self.data = _np.empty(nnz, dtype=_np.float64)
        position = 0
        for row, vector in enumerate(vectors):
            for token, weight in vector.items():
                self.indices[position] = vocabulary[token]
                self.data[position] = weight
                position += 1
            self.indptr[row + 1] = position
        self.lengths = _np.diff(self.indptr)
        rows = _np.repeat(_np.arange(n, dtype=_np.int64), self.lengths)
        keys = rows * vocab_size + self.indices
        order = _np.argsort(keys, kind="stable")
        self.keys = keys[order]
        self.sorted_data = self.data[order]
        self.rank = _np.asarray(ranks, dtype=_np.int64)


class TfIdfKernel:
    """Sparse CSR scorer for one (domain, range) attribute pair.

    Rows align with ``source.ids()`` order, like the bit kernel; a
    missing (or token-free) value becomes an empty row that scores 0.0
    against everything and is dropped by the engine's ``score > 0``
    filter — the same outcome as the scalar missing-value skip.
    Exposes the same ``score_rows`` interface as
    :class:`~repro.engine.vectorized.NGramBitKernel`, so
    :class:`~repro.engine.vectorized.IndexedScorer` and the sharded
    block-vectorized mode drive it unchanged.
    """

    #: the expanded-side tie-break canonicalizes on the smaller text,
    #: so scores are independent of pair orientation by construction
    orientation_symmetric = True

    def __init__(self, sim: TfIdfCosineSimilarity,
                 domain_values: Sequence[object],
                 range_values: Sequence[object]) -> None:
        domain_vectors = [sim.value_vector(value) for value in domain_values]
        if range_values is domain_values:
            range_vectors = domain_vectors
        else:
            range_vectors = [sim.value_vector(value)
                             for value in range_values]
        nnz = (sum(len(vector) for vector in domain_vectors)
               + sum(len(vector) for vector in range_vectors))
        if nnz * _BYTES_PER_ENTRY > MAX_INDEX_BYTES:
            raise MemoryError("packed TF/IDF index exceeds budget")
        vocabulary: Dict[str, int] = {}
        for vectors in (domain_vectors, range_vectors):
            for vector in vectors:
                for token in vector:
                    if token not in vocabulary:
                        vocabulary[token] = len(vocabulary)
        self._vocab_size = max(1, len(vocabulary))

        def text(value: object) -> str:
            return "" if value is None else str(value)

        texts_d = [text(value) for value in domain_values]
        texts_r = (texts_d if range_values is domain_values
                   else [text(value) for value in range_values])
        order = {t: i for i, t in enumerate(sorted(set(texts_d + texts_r)))}
        self.domain = _Side(domain_vectors, vocabulary, self._vocab_size,
                            [order[t] for t in texts_d])
        if range_vectors is domain_vectors:
            self.range = self.domain
        else:
            self.range = _Side(range_vectors, vocabulary, self._vocab_size,
                               [order[t] for t in texts_r])

    def score_rows(self, domain_rows, range_rows):
        """Score aligned row-index arrays; returns a float64 array.

        Evaluates the scalar ``_score`` expression elementwise: per
        pair, the smaller row (tie: smaller text rank) is expanded and
        dotted against the other side, products summed in the expanded
        row's insertion order, result clamped to ``[0, 1]`` exactly as
        :meth:`SimilarityFunction.similarity` clamps.
        """
        rows_a = _np.asarray(domain_rows, dtype=_np.int64)
        rows_b = _np.asarray(range_rows, dtype=_np.int64)
        length_a = self.domain.lengths[rows_a]
        length_b = self.range.lengths[rows_b]
        expand_domain = (length_a < length_b) | (
            (length_a == length_b)
            & (self.domain.rank[rows_a] <= self.range.rank[rows_b]))
        scores = _np.zeros(len(rows_a), dtype=_np.float64)
        subset = _np.nonzero(expand_domain)[0]
        if len(subset):
            scores[subset] = self._dot(self.domain, rows_a[subset],
                                       self.range, rows_b[subset])
        subset = _np.nonzero(~expand_domain)[0]
        if len(subset):
            scores[subset] = self._dot(self.range, rows_b[subset],
                                       self.domain, rows_a[subset])
        _np.clip(scores, 0.0, 1.0, out=scores)
        return scores

    def score_bound_rows(self, domain_rows, range_rows):
        """Per-pair score upper bounds from packed vector lengths alone.

        The final clamp caps every cosine at 1.0, and a pair with an
        empty packed row on either side scores exactly 0.0 (no token
        can match), so the cap tightens to 0.0 there.  Exists so
        bound-driven prefilters (the serve tier's candidate-pair
        prefilter, :class:`~repro.engine.vectorized.MultiSpecKernel`'s
        per-combiner threshold prefilter) can treat every kernel
        uniformly; a nontrivial sparse bound would cost a gather per
        vector entry, not worth it when the clamp already gives an
        exact cap.
        """
        empty = (self.domain.lengths[domain_rows] == 0) \
            | (self.range.lengths[range_rows] == 0)
        return _np.where(empty, 0.0, 1.0)

    def _dot(self, expand: _Side, expand_rows, lookup: _Side, lookup_rows):
        """Dot each expanded row against its partner row on the other side.

        The ragged expansion enumerates every ``(pair, token, weight)``
        entry of the expanded rows in stored (insertion) order; partner
        weights come from one vectorized ``searchsorted`` over the
        lookup side's ``(row, token)`` keys; ``bincount`` then sums each
        pair's products sequentially in input order — the scalar loop.
        """
        lengths = expand.lengths[expand_rows]
        total = int(lengths.sum())
        count = len(expand_rows)
        if total == 0 or len(lookup.keys) == 0:
            return _np.zeros(count, dtype=_np.float64)
        pair_ids = _np.repeat(_np.arange(count, dtype=_np.int64), lengths)
        ends = _np.cumsum(lengths)
        flat = (_np.arange(total, dtype=_np.int64)
                - _np.repeat(ends - lengths, lengths)
                + _np.repeat(expand.indptr[expand_rows], lengths))
        tokens = expand.indices[flat]
        weights = expand.data[flat]
        queries = _np.repeat(lookup_rows, lengths) * self._vocab_size + tokens
        positions = _np.searchsorted(lookup.keys, queries)
        in_range = positions < len(lookup.keys)
        safe = _np.where(in_range, positions, 0)
        matched = in_range & (lookup.keys[safe] == queries)
        partners = _np.where(matched, lookup.sorted_data[safe], 0.0)
        return _np.bincount(pair_ids, weights=weights * partners,
                            minlength=count)


def build_tfidf_kernel(sim: SimilarityFunction,
                       domain: LogicalSource, range_: LogicalSource,
                       attribute: str,
                       range_attribute: str) -> Optional[TfIdfKernel]:
    """Build a sparse TF/IDF kernel for ``sim``, or ``None``.

    Only exact :class:`TfIdfCosineSimilarity` scoring is eligible: a
    subclass overriding ``_score`` or ``vector`` (SoftTFIDF's fuzzy
    token matching, notably) computes different math and falls back to
    the generic batch path.
    """
    if not numpy_available():
        return None
    if not isinstance(sim, TfIdfCosineSimilarity):
        return None
    if type(sim)._score is not TfIdfCosineSimilarity._score:
        return None
    if type(sim).vector is not TfIdfCosineSimilarity.vector:
        return None
    domain_values = [instance.get(attribute) for instance in domain]
    if range_ is domain and range_attribute == attribute:
        range_values: Sequence[object] = domain_values
    else:
        range_values = [instance.get(range_attribute) for instance in range_]
    try:
        return TfIdfKernel(sim, domain_values, range_values)
    except MemoryError:
        return None
