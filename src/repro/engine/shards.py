"""Sharded execution: candidate generation *and* scoring in workers.

The streamed parallel path (:mod:`repro.engine.engine`) generates
every candidate pair in the parent and ships chunks to workers — on
blocked workloads the pure-Python pair generation serializes the run
(Amdahl).  The sharded path removes that bottleneck: the parent asks
the blocking strategy for *shards* (:meth:`PairGenerator.shards` —
key groups, posting-list ranges, window segments, seed partitions, id
tiles), builds the scoring state, and forks.  Workers inherit
everything copy-on-write, receive only a shard index, generate their
shard's pairs locally and return the surviving triples; nothing
per-pair ever crosses a process boundary.

Two worker-side scoring modes:

* **block-vectorized** — when the request is eligible for the
  q-gram bit kernel *and* the shard exposes an :class:`IdBlock`
  structure, pairs are expanded directly as packed row arrays
  (``np.repeat``/``np.tile``) and scored in bulk — no Python tuple is
  ever created per pair.  Duplicate pairs across blocks/shards are
  scored redundantly instead of deduplicated: scoring is
  deterministic, the result mapping is keyed, and on measured
  workloads re-scoring ~30% duplicates is far cheaper than sorting
  tens of millions of pair codes.
* **streamed** — any other shard iterates ``shard.pairs()`` through
  the same chunk scorers the serial path uses.

Shard-payload contract (the other side of :meth:`PairGenerator.
shards`): the :class:`ShardRunner` — shard list, request, scoring
state — is installed in the parent *before* the pool forks, so
workers inherit everything copy-on-write; each task carries one int
**shard index in** and returns only the **survivors out** — ``("rows",
(rows_a, rows_b, scores))`` arrays from the vectorized modes or
``("triples", [...])`` from the generic scorer.

Skewed block-size distributions (one stop-word token, one dominant
blocking key) leave the naive shard list with a long tail: one shard
holds most of the work and its worker finishes long after the rest.
:func:`rebalance_shards` is the skew-aware fix — shards expose cost
estimates (:meth:`PairShard.cost`), oversized block groups are *split*
(down to row/column slices of a single giant block) and the pieces
greedily bin-packed, largest first, onto the least-loaded of
``n_shards`` bins (classic LPT), so no bin exceeds ~2x the mean load.
Opt in with ``EngineConfig(balance_shards=True)`` / CLI
``--balance-shards``.

Correctness contract: for every blocking strategy the sharded result
mapping equals the serial result mapping exactly, balanced or not.
Shard pair sets union to the serial candidate set (splitting
partitions blocks pair-exactly; packing only concatenates), scores
depend only on the value pair, and the merge is idempotent for
duplicates, so shard order, splitting and duplication cannot change
the outcome.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

from repro.blocking.pair_generator import (
    BlockShard,
    FullCross,
    IdBlock,
    PairGenerator,
    PairShard,
    dedup_self_pairs,
    partition_spans,
)
from repro.engine.chunks import iter_chunks
from repro.engine.request import MatchRequest
from repro.engine.scorer import ChunkScorer
from repro.engine.vectorized import IndexedScorer

try:  # numpy backs the block-vectorized mode; optional like elsewhere
    import numpy as _np
except ImportError:  # pragma: no cover - image always has numpy
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import BatchMatchEngine

Pair = Tuple[str, str]
Triple = Tuple[str, str, float]

#: row-array slice size for one vectorized scoring call; bounds worker
#: memory at a few MB per in-flight slice while amortizing numpy call
#: overhead over ~1M pairs
ROWS_PER_CALL = 1 << 20


class ShardRunner:
    """Executes one shard end-to-end; lives in the parent, runs anywhere.

    Built (and installed in the module slot) before the pool forks, so
    workers inherit the shard list, sources, similarity state and
    packed kernel matrices copy-on-write and tasks only carry a shard
    index.  Exactly one of ``indexed`` / ``scorer`` is set.
    """

    def __init__(self, shards: Sequence[PairShard], request: MatchRequest,
                 chunk_size: int, indexed: Optional[IndexedScorer],
                 scorer: Optional[ChunkScorer]) -> None:
        self.shards = list(shards)
        self.is_self = request.is_self
        self.chunk_size = chunk_size
        self.indexed = indexed
        self.scorer = scorer

    def run(self, shard_index: int):
        """Score one shard; returns a payload for :func:`merge_payload`.

        Payloads are ``("rows", (rows_a, rows_b, scores))`` from the
        vectorized modes (int/float arrays — the parent maps rows back
        to ids) or ``("triples", [...])`` from the generic scorer.

        Self-matching block expansion may emit a pair in either
        orientation, so the block-vectorized mode additionally
        requires an orientation-symmetric kernel; composed
        multi-attribute kernels carrying a scalar-fallback column
        (whose wrapped similarity may be asymmetric) take the
        orientation-faithful pair stream instead.
        """
        shard = self.shards[shard_index]
        if self.indexed is not None:
            blocks = shard.blocks()
            symmetric = getattr(self.indexed.kernel,
                                "orientation_symmetric", False)
            if blocks is not None and _np is not None \
                    and (symmetric or not self.is_self):
                return "rows", self._run_blocks(blocks)
            return "rows", self._run_pairs_indexed(shard)
        return "triples", self._run_pairs_scorer(shard)

    # -- block-vectorized mode -----------------------------------------

    def _block_rows(self, block: IdBlock):
        """Row arrays of a block's id lists (ids unknown to the request's
        sources are dropped, mirroring ``IndexedScorer.convert``)."""
        indexed = self.indexed
        domain_row = indexed._domain_rows.get
        rows_d = [row for row in map(domain_row, block.domain_ids)
                  if row is not None]
        if block.triangle:
            # self-matching: both sides index the same source/matrix
            return (_np.asarray(rows_d, dtype=_np.int32), None)
        range_row = indexed._range_rows.get
        rows_r = [row for row in map(range_row, block.range_ids)
                  if row is not None]
        return (_np.asarray(rows_d, dtype=_np.int32),
                _np.asarray(rows_r, dtype=_np.int32))

    def _expand_blocks(self, blocks: Iterator[IdBlock]):
        """Yield (rows_a, rows_b) array slices of at most ROWS_PER_CALL."""
        for block in blocks:
            rows_d, rows_r = self._block_rows(block)
            if rows_r is None:  # triangle: pairs (i, j) with j > i
                k = len(rows_d)
                i = 0
                while i < k - 1:
                    j = i
                    budget = 0
                    while j < k - 1 and budget + (k - 1 - j) <= ROWS_PER_CALL:
                        budget += k - 1 - j
                        j += 1
                    if j == i:  # single row exceeds the budget: take it
                        j = i + 1
                    counts = _np.arange(k - 1 - i, k - 1 - j, -1)
                    rows_a = _np.repeat(rows_d[i:j], counts)
                    rows_b = _np.concatenate(
                        [rows_d[m + 1:] for m in range(i, j)])
                    yield rows_a, rows_b
                    i = j
            else:
                width = len(rows_r)
                if width == 0 or len(rows_d) == 0:
                    continue
                step = max(1, ROWS_PER_CALL // width)
                for start in range(0, len(rows_d), step):
                    left = rows_d[start:start + step]
                    yield (_np.repeat(left, width),
                           _np.tile(rows_r, len(left)))

    def _run_blocks(self, blocks: Iterator[IdBlock]):
        indexed = self.indexed
        out_a, out_b, out_s = [], [], []
        for rows_a, rows_b in self._expand_blocks(blocks):
            kept_a, kept_b, kept_s = indexed.score_rows(rows_a, rows_b)
            if len(kept_a):
                out_a.append(kept_a)
                out_b.append(kept_b)
                out_s.append(kept_s)
        if not out_a:
            empty_rows = _np.asarray([], dtype=_np.int32)
            return empty_rows, empty_rows, _np.asarray([], dtype=_np.float64)
        return (_np.concatenate(out_a), _np.concatenate(out_b),
                _np.concatenate(out_s))

    # -- streamed modes -------------------------------------------------

    def _shard_pairs(self, shard: PairShard) -> Iterator[Pair]:
        """The shard's pair stream with self-matching hygiene applied.

        Mirrors the serial path's ``_pair_stream`` through the shared
        :func:`dedup_self_pairs` filter (shard-locally — cross-shard
        duplicates resolve idempotently at the merge).  Required for
        custom strategies whose shards may not canonicalize; harmless
        for the built-ins, which already do.
        """
        pairs = shard.pairs()
        if not self.is_self:
            yield from pairs
            return
        yield from dedup_self_pairs(pairs)

    def _run_pairs_indexed(self, shard: PairShard):
        indexed = self.indexed
        out_a, out_b, out_s = [], [], []
        for chunk in iter_chunks(self._shard_pairs(shard), self.chunk_size):
            rows_a, rows_b = indexed.convert(chunk)
            kept_a, kept_b, kept_s = indexed.score_rows(rows_a, rows_b)
            if len(kept_a):
                out_a.append(kept_a)
                out_b.append(kept_b)
                out_s.append(kept_s)
        if not out_a:
            empty_rows = _np.asarray([], dtype=_np.int32)
            return empty_rows, empty_rows, _np.asarray([], dtype=_np.float64)
        return (_np.concatenate(out_a), _np.concatenate(out_b),
                _np.concatenate(out_s))

    def _run_pairs_scorer(self, shard: PairShard) -> List[Triple]:
        scorer = self.scorer
        triples: List[Triple] = []
        for chunk in iter_chunks(self._shard_pairs(shard), self.chunk_size):
            triples.extend(scorer.score_chunk(chunk))
        return triples


# ----------------------------------------------------------------------
# skew-aware shard rebalancing
# ----------------------------------------------------------------------

class CompositeShard(PairShard):
    """Several shards executed as one unit (an LPT bin).

    ``pairs()`` chains the members' streams, preserving each member's
    own dedup/canonicalization; ``blocks()`` chains the members' block
    views when *every* member has one (mixing would silently drop the
    block-less members from the vectorized mode), ``None`` otherwise.
    """

    def __init__(self, members: Sequence[PairShard]) -> None:
        self.members = list(members)

    def pairs(self) -> Iterator[Pair]:
        for member in self.members:
            yield from member.pairs()

    def blocks(self) -> Optional[Iterator[IdBlock]]:
        views = []
        for member in self.members:
            view = member.blocks()
            if view is None:
                return None
            views.append(view)

        def chain() -> Iterator[IdBlock]:
            for view in views:
                yield from view

        return chain()

    def cost(self) -> Optional[int]:
        costs = [member.cost() for member in self.members]
        if any(cost is None for cost in costs):
            return None
        return sum(costs)


def _explode_block(block: IdBlock, target: int) -> Iterator[IdBlock]:
    """Split one block into pieces of at most ~``target`` pairs.

    Pair-exact: the union of the pieces' pairs equals the block's
    pairs.  Triangles decompose into *row bands* of ~``target`` pairs
    — the band's own (sub-)triangle plus one band x tail rectangle —
    so piece count and materialized id references stay
    O(pair_count / target), not O(rows); oversized rectangles slice
    their longer dimension.  Orientation of triangle-derived
    rectangle pairs becomes block order, which :class:`BlockShard`'s
    ``canonical`` flag re-orients for strategies whose serial stream
    emits ``(min id, max id)``.
    """
    if block.pair_count() <= target:
        yield block
        return
    if block.triangle:
        ids = list(block.domain_ids)
        n = len(ids)
        start = 0
        while start < n - 1:
            # rows [start, end) whose remaining-pair costs (n - 1 - i)
            # sum to ~target; a single row may exceed it and is taken
            # alone (its rectangle recurses into range-side slices)
            end = start
            budget = 0
            while end < n - 1 and (end == start
                                   or budget + (n - 1 - end) <= target):
                budget += n - 1 - end
                end += 1
            band = ids[start:end]
            if len(band) > 1:
                yield IdBlock(band, band, triangle=True)
            tail = ids[end:]
            if tail:
                yield from _explode_block(IdBlock(band, tail), target)
            start = end
        return
    domain_ids = list(block.domain_ids)
    range_ids = list(block.range_ids)
    if len(domain_ids) > 1:
        step = max(1, target // max(1, len(range_ids)))
        for start in range(0, len(domain_ids), step):
            yield from _explode_block(
                IdBlock(domain_ids[start:start + step], range_ids), target)
        return
    step = max(1, target)
    for start in range(0, len(range_ids), step):
        yield IdBlock(domain_ids, range_ids[start:start + step])


def _split_shard(shard: PairShard, cost: int,
                 target: int) -> List[Tuple[PairShard, int]]:
    """Split one oversized shard into ~``target``-cost pieces.

    Only block-structured shards can split (their pair sets partition
    cleanly); anything else is returned whole.  Pieces inherit the
    shard's dedup/canonical behavior — shard-local dedup weakens to
    piece-local, so duplicate pairs may now span pieces, which the
    idempotent merge already absorbs.
    """
    blocks_view = shard.blocks()
    if blocks_view is None:
        return [(shard, cost)]
    dedup = bool(getattr(shard, "dedup", False))
    canonical = bool(getattr(shard, "canonical", False))
    exploded: List[IdBlock] = []
    for block in blocks_view:
        exploded.extend(_explode_block(block, target))
    if len(exploded) <= 1:
        return [(shard, cost)]
    spans = partition_spans([block.pair_count() for block in exploded],
                            max(1, -(-cost // target)))
    pieces: List[Tuple[PairShard, int]] = []
    for start, end in spans:
        piece_blocks = exploded[start:end]
        pieces.append((
            BlockShard(lambda bs=piece_blocks: iter(bs),
                       dedup=dedup, canonical=canonical),
            sum(block.pair_count() for block in piece_blocks),
        ))
    return pieces


def rebalance_shards(shards: Sequence[PairShard],
                     n_shards: int) -> List[PairShard]:
    """Rebalance a skewed shard list: split the long tail, LPT-pack.

    Deterministic: costs come from :meth:`PairShard.cost` (unknown
    costs are assumed average and never split), shards whose cost
    exceeds the per-bin target ``ceil(total / n_shards)`` are split
    into block pieces, and all pieces are packed largest-first onto
    the least-loaded bin.  Returns at most ``n_shards`` shards whose
    pair-set union equals the input's — the result mapping is
    unchanged, only the work distribution.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
    shards = list(shards)
    # a *single* oversized shard is the worst skew of all (one
    # dominant key block), so one input shard must still split
    if n_shards == 1 or not shards:
        return shards
    costs = [shard.cost() for shard in shards]
    known = [cost for cost in costs if cost is not None]
    if not known:
        return shards
    assumed = max(1, sum(known) // len(known))
    costs = [assumed if cost is None else cost for cost in costs]
    total = sum(costs)
    if total <= 0:
        return shards
    target = max(1, -(-total // n_shards))
    pieces: List[Tuple[PairShard, int]] = []
    for shard, cost in zip(shards, costs):
        if cost > target:
            pieces.extend(_split_shard(shard, cost, target))
        else:
            pieces.append((shard, cost))
    # LPT: place the largest piece on the least-loaded bin; ties break
    # on bin index, keeping the packing fully deterministic.
    order = sorted(range(len(pieces)), key=lambda i: (-pieces[i][1], i))
    bins: List[List[PairShard]] = [[] for _ in range(min(n_shards,
                                                         len(pieces)))]
    heap = [(0, index) for index in range(len(bins))]
    for piece_index in order:
        load, bin_index = heapq.heappop(heap)
        bins[bin_index].append(pieces[piece_index][0])
        heapq.heappush(heap, (load + pieces[piece_index][1], bin_index))
    balanced: List[PairShard] = []
    for members in bins:
        if not members:
            continue
        balanced.append(members[0] if len(members) == 1
                        else CompositeShard(members))
    return balanced


# ----------------------------------------------------------------------
# autotuning: cost-model-driven shard-plan decisions
# ----------------------------------------------------------------------

#: rebalance automatically when the costliest shard's estimate exceeds
#: this multiple of the ideal per-worker share ``total / workers`` —
#: beyond it the naive schedule's makespan is bound by that one shard
#: (the dominant-key / stop-word-token signature), below it the naive
#: list already spreads within noise of optimal and balancing would
#: only pay the splitting pass for nothing
AUTO_SKEW_FACTOR = 1.25
#: preferred pair-cost per rebalanced bin; with worker-count clamps
#: this sizes bins to amortize per-shard dispatch without recreating a
#: long tail
AUTO_TARGET_SHARD_COST = 1 << 18


def autotune_plan(costs: Sequence[Optional[int]], workers: int,
                  n_shards: Optional[int] = None):
    """Decide ``(balance, n_bins)`` from shard cost estimates.

    The pure decision kernel behind ``EngineConfig(auto=True)``
    (Peukert-style rule/cost-driven tuning instead of hand-set
    flags).  Balancing turns on when the costliest shard exceeds
    :data:`AUTO_SKEW_FACTOR` times the ideal per-worker share
    ``total / workers`` — the quantity that actually bounds the naive
    schedule's makespan; a single oversized shard (``len(costs) ==
    1`` included) is the worst case and always trips it on a
    multi-worker run.  The bin count derives from the total estimated
    cost (one bin per :data:`AUTO_TARGET_SHARD_COST` pairs) clamped
    to between 4 and 16 bins per worker.  Shards with unknown cost
    are assumed average, exactly as :func:`rebalance_shards` treats
    them; all-unknown cost lists disable balancing (no evidence of
    skew).  An explicit ``n_shards`` is honored as the bin count.
    """
    known = [cost for cost in costs if cost is not None]
    if not known:
        return False, n_shards if n_shards is not None \
            else max(4, workers * 4)
    assumed = max(1, sum(known) // len(known))
    filled = [assumed if cost is None else cost for cost in costs]
    total = sum(filled)
    balance = total > 0 and \
        max(filled) * workers >= AUTO_SKEW_FACTOR * total
    if n_shards is not None:
        bins = n_shards
    else:
        bins = -(-total // AUTO_TARGET_SHARD_COST)
        bins = max(4 * workers, min(16 * workers, bins))
    return balance, bins


#: per-shard wall-clock the online adapter steers toward: long enough
#: to amortize dispatch/IPC per task, short enough that one straggler
#: shard cannot dominate the makespan
SHARD_TARGET_SECONDS = 0.25


def adapt_n_shards(current: int, durations: Sequence[float],
                   workers: int) -> Optional[int]:
    """Next run's shard count from this run's observed durations.

    The online half of the autotuner: :func:`autotune_plan` sizes bins
    from *estimated* pair costs, this adjusts the count from *measured*
    wall-clock.  Shards running past :data:`SHARD_TARGET_SECONDS` on
    average get split finer next time (better balance, bounded
    stragglers), shards finishing far under it get merged coarser
    (less dispatch overhead); the per-run factor is clamped to [0.5,
    2.0] so one noisy measurement cannot whipsaw the count, and the
    result stays within [workers, 16 * workers].  Returns ``None``
    (no adjustment) without measurements.  ``n_shards`` is a pure
    performance knob — the sharded result mapping is identical for
    every count — so adapting it online never changes results.
    """
    if not durations or current < 1:
        return None
    mean = sum(durations) / len(durations)
    if mean <= 0.0:
        return None
    factor = min(2.0, max(0.5, mean / SHARD_TARGET_SECONDS))
    return max(workers, min(16 * workers, int(round(current * factor))))


# ----------------------------------------------------------------------
# worker-side plumbing (same pattern as scorer.py / vectorized.py)
# ----------------------------------------------------------------------

_ACTIVE_RUNNER: Optional[ShardRunner] = None


def _install_runner(runner: Optional[ShardRunner]) -> None:
    global _ACTIVE_RUNNER
    _ACTIVE_RUNNER = runner


def _run_shard_task(shard_index: int):
    runner = _ACTIVE_RUNNER
    if runner is None:  # pragma: no cover - defensive; engine installs first
        raise RuntimeError("no shard runner installed in worker process")
    return runner.run(shard_index)


def _run_shard_task_timed(shard_index: int):
    """Like :func:`_run_shard_task`, returning ``(seconds, payload)``.

    Times the worker-side execution only (the same pattern as the
    adaptive chunker's ``_score_rows_task_timed``), feeding the online
    ``n_shards`` adapter without the parent-side queueing noise.
    """
    start = time.perf_counter()
    payload = _run_shard_task(shard_index)
    return time.perf_counter() - start, payload


# ----------------------------------------------------------------------
# parent-side orchestration
# ----------------------------------------------------------------------

def _shards_authoritative(blocking) -> bool:
    """Whether ``blocking.shards`` actually describes ``candidates``.

    False for the un-overridden :meth:`PairGenerator.shards` default
    (one shard delegating to ``candidates()`` — running that here
    would serialize the whole request into a single worker; the
    streamed pool does better) and for subclasses that override
    ``candidates`` *below* the class providing ``shards`` (the
    inherited partition describes the parent's pair set, not the
    override's).
    """
    cls = type(blocking)

    def defining(name):
        for base in cls.__mro__:
            if name in vars(base):
                return base
        return None

    shards_cls = defining("shards")
    candidates_cls = defining("candidates")
    if shards_cls is None or shards_cls is PairGenerator:
        return False
    if candidates_cls is None or candidates_cls is shards_cls:
        return True
    # candidates defined more derived than shards => shards is stale
    return not issubclass(candidates_cls, shards_cls)


def build_shard_runner(engine: "BatchMatchEngine", request: MatchRequest):
    """Resolve the shard list and runner the sharded path would execute.

    The single source of truth for the sharded plan — shard count
    default, skew rebalancing (hand-set via ``balance_shards`` or
    cost-model-driven via ``auto``), kernel-vs-scorer choice — shared by
    :func:`execute_sharded` and by benchmarks/diagnostics that need to
    time individual shards without duplicating the engine's wiring.
    Returns ``None`` when the request cannot shard (explicit candidate
    iterable, or a blocking object without an authoritative ``shards``
    protocol — see :func:`_shards_authoritative`); ``([], None)`` when
    the strategy yields no shards at all; ``(shards, runner)``
    otherwise.
    """
    config = engine.config
    if request.candidates is not None:
        return None
    blocking = request.blocking if request.blocking is not None else FullCross()
    if not _shards_authoritative(blocking):
        return None
    spec = request.specs[0]
    n_shards = config.n_shards
    if n_shards is None and config.auto:
        # online feedback: the previous auto run's measured durations
        # resized the count (adapt_n_shards); explicit n_shards wins
        n_shards = engine._adapted_n_shards
    if n_shards is None:
        n_shards = max(4, config.workers * 4)
    shards = blocking.shards(
        request.domain, request.range, n_shards=n_shards,
        domain_attribute=spec.attribute,
        range_attribute=spec.range_attribute)
    if not shards:
        return [], None
    if config.balance_shards:
        shards = rebalance_shards(shards, n_shards)
    elif config.auto:
        balance, bins = autotune_plan([shard.cost() for shard in shards],
                                      config.workers, config.n_shards)
        if balance:
            shards = rebalance_shards(shards, bins)
    indexed = engine._try_indexed(request)
    scorer = None if indexed is not None else ChunkScorer(request)
    return shards, ShardRunner(shards, request, config.chunk_size, indexed,
                               scorer)


def execute_sharded(engine: "BatchMatchEngine", request: MatchRequest,
                    result) -> bool:
    """Run ``request`` through the sharded path; False means "not mine".

    Falls through (returning False, leaving ``result`` untouched) when
    the candidate source cannot shard: an explicit candidate iterable,
    a blocking object that does not implement the ``shards`` protocol
    (or inherits a stale one — see :func:`_shards_authoritative`), or
    a multi-worker run on a platform without ``fork`` (the streamed
    path still parallelizes there by pickling the scorer).  Once
    sharding starts it always completes — with a forked process pool
    when ``workers > 1``, inline otherwise (same results, no
    processes).
    """
    config = engine.config
    if config.workers > 1 and \
            "fork" not in multiprocessing.get_all_start_methods():
        return False
    plan = build_shard_runner(engine, request)
    if plan is None:
        return False
    shards, runner = plan
    if not shards:
        return True  # no candidates at all: the empty mapping is correct
    indexed = runner.indexed
    adaptive = config.auto and config.n_shards is None
    timed = adaptive or config.profile
    durations: List[float] = []

    def merge_payload(payload) -> None:
        kind, data = payload
        triples = indexed.triples(*data) if kind == "rows" else data
        engine._merge(result, triples, request.is_self)

    def record_durations() -> None:
        if adaptive:
            adapted = adapt_n_shards(len(shards), durations, config.workers)
            if adapted is not None:
                engine._adapted_n_shards = adapted
        if engine.last_profile is not None:
            engine.last_profile["shard_seconds"] = list(durations)

    workers = min(config.workers, len(shards))
    if workers == 1:
        for index in range(len(shards)):
            start = time.perf_counter()
            payload = runner.run(index)
            durations.append(time.perf_counter() - start)
            merge_payload(payload)
        record_durations()
        return True

    context = multiprocessing.get_context("fork")
    task = _run_shard_task_timed if timed else _run_shard_task
    _install_runner(runner)
    pending: deque = deque()
    try:
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            for index in range(len(shards)):
                pending.append(pool.submit(task, index))
            while pending:
                payload = pending.popleft().result()
                if timed:
                    seconds, payload = payload
                    durations.append(seconds)
                merge_payload(payload)
    finally:
        _install_runner(None)
    record_durations()
    return True
