"""Sharded execution: candidate generation *and* scoring in workers.

The streamed parallel path (:mod:`repro.engine.engine`) generates
every candidate pair in the parent and ships chunks to workers — on
blocked workloads the pure-Python pair generation serializes the run
(Amdahl).  The sharded path removes that bottleneck: the parent asks
the blocking strategy for *shards* (:meth:`PairGenerator.shards` —
key groups, posting-list ranges, window segments, seed partitions, id
tiles), builds the scoring state, and forks.  Workers inherit
everything copy-on-write, receive only a shard index, generate their
shard's pairs locally and return the surviving triples; nothing
per-pair ever crosses a process boundary.

Two worker-side scoring modes:

* **block-vectorized** — when the request is eligible for the
  q-gram bit kernel *and* the shard exposes an :class:`IdBlock`
  structure, pairs are expanded directly as packed row arrays
  (``np.repeat``/``np.tile``) and scored in bulk — no Python tuple is
  ever created per pair.  Duplicate pairs across blocks/shards are
  scored redundantly instead of deduplicated: scoring is
  deterministic, the result mapping is keyed, and on measured
  workloads re-scoring ~30% duplicates is far cheaper than sorting
  tens of millions of pair codes.
* **streamed** — any other shard iterates ``shard.pairs()`` through
  the same chunk scorers the serial path uses.

Correctness contract: for every blocking strategy the sharded result
mapping equals the serial result mapping exactly.  Shard pair sets
union to the serial candidate set, scores depend only on the value
pair, and the merge is idempotent for duplicates, so shard order and
duplication cannot change the outcome.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

from repro.blocking.pair_generator import (
    FullCross,
    IdBlock,
    PairGenerator,
    PairShard,
    dedup_self_pairs,
)
from repro.engine.chunks import iter_chunks
from repro.engine.request import MatchRequest
from repro.engine.scorer import ChunkScorer
from repro.engine.vectorized import IndexedScorer

try:  # numpy backs the block-vectorized mode; optional like elsewhere
    import numpy as _np
except ImportError:  # pragma: no cover - image always has numpy
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import BatchMatchEngine

Pair = Tuple[str, str]
Triple = Tuple[str, str, float]

#: row-array slice size for one vectorized scoring call; bounds worker
#: memory at a few MB per in-flight slice while amortizing numpy call
#: overhead over ~1M pairs
ROWS_PER_CALL = 1 << 20


class ShardRunner:
    """Executes one shard end-to-end; lives in the parent, runs anywhere.

    Built (and installed in the module slot) before the pool forks, so
    workers inherit the shard list, sources, similarity state and
    packed kernel matrices copy-on-write and tasks only carry a shard
    index.  Exactly one of ``indexed`` / ``scorer`` is set.
    """

    def __init__(self, shards: Sequence[PairShard], request: MatchRequest,
                 chunk_size: int, indexed: Optional[IndexedScorer],
                 scorer: Optional[ChunkScorer]) -> None:
        self.shards = list(shards)
        self.is_self = request.is_self
        self.chunk_size = chunk_size
        self.indexed = indexed
        self.scorer = scorer

    def run(self, shard_index: int):
        """Score one shard; returns a payload for :func:`merge_payload`.

        Payloads are ``("rows", (rows_a, rows_b, scores))`` from the
        vectorized modes (int/float arrays — the parent maps rows back
        to ids) or ``("triples", [...])`` from the generic scorer.
        """
        shard = self.shards[shard_index]
        if self.indexed is not None:
            blocks = shard.blocks()
            if blocks is not None and _np is not None:
                return "rows", self._run_blocks(blocks)
            return "rows", self._run_pairs_indexed(shard)
        return "triples", self._run_pairs_scorer(shard)

    # -- block-vectorized mode -----------------------------------------

    def _block_rows(self, block: IdBlock):
        """Row arrays of a block's id lists (ids unknown to the request's
        sources are dropped, mirroring ``IndexedScorer.convert``)."""
        indexed = self.indexed
        domain_row = indexed._domain_rows.get
        rows_d = [row for row in map(domain_row, block.domain_ids)
                  if row is not None]
        if block.triangle:
            # self-matching: both sides index the same source/matrix
            return (_np.asarray(rows_d, dtype=_np.int32), None)
        range_row = indexed._range_rows.get
        rows_r = [row for row in map(range_row, block.range_ids)
                  if row is not None]
        return (_np.asarray(rows_d, dtype=_np.int32),
                _np.asarray(rows_r, dtype=_np.int32))

    def _expand_blocks(self, blocks: Iterator[IdBlock]):
        """Yield (rows_a, rows_b) array slices of at most ROWS_PER_CALL."""
        for block in blocks:
            rows_d, rows_r = self._block_rows(block)
            if rows_r is None:  # triangle: pairs (i, j) with j > i
                k = len(rows_d)
                i = 0
                while i < k - 1:
                    j = i
                    budget = 0
                    while j < k - 1 and budget + (k - 1 - j) <= ROWS_PER_CALL:
                        budget += k - 1 - j
                        j += 1
                    if j == i:  # single row exceeds the budget: take it
                        j = i + 1
                    counts = _np.arange(k - 1 - i, k - 1 - j, -1)
                    rows_a = _np.repeat(rows_d[i:j], counts)
                    rows_b = _np.concatenate(
                        [rows_d[m + 1:] for m in range(i, j)])
                    yield rows_a, rows_b
                    i = j
            else:
                width = len(rows_r)
                if width == 0 or len(rows_d) == 0:
                    continue
                step = max(1, ROWS_PER_CALL // width)
                for start in range(0, len(rows_d), step):
                    left = rows_d[start:start + step]
                    yield (_np.repeat(left, width),
                           _np.tile(rows_r, len(left)))

    def _run_blocks(self, blocks: Iterator[IdBlock]):
        indexed = self.indexed
        out_a, out_b, out_s = [], [], []
        for rows_a, rows_b in self._expand_blocks(blocks):
            kept_a, kept_b, kept_s = indexed.score_rows(rows_a, rows_b)
            if len(kept_a):
                out_a.append(kept_a)
                out_b.append(kept_b)
                out_s.append(kept_s)
        if not out_a:
            empty_rows = _np.asarray([], dtype=_np.int32)
            return empty_rows, empty_rows, _np.asarray([], dtype=_np.float64)
        return (_np.concatenate(out_a), _np.concatenate(out_b),
                _np.concatenate(out_s))

    # -- streamed modes -------------------------------------------------

    def _shard_pairs(self, shard: PairShard) -> Iterator[Pair]:
        """The shard's pair stream with self-matching hygiene applied.

        Mirrors the serial path's ``_pair_stream`` through the shared
        :func:`dedup_self_pairs` filter (shard-locally — cross-shard
        duplicates resolve idempotently at the merge).  Required for
        custom strategies whose shards may not canonicalize; harmless
        for the built-ins, which already do.
        """
        pairs = shard.pairs()
        if not self.is_self:
            yield from pairs
            return
        yield from dedup_self_pairs(pairs)

    def _run_pairs_indexed(self, shard: PairShard):
        indexed = self.indexed
        out_a, out_b, out_s = [], [], []
        for chunk in iter_chunks(self._shard_pairs(shard), self.chunk_size):
            rows_a, rows_b = indexed.convert(chunk)
            kept_a, kept_b, kept_s = indexed.score_rows(rows_a, rows_b)
            if len(kept_a):
                out_a.append(kept_a)
                out_b.append(kept_b)
                out_s.append(kept_s)
        if not out_a:
            empty_rows = _np.asarray([], dtype=_np.int32)
            return empty_rows, empty_rows, _np.asarray([], dtype=_np.float64)
        return (_np.concatenate(out_a), _np.concatenate(out_b),
                _np.concatenate(out_s))

    def _run_pairs_scorer(self, shard: PairShard) -> List[Triple]:
        scorer = self.scorer
        triples: List[Triple] = []
        for chunk in iter_chunks(self._shard_pairs(shard), self.chunk_size):
            triples.extend(scorer.score_chunk(chunk))
        return triples


# ----------------------------------------------------------------------
# worker-side plumbing (same pattern as scorer.py / vectorized.py)
# ----------------------------------------------------------------------

_ACTIVE_RUNNER: Optional[ShardRunner] = None


def _install_runner(runner: Optional[ShardRunner]) -> None:
    global _ACTIVE_RUNNER
    _ACTIVE_RUNNER = runner


def _run_shard_task(shard_index: int):
    runner = _ACTIVE_RUNNER
    if runner is None:  # pragma: no cover - defensive; engine installs first
        raise RuntimeError("no shard runner installed in worker process")
    return runner.run(shard_index)


# ----------------------------------------------------------------------
# parent-side orchestration
# ----------------------------------------------------------------------

def _shards_authoritative(blocking) -> bool:
    """Whether ``blocking.shards`` actually describes ``candidates``.

    False for the un-overridden :meth:`PairGenerator.shards` default
    (one shard delegating to ``candidates()`` — running that here
    would serialize the whole request into a single worker; the
    streamed pool does better) and for subclasses that override
    ``candidates`` *below* the class providing ``shards`` (the
    inherited partition describes the parent's pair set, not the
    override's).
    """
    cls = type(blocking)

    def defining(name):
        for base in cls.__mro__:
            if name in vars(base):
                return base
        return None

    shards_cls = defining("shards")
    candidates_cls = defining("candidates")
    if shards_cls is None or shards_cls is PairGenerator:
        return False
    if candidates_cls is None or candidates_cls is shards_cls:
        return True
    # candidates defined more derived than shards => shards is stale
    return not issubclass(candidates_cls, shards_cls)


def execute_sharded(engine: "BatchMatchEngine", request: MatchRequest,
                    result) -> bool:
    """Run ``request`` through the sharded path; False means "not mine".

    Falls through (returning False, leaving ``result`` untouched) when
    the candidate source cannot shard: an explicit candidate iterable,
    a blocking object that does not implement the ``shards`` protocol
    (or inherits a stale one — see :func:`_shards_authoritative`), or
    a multi-worker run on a platform without ``fork`` (the streamed
    path still parallelizes there by pickling the scorer).  Once
    sharding starts it always completes — with a forked process pool
    when ``workers > 1``, inline otherwise (same results, no
    processes).
    """
    config = engine.config
    if request.candidates is not None:
        return False
    if config.workers > 1 and \
            "fork" not in multiprocessing.get_all_start_methods():
        return False
    blocking = request.blocking if request.blocking is not None else FullCross()
    if not _shards_authoritative(blocking):
        return False
    shards_method = blocking.shards
    spec = request.specs[0]
    n_shards = config.n_shards
    if n_shards is None:
        n_shards = max(4, config.workers * 4)
    shards = shards_method(
        request.domain, request.range, n_shards=n_shards,
        domain_attribute=spec.attribute,
        range_attribute=spec.range_attribute)
    if not shards:
        return True  # no candidates at all: the empty mapping is correct
    indexed = engine._try_indexed(request)
    scorer = None if indexed is not None else ChunkScorer(request)
    runner = ShardRunner(shards, request, config.chunk_size, indexed, scorer)

    def merge_payload(payload) -> None:
        kind, data = payload
        triples = indexed.triples(*data) if kind == "rows" else data
        engine._merge(result, triples, request.is_self)

    workers = min(config.workers, len(shards))
    if workers == 1:
        for index in range(len(shards)):
            merge_payload(runner.run(index))
        return True

    context = multiprocessing.get_context("fork")
    _install_runner(runner)
    pending: deque = deque()
    try:
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            for index in range(len(shards)):
                pending.append(pool.submit(_run_shard_task, index))
            while pending:
                merge_payload(pending.popleft().result())
    finally:
        _install_runner(None)
    return True
